// In-process MapReduce runtime (functional analog of Hadoop MR, paper §3).
//
// Map tasks consume input splits and emit key-value pairs into
// per-reducer buffers with sort-and-spill semantics (the
// mapreduce.task.io.sort.mb behavior the paper tunes in §4.2); reduce
// tasks merge the sorted map outputs and invoke the reducer per key
// group. Execution is multi-threaded but the output is deterministic:
// ties between equal keys resolve by (map task index, emission order).
//
// The shuffle data path is zero-copy (see mr/shuffle_buffer.h): emitted
// bytes land in per-partition arenas, sorting and merging move 40-byte
// index entries, and reducers receive string_view groups into the frozen
// arenas. An optional JobConfig::combiner_factory arms a Hadoop-style
// map-side combiner over every sorted spill run.
//
// Fault tolerance mirrors Hadoop's task-attempt model: a failed task
// attempt (split load error, mapper/reducer error, or injected fault) is
// retried up to JobConfig::max_task_attempts times with capped
// exponential backoff; straggler attempts can be speculatively
// re-executed with first-success-wins resolution; and a poison split can
// be skipped after exhausted retries (mapreduce.map.skip analog) instead
// of failing the job. Wire a seeded FaultInjector into
// JobConfig::fault_injector to exercise these paths reproducibly.
//
// Whole-node failure follows Hadoop's lost-map-output semantics: with
// JobConfig::num_nodes set, every map task runs on a simulated node, and
// before reducers fetch, the job master consults the "node.crash" fault
// point. Map outputs on a dead node — or outputs whose shuffle-run
// CRC32C no longer verifies, or fetches failed by "mr.shuffle_fetch" —
// are lost, so their COMPLETED map tasks are re-executed on a live node,
// bounded by JobConfig::max_map_reexecutions per task.

#ifndef GESALL_MR_MAPREDUCE_H_
#define GESALL_MR_MAPREDUCE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mr/shuffle_buffer.h"
#include "util/cancel.h"
#include "util/executor.h"
#include "util/status.h"

namespace gesall {

class FaultInjector;

namespace internal {
struct JobState;
}  // namespace internal

/// \brief Named job counters (Hadoop-counter analog).
class JobCounters {
 public:
  void Add(const std::string& name, int64_t delta) { values_[name] += delta; }
  int64_t Get(const std::string& name) const {
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }
  void Merge(const JobCounters& other) {
    for (const auto& [k, v] : other.values_) values_[k] += v;
  }
  const std::map<std::string, int64_t>& values() const { return values_; }

 private:
  std::map<std::string, int64_t> values_;
};

/// \brief Context passed to map functions.
class MapContext {
 public:
  virtual ~MapContext() = default;
  virtual void Emit(std::string key, std::string value) = 0;
  /// Zero-copy emit: the engine copies the bytes straight into its
  /// shuffle arena, so hot mappers can emit from scratch buffers without
  /// constructing std::strings. Default bridges to Emit() for custom
  /// contexts.
  virtual void EmitView(std::string_view key, std::string_view value) {
    Emit(std::string(key), std::string(value));
  }
  virtual void IncrementCounter(const std::string& name,
                                int64_t delta = 1) = 0;
};

/// \brief Context passed to reduce functions.
class ReduceContext {
 public:
  virtual ~ReduceContext() = default;
  /// Emits one output value (order preserved per reducer).
  virtual void Emit(std::string value) = 0;
  virtual void IncrementCounter(const std::string& name,
                                int64_t delta = 1) = 0;
};

/// \brief User map function over one input split.
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual Status Map(const std::string& input, MapContext* ctx) = 0;
};

/// \brief User reduce function over one key group (values arrive in
/// deterministic shuffle order).
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual Status Reduce(const std::string& key,
                        const std::vector<std::string>& values,
                        ReduceContext* ctx) = 0;
  /// Zero-copy entry point the engine actually calls: key and values are
  /// views into the frozen shuffle arenas, valid for the duration of the
  /// call. The default materializes owned strings and delegates to
  /// Reduce(), so existing reducers work unchanged; hot reducers
  /// override this to skip the copies.
  virtual Status ReduceViews(std::string_view key,
                             const std::vector<std::string_view>& values,
                             ReduceContext* ctx) {
    return Reduce(std::string(key),
                  std::vector<std::string>(values.begin(), values.end()),
                  ctx);
  }
};

/// \brief Routes keys to reducers.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual int Partition(const std::string& key,
                        int num_partitions) const = 0;
  /// Zero-copy variant used by the engine's emit path. Default bridges
  /// to Partition() for custom partitioners.
  virtual int PartitionView(std::string_view key, int num_partitions) const {
    return Partition(std::string(key), num_partitions);
  }
};

/// \brief Default: stable hash of the key bytes.
class HashPartitioner : public Partitioner {
 public:
  int Partition(const std::string& key, int num_partitions) const override {
    return PartitionView(key, num_partitions);
  }
  int PartitionView(std::string_view key, int num_partitions) const override;
};

/// \brief Range partitioner over sorted split points: keys below
/// boundaries[i] (bytewise) go to partition i; the rest to the last.
class RangePartitioner : public Partitioner {
 public:
  explicit RangePartitioner(std::vector<std::string> boundaries)
      : boundaries_(std::move(boundaries)) {}
  int Partition(const std::string& key, int num_partitions) const override {
    return PartitionView(key, num_partitions);
  }
  int PartitionView(std::string_view key, int num_partitions) const override;

 private:
  std::vector<std::string> boundaries_;
};

/// \brief Lazily-loaded input split with optional locality hint.
struct InputSplit {
  std::function<Result<std::string>()> load;
  /// Streaming alternative to `load`: when set, the map task never
  /// materializes the split's bytes as one string — the engine invokes
  /// `stream` with the task's MapContext and the function drives emits
  /// itself (e.g. a pipeline node graph pumping bounded batches from a
  /// source, with shuffle spills interleaving with compute). `load` is
  /// ignored when `stream` is set. Retry/speculation/skip semantics and
  /// the split-load / map-attempt fault-injection points are identical
  /// to loaded splits, so a retried streamed attempt MUST be able to
  /// restart the stream from the beginning. The task record's
  /// input_bytes comes from the "map_input_bytes" counter the stream is
  /// expected to increment.
  std::function<Status(MapContext*)> stream;
  int preferred_node = -1;
  /// Optional readiness gate: the map task for this split is not even
  /// admitted to the job's task slots until the signal fires (it holds
  /// no slot while waiting). This is the per-partition edge of the
  /// pipeline's round DAG — e.g. "sort partition c is on the DFS" gates
  /// the variant-calling split for chromosome c. Null = ready now.
  std::shared_ptr<ReadySignal> ready;
};

/// \brief Wraps in-memory bytes as a split.
InputSplit InlineSplit(std::string data);

/// \brief Job-level configuration (Hadoop-parameter analogs).
struct JobConfig {
  int num_reducers = 4;
  /// Concurrent tasks — the cluster's task slots. Enforced by a Throttle
  /// over the executor, not by pool width: the executor is shared and
  /// persistent, the slot cap is per job (or per throttle, see below).
  int max_parallel_tasks = 4;

  // --- Execution engine ---

  /// Executor the job's tasks run on (not owned). nullptr uses the
  /// process-wide Executor::Shared(). A job run never constructs an
  /// executor of its own.
  Executor* executor = nullptr;
  /// Priority of the job's map/reduce tasks on the executor. Job-master
  /// coordination (shuffle verification, lost-output re-execution) always
  /// runs at kHigh so recovery overtakes queued regular work.
  Executor::Priority priority = Executor::Priority::kNormal;
  /// Optional shared admission throttle. When several jobs overlap (the
  /// pipelined round DAG), pointing them at one Throttle makes
  /// max_parallel_tasks a global cap across the overlapping rounds
  /// instead of multiplying slots per job. Null = private throttle of
  /// max_parallel_tasks slots.
  std::shared_ptr<Throttle> throttle;
  /// Fires once per reduce partition, from the worker thread, as soon as
  /// that partition's reduce task succeeds — before the job-level merge,
  /// while other partitions may still be running. This is what lets a
  /// downstream round start per-partition work ahead of the job barrier.
  /// Full (map+reduce) jobs only; arguments are the partition index, its
  /// output values, and that reduce task's counters.
  std::function<void(int partition, const std::vector<std::string>& values,
                     const JobCounters& counters)>
      on_partition_output;
  /// Map-side sort buffer; exceeding it spills a sorted run to "disk".
  int64_t sort_buffer_bytes = 64LL << 20;
  /// Fraction of maps that must finish before reducers start (recorded in
  /// counters for the simulator; functional execution is unaffected).
  double slowstart_completed_maps = 0.05;
  /// Optional map-side combiner (Hadoop combiner analog): runs over every
  /// sorted spill run before it freezes, collapsing each key group's
  /// values. Must be an associative pre-reduce that does not change the
  /// job's final output (see Combiner). Unset disables combining.
  CombinerFactory combiner_factory;

  // --- Fault tolerance (Hadoop task-attempt analogs) ---

  /// Attempts per task before the job fails (mapreduce.map/reduce.maxattempts).
  int max_task_attempts = 2;
  /// Backoff before retry k is retry_base_ms * 2^(k-1), capped below.
  /// 0 disables sleeping between attempts.
  int retry_base_ms = 0;
  int retry_max_backoff_ms = 1000;
  /// Re-execute a straggler attempt once and keep whichever finishes
  /// first (Hadoop speculative execution).
  bool speculative_execution = false;
  /// A successful attempt slower than this is considered a straggler.
  int speculative_slow_task_ms = 100;
  /// A speculative backup only wins when it beats the original attempt's
  /// measured duration by MORE than this margin; ties and sub-margin
  /// differences deterministically keep the original attempt. This caps
  /// the duration comparison so two attempts suffering identical
  /// injected latency cannot flip the verdict on scheduler jitter.
  int speculative_win_margin_ms = 1;
  /// After exhausted map retries, isolate the poison split (counted and
  /// listed in JobResult::skipped_splits) instead of failing the job
  /// (mapreduce.map.skip analog).
  bool skip_bad_records = false;
  /// Optional chaos source (not owned). nullptr disables injection.
  FaultInjector* fault_injector = nullptr;
  /// Optional cooperative cancellation. Once the token flips, no new
  /// task attempt starts (in-flight attempts finish), cancelled attempts
  /// are never retried or skip-isolated, gated splits are released
  /// instead of waiting on signals that may never fire, and the job
  /// completes with Status::Cancelled carrying the token's cause.
  std::shared_ptr<CancelToken> cancel;

  // --- Whole-node failure model (lost-map-output re-execution) ---

  /// Compute nodes of the simulated cluster. Map task i runs on node
  /// (preferred_node >= 0 ? preferred_node : i) % num_nodes; the
  /// "node.crash" fault point (key = node id, attempt = 0) decides which
  /// nodes die before the reduce-side fetch. 0 disables the node model.
  int num_nodes = 0;
  /// Times one map task's output may be lost (dead node, corrupt run, or
  /// injected fetch failure) and the task re-executed before the job
  /// fails (mapreduce.reduce.shuffle fetch-failure limit analog).
  int max_map_reexecutions = 2;
  /// CRC32C every frozen shuffle run at spill time and verify it at
  /// reduce-fetch time; a mismatch counts as a lost map output.
  bool checksum_shuffle = true;

  // --- Compressed shuffle (mapreduce.map.output.compress analog) ---

  /// Serialize every sealed spill run through the BGZF codec and release
  /// its raw arena bytes; reduce-side merge cursors decompress lazily,
  /// one 64 KiB block at a time. Output is byte-identical to the
  /// uncompressed path (same stable sort, same run-index tie-breaks).
  /// Raw-vs-compressed byte and codec cpu-time counters land in
  /// shuffle_spill_bytes_{raw,compressed} / shuffle_{com,decom}press_micros.
  bool compress_shuffle = false;
  /// zlib level of the spill codec (-1 = zlib default; 0..9 otherwise).
  int shuffle_compress_level = -1;
};

/// \brief Wall-clock record of one task, for progress plots (paper Fig 7).
struct TaskRecord {
  enum class Type { kMap, kReduce };
  Type type = Type::kMap;
  int index = 0;
  double start_seconds = 0;
  double end_seconds = 0;
  int64_t input_bytes = 0;
  int64_t output_bytes = 0;
  /// Attempt number that produced this record (0 = first attempt).
  int attempt = 0;
  /// True when a speculative re-execution won over the original attempt.
  bool speculative = false;
  /// Simulated compute node the winning attempt ran on (-1 without a
  /// node model). A re-executed map records the node it moved to.
  int node = -1;
};

/// \brief Result of a job: per-reducer emitted values + counters.
struct JobResult {
  std::vector<std::vector<std::string>> reducer_outputs;
  JobCounters counters;
  std::vector<TaskRecord> tasks;
  /// Map task indices isolated by skip_bad_records (empty otherwise).
  std::vector<int> skipped_splits;
};

using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;

/// \brief Executes MapReduce jobs as dependency-tracked tasks on a
/// shared persistent executor (see JobConfig::executor).
class MapReduceJob {
 public:
  /// Completion token of an asynchronously started job.
  class Handle {
   public:
    /// Blocks until the job finishes and moves the result out.
    /// Single-consume: a second Wait() returns an error status.
    Result<JobResult> Wait();

   private:
    friend class MapReduceJob;
    explicit Handle(std::shared_ptr<internal::JobState> state)
        : state_(std::move(state)) {}
    std::shared_ptr<internal::JobState> state_;
  };

  explicit MapReduceJob(JobConfig config = {});

  /// Full map-shuffle-reduce round (Start + Wait).
  Result<JobResult> Run(const std::vector<InputSplit>& splits,
                        const MapperFactory& mapper_factory,
                        const ReducerFactory& reducer_factory,
                        const Partitioner* partitioner = nullptr);

  /// Map-only round (paper Round 1): reducer_outputs[i] holds the values
  /// emitted by map task i, in emission order (Start + Wait).
  Result<JobResult> RunMapOnly(const std::vector<InputSplit>& splits,
                               const MapperFactory& mapper_factory);

  /// Starts a full round asynchronously and returns immediately; the job
  /// runs as executor tasks (maps gated on their splits' ready signals,
  /// throttled by the admission cap, verified and re-executed by a
  /// high-priority master task, reduces firing on_partition_output as
  /// they land). Splits and factories are copied; a caller-provided
  /// partitioner must outlive the job.
  Handle Start(const std::vector<InputSplit>& splits,
               const MapperFactory& mapper_factory,
               const ReducerFactory& reducer_factory,
               const Partitioner* partitioner = nullptr);

  /// Map-only variant of Start().
  Handle StartMapOnly(const std::vector<InputSplit>& splits,
                      const MapperFactory& mapper_factory);

 private:
  JobConfig config_;
};

}  // namespace gesall

#endif  // GESALL_MR_MAPREDUCE_H_

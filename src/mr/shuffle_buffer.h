// Zero-copy shuffle data path of the MapReduce engine (paper §3.1, the
// map-side spill/merge machinery measured in Fig. 5(b) and Fig. 6).
//
// Every emitted key/value is copied once into a per-partition byte arena
// and indexed by a 48-byte ShuffleEntry (16-byte inlined key head + two
// views). Sorting moves entries, not strings; the map-side merge and the
// reduce-side k-way merge compare the big-endian key-head words first
// and touch the full key bytes only on a 16-byte tie. Frozen runs stay valid
// as views into the arenas for the lifetime of the ShuffleBuffer, so the
// reduce side groups values with zero per-record copies.
//
// With compression on (JobConfig::compress_shuffle), each sorted spill
// run is serialized as length-framed records into a BGZF-blocked stream
// (see util/bgzf.h) the moment it seals, and the raw arena bytes are
// released — the spill "file" on disk is the compressed stream. The
// reduce-side (and map-side re-merge) cursors decompress lazily, one
// 64 KiB block at a time into per-cursor scratch buffers, so the k-way
// merge never inflates a whole run. Per-chunk CRC32C sums seal the
// compressed frames, exactly as they seal raw arenas.
//
// An optional Combiner (Hadoop combiner semantics: an associative,
// output-preserving pre-reduce) runs over each sorted spill run before it
// freezes, collapsing a key group's values map-side; combined values are
// appended to the same arena.

#ifndef GESALL_MR_SHUFFLE_BUFFER_H_
#define GESALL_MR_SHUFFLE_BUFFER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/arena.h"
#include "util/bgzf.h"
#include "util/status.h"

namespace gesall {

class Executor;

/// \brief Index entry for one record in a shuffle arena.
///
/// The first 16 key bytes are inlined as two big-endian integers so most
/// comparisons never touch the arena. 16 bytes (not the classic 8)
/// because GDPT coordinate keys open with a constant flag byte plus the
/// 0x80-biased high bytes of the reference id — their discriminating
/// bytes (reference low byte, position) sit at offsets 8..16, where the
/// second prefix word catches them.
struct ShuffleEntry {
  uint64_t prefix = 0;   // key bytes 0..7, big-endian, zero-padded
  uint64_t prefix2 = 0;  // key bytes 8..15, big-endian, zero-padded
  std::string_view key;
  std::string_view value;
};

/// \brief Big-endian, zero-padded 8-byte word of a key at `offset`.
inline uint64_t ShuffleKeyWord(std::string_view key, size_t offset) {
  uint64_t p = 0;
  const size_t end = key.size() < offset + 8 ? key.size() : offset + 8;
  for (size_t i = offset; i < end; ++i) {
    p |= static_cast<uint64_t>(static_cast<unsigned char>(key[i]))
         << (56 - 8 * (i - offset));
  }
  return p;
}

/// \brief Big-endian, zero-padded 8-byte prefix of a key.
inline uint64_t ShuffleKeyPrefix(std::string_view key) {
  return ShuffleKeyWord(key, 0);
}

inline ShuffleEntry MakeShuffleEntry(std::string_view key,
                                     std::string_view value) {
  return {ShuffleKeyWord(key, 0), ShuffleKeyWord(key, 8), key, value};
}

/// Bytewise key order (identical to std::string comparison of the keys)
/// with the integer prefix fast path. A differing prefix word decides
/// correctly even across key lengths: zero padding sorts a shorter key
/// before any longer key it prefixes, matching lexicographic order. Only
/// a full 16-byte tie falls through to the key bytes.
inline bool ShuffleKeyLess(const ShuffleEntry& a, const ShuffleEntry& b) {
  if (a.prefix != b.prefix) return a.prefix < b.prefix;
  if (a.prefix2 != b.prefix2) return a.prefix2 < b.prefix2;
  if (a.key.size() > 16 && b.key.size() > 16) {
    return a.key.substr(16) < b.key.substr(16);
  }
  return a.key < b.key;
}

inline bool ShuffleKeyEqual(const ShuffleEntry& a, const ShuffleEntry& b) {
  return a.prefix == b.prefix && a.prefix2 == b.prefix2 && a.key == b.key;
}

/// \brief Sink for values a Combiner re-emits for the current key group.
class CombineEmitter {
 public:
  virtual ~CombineEmitter() = default;
  /// The bytes are copied into the shuffle arena before returning, so
  /// the caller may reuse its buffer.
  virtual void Emit(std::string_view value) = 0;
};

/// \brief Map-side pre-reduce (Hadoop combiner semantics).
///
/// Called once per key group of a sorted spill run, with the group's
/// values in emission order. The values emitted through `out` replace
/// the group's values (the key is unchanged) in the frozen run. A
/// combiner MUST be an associative, order-respecting pre-reduce that
/// does not change the job's final reducer output: the engine may run it
/// zero or more times over any subset of a key's values (a key group can
/// span spill runs and map tasks), so `reduce(combine(xs)) ==
/// reduce(xs)` must hold.
class Combiner {
 public:
  virtual ~Combiner() = default;
  virtual Status Combine(std::string_view key,
                         const std::vector<std::string_view>& values,
                         CombineEmitter* out) = 0;
};

using CombinerFactory = std::function<std::unique_ptr<Combiner>()>;

/// \brief One frozen, key-sorted run of entries.
using ShuffleRun = std::vector<ShuffleEntry>;

/// \brief One sealed, key-sorted spill run in compressed form: a BGZF
/// stream of [u32 klen][u32 vlen][key][value] records (little-endian
/// lengths; records may straddle the 64 KiB block cuts).
struct CompressedShuffleRun {
  std::string bytes;      // BGZF-framed record stream
  int64_t records = 0;
  int64_t raw_bytes = 0;  // serialized size before compression
};

/// \brief Streaming source of sorted shuffle entries for the k-way merge.
///
/// Unlike an in-memory ShuffleRun, the entry returned by Advance() — and
/// the key/value views inside it — is valid ONLY until the next Advance()
/// call: the cursor reuses its decode buffers.
class ShuffleRunReader {
 public:
  virtual ~ShuffleRunReader() = default;
  /// Next entry in run order, or nullptr when drained (or on decode
  /// error — check status()).
  virtual const ShuffleEntry* Advance() = 0;
  /// OK unless the underlying stream failed to decode.
  virtual const Status& status() const = 0;
};

/// \brief Lazy-decompressing cursor over one CompressedShuffleRun.
///
/// Inflates one 64 KiB BGZF block at a time into a reused scratch buffer;
/// a record straddling a block cut is stitched through a carry buffer.
/// Peak memory per cursor is ~2 blocks regardless of run size, so a
/// k-way merge over compressed runs holds ~k*128 KiB instead of the
/// inflated runs.
class CompressedShuffleRunReader : public ShuffleRunReader {
 public:
  /// Does not own the bytes; `compressed` must outlive the reader.
  explicit CompressedShuffleRunReader(std::string_view compressed)
      : data_(compressed) {}

  const ShuffleEntry* Advance() override;
  const Status& status() const override { return status_; }
  /// Cumulative inflate cpu time, for the decompress counters.
  int64_t decompress_micros() const { return decompress_micros_; }

 private:
  // Loads the next BGZF block into scratch_. False on end/error.
  bool NextBlock();
  // Copies exactly n stream bytes into dst (used for record headers, so
  // a header straddling a block cut never aliases the payload span).
  bool ReadBytes(size_t n, char* dst);
  // Serves n contiguous stream bytes as one span: zero-copy into
  // scratch_ when the span fits the current block, stitched into carry_
  // otherwise.
  bool ReadSpan(size_t n, std::string_view* out);

  std::string_view data_;
  size_t file_off_ = 0;  // offset of the next undecoded block
  std::string scratch_;  // current decompressed block
  size_t pos_ = 0;       // cursor within scratch_
  std::string carry_;    // stitch buffer for straddling spans
  ShuffleEntry entry_;
  Status status_;
  int64_t decompress_micros_ = 0;
};

/// \brief K-way merge over sorted shuffle runs, in key order with ties
/// broken by run index (run creation order), matching the engine's
/// (map task, emission order) determinism contract.
///
/// Sources are in-memory runs, streaming readers, or a mix (runs take
/// the lower run indices). The heap nodes cache each run head's 16-byte
/// key head, so a merge step usually costs a few integer compares with
/// no pointer chasing. Advancement is lazy — the winning cursor moves at
/// the START of the next Next() call — so an entry from a streaming
/// reader stays valid until the next Next(); entries from in-memory runs
/// stay valid for the lifetime of the runs, as before.
class ShuffleRunMerger {
 public:
  explicit ShuffleRunMerger(const std::vector<const ShuffleRun*>& runs)
      : ShuffleRunMerger(runs, {}) {}

  explicit ShuffleRunMerger(const std::vector<ShuffleRunReader*>& readers)
      : ShuffleRunMerger({}, readers) {}

  ShuffleRunMerger(const std::vector<const ShuffleRun*>& runs,
                   const std::vector<ShuffleRunReader*>& readers) {
    cursors_.reserve(runs.size() + readers.size());
    size_t run_index = 0;
    for (const ShuffleRun* run : runs) {
      if (!run->empty()) {
        const ShuffleEntry* first = run->data();
        cursors_.push_back({first->prefix, first->prefix2, first,
                            first + run->size(), nullptr, run_index});
      }
      ++run_index;
    }
    for (ShuffleRunReader* reader : readers) {
      const ShuffleEntry* first = reader->Advance();
      if (first != nullptr) {
        cursors_.push_back({first->prefix, first->prefix2, first, nullptr,
                            reader, run_index});
      }
      ++run_index;
    }
    for (size_t i = cursors_.size() / 2; i-- > 0;) SiftDown(i);
  }

  /// Next entry in merged order, or nullptr when drained. Entries from
  /// in-memory runs stay valid for the lifetime of the runs; entries
  /// from streaming readers only until the following Next() call.
  const ShuffleEntry* Next() {
    if (advance_pending_) {
      AdvanceTop();
      advance_pending_ = false;
    }
    if (cursors_.empty()) return nullptr;
    advance_pending_ = true;
    return cursors_[0].cur;
  }

 private:
  struct Cursor {
    uint64_t prefix;   // cached cur->prefix
    uint64_t prefix2;  // cached cur->prefix2
    const ShuffleEntry* cur;
    const ShuffleEntry* end;     // one-past-last (in-memory cursors only)
    ShuffleRunReader* reader;    // non-null for streaming cursors
    size_t run;
  };

  void AdvanceTop() {
    Cursor& top = cursors_[0];
    const ShuffleEntry* next;
    if (top.reader != nullptr) {
      next = top.reader->Advance();
    } else {
      ++top.cur;
      next = top.cur == top.end ? nullptr : top.cur;
    }
    if (next == nullptr) {
      cursors_[0] = cursors_.back();
      cursors_.pop_back();
    } else {
      top.cur = next;
      top.prefix = next->prefix;
      top.prefix2 = next->prefix2;
    }
    if (!cursors_.empty()) SiftDown(0);
  }

  // Strict weak order: key bytes, then run index (never equal).
  bool Before(const Cursor& a, const Cursor& b) const {
    if (a.prefix != b.prefix) return a.prefix < b.prefix;
    if (a.prefix2 != b.prefix2) return a.prefix2 < b.prefix2;
    std::string_view ka = a.cur->key;
    std::string_view kb = b.cur->key;
    if (ka.size() > 16 && kb.size() > 16) {
      ka = ka.substr(16);
      kb = kb.substr(16);
    }
    int cmp = ka.compare(kb);
    if (cmp != 0) return cmp < 0;
    return a.run < b.run;
  }

  void SiftDown(size_t i) {
    const size_t n = cursors_.size();
    while (true) {
      size_t best = i;
      const size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < n && Before(cursors_[l], cursors_[best])) best = l;
      if (r < n && Before(cursors_[r], cursors_[best])) best = r;
      if (best == i) return;
      std::swap(cursors_[i], cursors_[best]);
      i = best;
    }
  }

  std::vector<Cursor> cursors_;
  bool advance_pending_ = false;
};

/// \brief Spill/merge/combine accounting of one map task's shuffle.
struct ShuffleStats {
  int64_t spills = 0;
  /// Bytes rewritten by the map-side merge of multi-run partitions (the
  /// Fig. 5(b) "merge bytes" overhead).
  int64_t merge_bytes = 0;
  int64_t combine_input_records = 0;
  int64_t combine_output_records = 0;
  /// Arena bytes sealed under per-chunk CRC32C sums at Finish (0 with
  /// checksumming disabled). With compression on, covers the compressed
  /// frames instead of raw arenas.
  int64_t checksummed_bytes = 0;
  /// Serialized spill bytes before compression — every write, spills and
  /// merge rewrites included (0 with compression off).
  int64_t spill_bytes_raw = 0;
  /// The same writes after BGZF framing: the bytes that actually hit
  /// "disk" in compressed mode.
  int64_t spill_bytes_compressed = 0;
  /// Deflate cpu time across spill serialization and merge rewrites.
  int64_t compress_micros = 0;
  /// Inflate cpu time of the map-side merge of compressed runs (the
  /// reduce-side inflate lands in reduce counters instead).
  int64_t decompress_micros = 0;
};

/// \brief Per-map-task shuffle accumulator: per-partition arenas plus
/// sorted spill runs, with Hadoop sort-and-spill semantics.
///
/// Usage: Add() every record; Finish() once; then read runs(p) — or
/// compressed_runs(p) in compressed mode. After Finish every partition
/// holds at most one run. Entry views stay valid for the lifetime of
/// this object (it owns the arenas), including after the object is
/// moved; compressed runs own their bytes outright.
class ShuffleBuffer {
 public:
  /// Checksum granularity: one CRC32C per this many stored bytes, the
  /// HDFS io.bytes.per.checksum analog (HDFS uses 512 B per chunk on
  /// disk; in-memory we follow the DFS block metadata's 64 KiB chunks).
  static constexpr size_t kChecksumChunkBytes = 64 * 1024;

  /// `sort_buffer_bytes` is the spill threshold over the buffered-record
  /// accounting (key + value + per-record overhead), the
  /// mapreduce.task.io.sort.mb analog. `combiner` (optional, not owned)
  /// runs over every sorted spill run before it freezes. With `checksum`
  /// on, Finish() seals each partition's spill byte stream — the raw
  /// arena, or the compressed frames with `compress` on — under
  /// per-64KiB-chunk CRC32C sums (the IFile checksum analog) that
  /// VerifyPartition rechecks at fetch time. With `compress` on, every
  /// sealed spill run is serialized through the BGZF codec at
  /// `compress_level` and its arena bytes are released; `executor`
  /// (optional, not owned) fans the per-partition spill work out as
  /// parallel tasks when no combiner is armed.
  ShuffleBuffer(int num_partitions, int64_t sort_buffer_bytes,
                Combiner* combiner = nullptr, bool checksum = true,
                bool compress = false, int compress_level = kBgzfDefaultLevel,
                Executor* executor = nullptr);

  ShuffleBuffer(ShuffleBuffer&&) = default;
  ShuffleBuffer& operator=(ShuffleBuffer&&) = default;

  /// Copies one record into partition `p`'s arena. May spill (sort +
  /// combine + freeze) every partition when the buffered accounting
  /// exceeds the sort buffer. Fails only if the combiner fails.
  Status Add(int p, std::string_view key, std::string_view value);

  /// Final spill plus the map-side merge: collapses each partition's
  /// spill runs into one sorted run, charging merge bytes. In compressed
  /// mode the merge streams through lazy cursors and re-serializes, so
  /// no whole run is ever inflated.
  Status Finish();

  /// Recomputes partition `p`'s per-chunk CRC32C sums over its spill
  /// byte stream (arena extents, or compressed frames) and compares them
  /// against the sums sealed at Finish() — the reduce-side fetch
  /// verification. Also rejects a partition whose stored byte count
  /// changed after sealing (truncation / late append). Corruption() on
  /// mismatch; OK when checksumming is disabled or the partition is not
  /// yet sealed.
  Status VerifyPartition(int p) const;

  int num_partitions() const { return static_cast<int>(parts_.size()); }
  const std::vector<ShuffleRun>& runs(int p) const { return parts_[p].runs; }
  /// Sealed compressed spill runs of partition `p` (compressed mode
  /// only; empty otherwise — use runs(p) then).
  const std::vector<CompressedShuffleRun>& compressed_runs(int p) const {
    return parts_[p].cruns;
  }
  /// Sealed per-64KiB-chunk CRC32C sums of partition `p`'s spill bytes.
  /// Empty when checksumming is disabled or before Finish().
  const std::vector<uint32_t>& chunk_crcs(int p) const {
    return parts_[p].chunk_crcs;
  }
  bool checksummed() const { return checksum_; }
  bool compressed() const { return compress_; }
  const ShuffleStats& stats() const { return stats_; }

 private:
  struct Partition {
    Arena arena;
    ShuffleRun pending;  // unsorted entries since the last spill
    std::vector<ShuffleRun> runs;
    std::vector<CompressedShuffleRun> cruns;  // compressed mode only
    std::vector<uint32_t> chunk_crcs;  // sealed at Finish when checksummed
    int64_t sealed_bytes = -1;         // spill bytes covered; -1 = unsealed
    // Codec accounting local to this partition so parallel spills never
    // contend; folded into stats_ at Finish().
    BgzfCodecStats codec;
    int64_t decompress_micros = 0;  // map-side merge inflate time
  };

  Status SpillAll();
  Status SpillPartition(Partition* part);
  // Serializes + compresses one sorted run and releases its arena bytes.
  Status CompressRun(Partition* part, const ShuffleRun& run);
  void MergePartition(Partition* part);
  Status MergeCompressedPartition(Partition* part);
  // Seals the partition's spill byte stream under per-chunk sums;
  // charges stats_.checksummed_bytes.
  void SealChecksums(Partition* part);

  int64_t sort_buffer_bytes_;
  int64_t buffered_bytes_ = 0;
  Combiner* combiner_;
  bool checksum_;
  bool compress_;
  int compress_level_;
  Executor* executor_;
  ShuffleStats stats_;
  std::vector<Partition> parts_;
};

}  // namespace gesall

#endif  // GESALL_MR_SHUFFLE_BUFFER_H_

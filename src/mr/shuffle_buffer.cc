#include "mr/shuffle_buffer.h"

#include <algorithm>
#include <queue>
#include <string>
#include <utility>

#include "util/crc32c.h"

namespace gesall {

namespace {

// Per-64KiB-chunk CRC32C sums over a partition arena's stored extents,
// in block order — the spill-file byte stream under IFile-style chunk
// checksums. Chunks never span extents, so verification recomputes the
// identical chunking from the same arena. Returns the covered bytes.
int64_t ComputeChunkCrcs(const Arena& arena, std::vector<uint32_t>* crcs) {
  crcs->clear();
  int64_t covered = 0;
  for (const Arena::Extent& extent : arena.extents()) {
    for (size_t off = 0; off < extent.size;
         off += ShuffleBuffer::kChecksumChunkBytes) {
      const size_t n = std::min(ShuffleBuffer::kChecksumChunkBytes,
                                extent.size - off);
      crcs->push_back(ExtendCrc32c(0, extent.data + off, n));
      covered += static_cast<int64_t>(n);
    }
  }
  return covered;
}

// Appends combiner output for one key group into the frozen run,
// charging combined values to the partition arena.
class ArenaCombineEmitter : public CombineEmitter {
 public:
  ArenaCombineEmitter(Arena* arena, const ShuffleEntry* group,
                      ShuffleRun* out, int64_t* emitted)
      : arena_(arena), group_(group), out_(out), emitted_(emitted) {}

  void Emit(std::string_view value) override {
    out_->push_back({group_->prefix, group_->prefix2, group_->key,
                     arena_->Append(value)});
    ++*emitted_;
  }

 private:
  Arena* arena_;
  const ShuffleEntry* group_;
  ShuffleRun* out_;
  int64_t* emitted_;
};

}  // namespace

ShuffleBuffer::ShuffleBuffer(int num_partitions, int64_t sort_buffer_bytes,
                             Combiner* combiner, bool checksum)
    : sort_buffer_bytes_(sort_buffer_bytes), combiner_(combiner),
      checksum_(checksum), parts_(num_partitions > 0 ? num_partitions : 0) {}

Status ShuffleBuffer::Add(int p, std::string_view key,
                          std::string_view value) {
  Partition& part = parts_[p];
  std::string_view stored_key = part.arena.Append(key);
  std::string_view stored_value = part.arena.Append(value);
  part.pending.push_back(MakeShuffleEntry(stored_key, stored_value));
  // Same accounting as the pre-arena engine: key + value + 16 bytes of
  // per-record overhead against the sort buffer.
  buffered_bytes_ += static_cast<int64_t>(key.size() + value.size() + 16);
  if (buffered_bytes_ > sort_buffer_bytes_) return SpillAll();
  return Status::OK();
}

Status ShuffleBuffer::SpillAll() {
  bool any = false;
  for (auto& part : parts_) {
    if (part.pending.empty()) continue;
    any = true;
    GESALL_RETURN_NOT_OK(SpillPartition(&part));
  }
  if (any) ++stats_.spills;
  buffered_bytes_ = 0;
  return Status::OK();
}

Status ShuffleBuffer::SpillPartition(Partition* part) {
  // Stable sort keeps equal keys in emission order — the engine's
  // documented (map task, emission order) tie-break.
  std::stable_sort(part->pending.begin(), part->pending.end(),
                   ShuffleKeyLess);
  if (combiner_ == nullptr) {
    part->runs.push_back(std::move(part->pending));
    part->pending.clear();
    return Status::OK();
  }
  ShuffleRun combined;
  std::vector<std::string_view> values;
  const ShuffleRun& run = part->pending;
  for (size_t i = 0; i < run.size();) {
    size_t j = i;
    values.clear();
    while (j < run.size() && ShuffleKeyEqual(run[j], run[i])) {
      values.push_back(run[j].value);
      ++j;
    }
    stats_.combine_input_records += static_cast<int64_t>(j - i);
    ArenaCombineEmitter emit(&part->arena, &run[i], &combined,
                             &stats_.combine_output_records);
    GESALL_RETURN_NOT_OK(combiner_->Combine(run[i].key, values, &emit));
    i = j;
  }
  part->runs.push_back(std::move(combined));
  part->pending.clear();
  return Status::OK();
}

void ShuffleBuffer::MergePartition(Partition* part) {
  auto& runs = part->runs;
  size_t total = 0;
  for (const auto& run : runs) {
    total += run.size();
    for (const auto& e : run) {
      stats_.merge_bytes +=
          static_cast<int64_t>(e.key.size() + e.value.size());
    }
  }
  ShuffleRun merged;
  merged.reserve(total);
  // K-way merge over the entry index: no key/value bytes move, only
  // 48-byte entries. Stable across run creation order.
  std::vector<const ShuffleRun*> run_ptrs;
  run_ptrs.reserve(runs.size());
  for (const auto& run : runs) run_ptrs.push_back(&run);
  ShuffleRunMerger merger(run_ptrs);
  for (const ShuffleEntry* e = merger.Next(); e != nullptr;
       e = merger.Next()) {
    merged.push_back(*e);
  }
  runs.clear();
  runs.push_back(std::move(merged));
}

Status ShuffleBuffer::Finish() {
  GESALL_RETURN_NOT_OK(SpillAll());
  for (auto& part : parts_) {
    if (part.runs.size() > 1) MergePartition(&part);
    // Seal after the merge: the merge reorders only the entry index, so
    // the sums cover the final arena byte stream the reduce side reads.
    if (checksum_) SealChecksums(&part);
  }
  return Status::OK();
}

void ShuffleBuffer::SealChecksums(Partition* part) {
  part->sealed_bytes = ComputeChunkCrcs(part->arena, &part->chunk_crcs);
  stats_.checksummed_bytes += part->sealed_bytes;
}

Status ShuffleBuffer::VerifyPartition(int p) const {
  const Partition& part = parts_[p];
  if (!checksum_ || part.sealed_bytes < 0) return Status::OK();
  std::vector<uint32_t> actual;
  const int64_t covered = ComputeChunkCrcs(part.arena, &actual);
  if (covered != part.sealed_bytes || actual.size() != part.chunk_crcs.size()) {
    return Status::Corruption(
        "shuffle partition " + std::to_string(p) +
        " changed size after sealing: " + std::to_string(covered) +
        " bytes vs " + std::to_string(part.sealed_bytes) + " sealed");
  }
  for (size_t c = 0; c < actual.size(); ++c) {
    if (actual[c] != part.chunk_crcs[c]) {
      return Status::Corruption(
          "shuffle chunk checksum mismatch: partition " + std::to_string(p) +
          " chunk " + std::to_string(c));
    }
  }
  return Status::OK();
}

}  // namespace gesall

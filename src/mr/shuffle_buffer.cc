#include "mr/shuffle_buffer.h"

#include <algorithm>
#include <queue>
#include <utility>

namespace gesall {

namespace {

// Appends combiner output for one key group into the frozen run,
// charging combined values to the partition arena.
class ArenaCombineEmitter : public CombineEmitter {
 public:
  ArenaCombineEmitter(Arena* arena, const ShuffleEntry* group,
                      ShuffleRun* out, int64_t* emitted)
      : arena_(arena), group_(group), out_(out), emitted_(emitted) {}

  void Emit(std::string_view value) override {
    out_->push_back({group_->prefix, group_->prefix2, group_->key,
                     arena_->Append(value)});
    ++*emitted_;
  }

 private:
  Arena* arena_;
  const ShuffleEntry* group_;
  ShuffleRun* out_;
  int64_t* emitted_;
};

}  // namespace

ShuffleBuffer::ShuffleBuffer(int num_partitions, int64_t sort_buffer_bytes,
                             Combiner* combiner)
    : sort_buffer_bytes_(sort_buffer_bytes), combiner_(combiner),
      parts_(num_partitions > 0 ? num_partitions : 0) {}

Status ShuffleBuffer::Add(int p, std::string_view key,
                          std::string_view value) {
  Partition& part = parts_[p];
  std::string_view stored_key = part.arena.Append(key);
  std::string_view stored_value = part.arena.Append(value);
  part.pending.push_back(MakeShuffleEntry(stored_key, stored_value));
  // Same accounting as the pre-arena engine: key + value + 16 bytes of
  // per-record overhead against the sort buffer.
  buffered_bytes_ += static_cast<int64_t>(key.size() + value.size() + 16);
  if (buffered_bytes_ > sort_buffer_bytes_) return SpillAll();
  return Status::OK();
}

Status ShuffleBuffer::SpillAll() {
  bool any = false;
  for (auto& part : parts_) {
    if (part.pending.empty()) continue;
    any = true;
    GESALL_RETURN_NOT_OK(SpillPartition(&part));
  }
  if (any) ++stats_.spills;
  buffered_bytes_ = 0;
  return Status::OK();
}

Status ShuffleBuffer::SpillPartition(Partition* part) {
  // Stable sort keeps equal keys in emission order — the engine's
  // documented (map task, emission order) tie-break.
  std::stable_sort(part->pending.begin(), part->pending.end(),
                   ShuffleKeyLess);
  if (combiner_ == nullptr) {
    part->runs.push_back(std::move(part->pending));
    part->pending.clear();
    return Status::OK();
  }
  ShuffleRun combined;
  std::vector<std::string_view> values;
  const ShuffleRun& run = part->pending;
  for (size_t i = 0; i < run.size();) {
    size_t j = i;
    values.clear();
    while (j < run.size() && ShuffleKeyEqual(run[j], run[i])) {
      values.push_back(run[j].value);
      ++j;
    }
    stats_.combine_input_records += static_cast<int64_t>(j - i);
    ArenaCombineEmitter emit(&part->arena, &run[i], &combined,
                             &stats_.combine_output_records);
    GESALL_RETURN_NOT_OK(combiner_->Combine(run[i].key, values, &emit));
    i = j;
  }
  part->runs.push_back(std::move(combined));
  part->pending.clear();
  return Status::OK();
}

void ShuffleBuffer::MergePartition(Partition* part) {
  auto& runs = part->runs;
  size_t total = 0;
  for (const auto& run : runs) {
    total += run.size();
    for (const auto& e : run) {
      stats_.merge_bytes +=
          static_cast<int64_t>(e.key.size() + e.value.size());
    }
  }
  ShuffleRun merged;
  merged.reserve(total);
  // K-way merge over the entry index: no key/value bytes move, only
  // 48-byte entries. Stable across run creation order.
  std::vector<const ShuffleRun*> run_ptrs;
  run_ptrs.reserve(runs.size());
  for (const auto& run : runs) run_ptrs.push_back(&run);
  ShuffleRunMerger merger(run_ptrs);
  for (const ShuffleEntry* e = merger.Next(); e != nullptr;
       e = merger.Next()) {
    merged.push_back(*e);
  }
  runs.clear();
  runs.push_back(std::move(merged));
}

Status ShuffleBuffer::Finish() {
  GESALL_RETURN_NOT_OK(SpillAll());
  for (auto& part : parts_) {
    if (part.runs.size() > 1) MergePartition(&part);
  }
  return Status::OK();
}

}  // namespace gesall

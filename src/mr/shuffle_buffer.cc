#include "mr/shuffle_buffer.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <queue>
#include <string>
#include <utility>

#include "util/crc32c.h"
#include "util/executor.h"

namespace gesall {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-64KiB-chunk CRC32C sums over a partition arena's stored extents,
// in block order — the spill-file byte stream under IFile-style chunk
// checksums. Chunks never span extents, so verification recomputes the
// identical chunking from the same arena. Returns the covered bytes.
int64_t ComputeChunkCrcs(const Arena& arena, std::vector<uint32_t>* crcs) {
  crcs->clear();
  int64_t covered = 0;
  for (const Arena::Extent& extent : arena.extents()) {
    for (size_t off = 0; off < extent.size;
         off += ShuffleBuffer::kChecksumChunkBytes) {
      const size_t n = std::min(ShuffleBuffer::kChecksumChunkBytes,
                                extent.size - off);
      crcs->push_back(ExtendCrc32c(0, extent.data + off, n));
      covered += static_cast<int64_t>(n);
    }
  }
  return covered;
}

// Compressed-mode analog: per-64KiB-chunk sums over each sealed run's
// compressed frame, in run order. Chunks never span runs.
int64_t ComputeCompressedChunkCrcs(
    const std::vector<CompressedShuffleRun>& cruns,
    std::vector<uint32_t>* crcs) {
  crcs->clear();
  int64_t covered = 0;
  for (const CompressedShuffleRun& crun : cruns) {
    std::string_view bytes = crun.bytes;
    for (size_t off = 0; off < bytes.size();
         off += ShuffleBuffer::kChecksumChunkBytes) {
      const size_t n = std::min(ShuffleBuffer::kChecksumChunkBytes,
                                bytes.size() - off);
      crcs->push_back(ExtendCrc32c(0, bytes.data() + off, n));
      covered += static_cast<int64_t>(n);
    }
  }
  return covered;
}

// [u32 klen][u32 vlen][key][value], little-endian lengths — the record
// framing of compressed spill runs. Records may straddle BGZF blocks.
Status AppendFramedRecord(BgzfWriter* w, std::string_view key,
                          std::string_view value) {
  char hdr[8];
  const uint32_t klen = static_cast<uint32_t>(key.size());
  const uint32_t vlen = static_cast<uint32_t>(value.size());
  for (int i = 0; i < 4; ++i) {
    hdr[i] = static_cast<char>((klen >> (8 * i)) & 0xff);
    hdr[4 + i] = static_cast<char>((vlen >> (8 * i)) & 0xff);
  }
  GESALL_RETURN_NOT_OK(w->Append(std::string_view(hdr, 8)));
  GESALL_RETURN_NOT_OK(w->Append(key));
  return w->Append(value);
}

// Appends combiner output for one key group into the frozen run,
// charging combined values to the partition arena.
class ArenaCombineEmitter : public CombineEmitter {
 public:
  ArenaCombineEmitter(Arena* arena, const ShuffleEntry* group,
                      ShuffleRun* out, int64_t* emitted)
      : arena_(arena), group_(group), out_(out), emitted_(emitted) {}

  void Emit(std::string_view value) override {
    out_->push_back({group_->prefix, group_->prefix2, group_->key,
                     arena_->Append(value)});
    ++*emitted_;
  }

 private:
  Arena* arena_;
  const ShuffleEntry* group_;
  ShuffleRun* out_;
  int64_t* emitted_;
};

}  // namespace

bool CompressedShuffleRunReader::NextBlock() {
  if (file_off_ >= data_.size()) return false;
  size_t consumed = 0;
  const int64_t t0 = NowMicros();
  status_ = BgzfDecompressBlockInto(data_.substr(file_off_), file_off_,
                                    &scratch_, &consumed);
  decompress_micros_ += NowMicros() - t0;
  if (!status_.ok()) return false;
  file_off_ += consumed;
  pos_ = 0;
  return true;
}

bool CompressedShuffleRunReader::ReadBytes(size_t n, char* dst) {
  while (n > 0) {
    if (pos_ == scratch_.size()) {
      if (!NextBlock()) {
        if (status_.ok()) {
          status_ = Status::Corruption(
              "truncated record in compressed shuffle run at stream offset " +
              std::to_string(file_off_));
        }
        return false;
      }
      continue;
    }
    const size_t take = std::min(n, scratch_.size() - pos_);
    std::memcpy(dst, scratch_.data() + pos_, take);
    pos_ += take;
    dst += take;
    n -= take;
  }
  return true;
}

bool CompressedShuffleRunReader::ReadSpan(size_t n, std::string_view* out) {
  if (scratch_.size() - pos_ >= n) {
    *out = std::string_view(scratch_).substr(pos_, n);
    pos_ += n;
    return true;
  }
  // Straddles the block cut: stitch through the carry buffer. The whole
  // span lands in carry_, so the key/value views inside it survive the
  // scratch_ reloads below (until the next Advance()).
  carry_.clear();
  carry_.reserve(n);
  while (n > 0) {
    if (pos_ == scratch_.size()) {
      if (!NextBlock()) {
        if (status_.ok()) {
          status_ = Status::Corruption(
              "truncated record in compressed shuffle run at stream offset " +
              std::to_string(file_off_));
        }
        return false;
      }
      continue;
    }
    const size_t take = std::min(n, scratch_.size() - pos_);
    carry_.append(scratch_, pos_, take);
    pos_ += take;
    n -= take;
  }
  *out = carry_;
  return true;
}

const ShuffleEntry* CompressedShuffleRunReader::Advance() {
  if (!status_.ok()) return nullptr;
  if (pos_ == scratch_.size() && file_off_ >= data_.size()) {
    return nullptr;  // clean end between records
  }
  // The 8-byte header is parsed into locals so a header straddling a
  // block cut never shares the carry buffer with the payload span.
  char hdr[8];
  if (!ReadBytes(8, hdr)) return nullptr;
  uint32_t klen = 0, vlen = 0;
  for (int i = 0; i < 4; ++i) {
    klen |= static_cast<uint32_t>(static_cast<unsigned char>(hdr[i]))
            << (8 * i);
    vlen |= static_cast<uint32_t>(static_cast<unsigned char>(hdr[4 + i]))
            << (8 * i);
  }
  // Key and value are served as ONE span, so reading the value can never
  // reload the block under the key's view.
  std::string_view span;
  if (!ReadSpan(static_cast<size_t>(klen) + vlen, &span)) return nullptr;
  entry_.key = span.substr(0, klen);
  entry_.value = span.substr(klen);
  entry_.prefix = ShuffleKeyWord(entry_.key, 0);
  entry_.prefix2 = ShuffleKeyWord(entry_.key, 8);
  return &entry_;
}

ShuffleBuffer::ShuffleBuffer(int num_partitions, int64_t sort_buffer_bytes,
                             Combiner* combiner, bool checksum, bool compress,
                             int compress_level, Executor* executor)
    : sort_buffer_bytes_(sort_buffer_bytes), combiner_(combiner),
      checksum_(checksum), compress_(compress),
      compress_level_(compress_level), executor_(executor),
      parts_(num_partitions > 0 ? num_partitions : 0) {}

Status ShuffleBuffer::Add(int p, std::string_view key,
                          std::string_view value) {
  Partition& part = parts_[p];
  std::string_view stored_key = part.arena.Append(key);
  std::string_view stored_value = part.arena.Append(value);
  part.pending.push_back(MakeShuffleEntry(stored_key, stored_value));
  // Same accounting as the pre-arena engine: key + value + 16 bytes of
  // per-record overhead against the sort buffer.
  buffered_bytes_ += static_cast<int64_t>(key.size() + value.size() + 16);
  if (buffered_bytes_ > sort_buffer_bytes_) return SpillAll();
  return Status::OK();
}

Status ShuffleBuffer::SpillAll() {
  std::vector<Partition*> dirty;
  for (auto& part : parts_) {
    if (!part.pending.empty()) dirty.push_back(&part);
  }
  buffered_bytes_ = 0;
  if (dirty.empty()) return Status::OK();
  ++stats_.spills;
  // Compressed spills are cpu-bound (sort + deflate) and touch only
  // their own partition, so fan them out when an executor is armed. A
  // shared combiner instance is not thread-safe — combining stays
  // serial.
  if (compress_ && executor_ != nullptr && combiner_ == nullptr &&
      dirty.size() > 1) {
    std::vector<Status> statuses(dirty.size());
    TaskGroup group(executor_);
    for (size_t i = 0; i < dirty.size(); ++i) {
      Partition* part = dirty[i];
      Status* st = &statuses[i];
      group.Submit([this, part, st] { *st = SpillPartition(part); });
    }
    group.Wait();
    for (const Status& st : statuses) GESALL_RETURN_NOT_OK(st);
    return Status::OK();
  }
  for (Partition* part : dirty) GESALL_RETURN_NOT_OK(SpillPartition(part));
  return Status::OK();
}

Status ShuffleBuffer::CompressRun(Partition* part, const ShuffleRun& run) {
  CompressedShuffleRun crun;
  BgzfWriter w(&crun.bytes, compress_level_);
  for (const ShuffleEntry& e : run) {
    GESALL_RETURN_NOT_OK(AppendFramedRecord(&w, e.key, e.value));
  }
  GESALL_RETURN_NOT_OK(w.Flush());
  crun.records = static_cast<int64_t>(run.size());
  crun.raw_bytes = w.stats().raw_bytes;
  part->codec.raw_bytes += w.stats().raw_bytes;
  part->codec.stored_bytes += w.stats().stored_bytes;
  part->codec.blocks += w.stats().blocks;
  part->codec.stored_blocks += w.stats().stored_blocks;
  part->codec.compress_micros += w.stats().compress_micros;
  part->cruns.push_back(std::move(crun));
  return Status::OK();
}

Status ShuffleBuffer::SpillPartition(Partition* part) {
  // Stable sort keeps equal keys in emission order — the engine's
  // documented (map task, emission order) tie-break.
  std::stable_sort(part->pending.begin(), part->pending.end(),
                   ShuffleKeyLess);
  if (combiner_ == nullptr) {
    if (compress_) {
      GESALL_RETURN_NOT_OK(CompressRun(part, part->pending));
      part->pending.clear();
      // The raw bytes now live only in the compressed frame; releasing
      // the arena is the memory win of compressed spills.
      part->arena.Clear();
      return Status::OK();
    }
    part->runs.push_back(std::move(part->pending));
    part->pending.clear();
    return Status::OK();
  }
  ShuffleRun combined;
  std::vector<std::string_view> values;
  const ShuffleRun& run = part->pending;
  for (size_t i = 0; i < run.size();) {
    size_t j = i;
    values.clear();
    while (j < run.size() && ShuffleKeyEqual(run[j], run[i])) {
      values.push_back(run[j].value);
      ++j;
    }
    stats_.combine_input_records += static_cast<int64_t>(j - i);
    ArenaCombineEmitter emit(&part->arena, &run[i], &combined,
                             &stats_.combine_output_records);
    GESALL_RETURN_NOT_OK(combiner_->Combine(run[i].key, values, &emit));
    i = j;
  }
  if (compress_) {
    GESALL_RETURN_NOT_OK(CompressRun(part, combined));
    part->pending.clear();
    part->arena.Clear();
    return Status::OK();
  }
  part->runs.push_back(std::move(combined));
  part->pending.clear();
  return Status::OK();
}

void ShuffleBuffer::MergePartition(Partition* part) {
  auto& runs = part->runs;
  size_t total = 0;
  for (const auto& run : runs) {
    total += run.size();
    for (const auto& e : run) {
      stats_.merge_bytes +=
          static_cast<int64_t>(e.key.size() + e.value.size());
    }
  }
  ShuffleRun merged;
  merged.reserve(total);
  // K-way merge over the entry index: no key/value bytes move, only
  // 48-byte entries. Stable across run creation order.
  std::vector<const ShuffleRun*> run_ptrs;
  run_ptrs.reserve(runs.size());
  for (const auto& run : runs) run_ptrs.push_back(&run);
  ShuffleRunMerger merger(run_ptrs);
  for (const ShuffleEntry* e = merger.Next(); e != nullptr;
       e = merger.Next()) {
    merged.push_back(*e);
  }
  runs.clear();
  runs.push_back(std::move(merged));
}

Status ShuffleBuffer::MergeCompressedPartition(Partition* part) {
  // Stream-merge through lazy cursors and re-serialize — the Fig. 5(b)
  // merge rewrite, but over compressed frames: at no point is a whole
  // run inflated.
  std::vector<std::unique_ptr<CompressedShuffleRunReader>> readers;
  std::vector<ShuffleRunReader*> reader_ptrs;
  readers.reserve(part->cruns.size());
  for (const CompressedShuffleRun& crun : part->cruns) {
    readers.push_back(
        std::make_unique<CompressedShuffleRunReader>(crun.bytes));
    reader_ptrs.push_back(readers.back().get());
  }
  CompressedShuffleRun merged;
  BgzfWriter w(&merged.bytes, compress_level_);
  ShuffleRunMerger merger(reader_ptrs);
  for (const ShuffleEntry* e = merger.Next(); e != nullptr;
       e = merger.Next()) {
    stats_.merge_bytes += static_cast<int64_t>(e->key.size() +
                                               e->value.size());
    GESALL_RETURN_NOT_OK(AppendFramedRecord(&w, e->key, e->value));
    ++merged.records;
  }
  for (const auto& reader : readers) {
    GESALL_RETURN_NOT_OK(reader->status());
    part->decompress_micros += reader->decompress_micros();
  }
  GESALL_RETURN_NOT_OK(w.Flush());
  merged.raw_bytes = w.stats().raw_bytes;
  part->codec.raw_bytes += w.stats().raw_bytes;
  part->codec.stored_bytes += w.stats().stored_bytes;
  part->codec.blocks += w.stats().blocks;
  part->codec.stored_blocks += w.stats().stored_blocks;
  part->codec.compress_micros += w.stats().compress_micros;
  part->cruns.clear();
  part->cruns.push_back(std::move(merged));
  return Status::OK();
}

Status ShuffleBuffer::Finish() {
  GESALL_RETURN_NOT_OK(SpillAll());
  for (auto& part : parts_) {
    if (compress_) {
      if (part.cruns.size() > 1) {
        GESALL_RETURN_NOT_OK(MergeCompressedPartition(&part));
      }
    } else if (part.runs.size() > 1) {
      MergePartition(&part);
    }
    // Seal after the merge: the merge reorders only the entry index (or
    // rewrites the compressed frame), so the sums cover the final spill
    // byte stream the reduce side reads.
    if (checksum_) SealChecksums(&part);
    // Fold the partition-local codec accounting (kept local so parallel
    // spills never contend) into the task stats.
    stats_.spill_bytes_raw += part.codec.raw_bytes;
    stats_.spill_bytes_compressed += part.codec.stored_bytes;
    stats_.compress_micros += part.codec.compress_micros;
    stats_.decompress_micros += part.decompress_micros;
    part.codec = BgzfCodecStats{};
    part.decompress_micros = 0;
  }
  return Status::OK();
}

void ShuffleBuffer::SealChecksums(Partition* part) {
  part->sealed_bytes =
      compress_ ? ComputeCompressedChunkCrcs(part->cruns, &part->chunk_crcs)
                : ComputeChunkCrcs(part->arena, &part->chunk_crcs);
  stats_.checksummed_bytes += part->sealed_bytes;
}

Status ShuffleBuffer::VerifyPartition(int p) const {
  const Partition& part = parts_[p];
  if (!checksum_ || part.sealed_bytes < 0) return Status::OK();
  std::vector<uint32_t> actual;
  const int64_t covered =
      compress_ ? ComputeCompressedChunkCrcs(part.cruns, &actual)
                : ComputeChunkCrcs(part.arena, &actual);
  if (covered != part.sealed_bytes || actual.size() != part.chunk_crcs.size()) {
    return Status::Corruption(
        "shuffle partition " + std::to_string(p) +
        " changed size after sealing: " + std::to_string(covered) +
        " bytes vs " + std::to_string(part.sealed_bytes) + " sealed");
  }
  for (size_t c = 0; c < actual.size(); ++c) {
    if (actual[c] != part.chunk_crcs[c]) {
      return Status::Corruption(
          "shuffle chunk checksum mismatch: partition " + std::to_string(p) +
          " chunk " + std::to_string(c));
    }
  }
  return Status::OK();
}

}  // namespace gesall

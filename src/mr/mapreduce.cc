#include "mr/mapreduce.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <queue>
#include <thread>

#include "mr/shuffle_buffer.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace gesall {

int HashPartitioner::PartitionView(std::string_view key,
                                   int num_partitions) const {
  if (num_partitions <= 1) return 0;  // <= 0 would be UB in the modulo
  return static_cast<int>(Fnv1a64(key) %
                          static_cast<uint64_t>(num_partitions));
}

int RangePartitioner::PartitionView(std::string_view key,
                                    int num_partitions) const {
  if (num_partitions <= 1) return 0;
  auto it = std::upper_bound(
      boundaries_.begin(), boundaries_.end(), key,
      [](std::string_view k, const std::string& b) { return k < b; });
  int p = static_cast<int>(it - boundaries_.begin());
  return std::min(p, num_partitions - 1);
}

InputSplit InlineSplit(std::string data) {
  auto shared = std::make_shared<std::string>(std::move(data));
  InputSplit split;
  split.load = [shared]() -> Result<std::string> { return *shared; };
  return split;
}

namespace {

Status ValidateJobConfig(const JobConfig& c, bool needs_reducers) {
  if (needs_reducers && c.num_reducers < 1) {
    return Status::InvalidArgument("num_reducers must be >= 1");
  }
  if (c.max_parallel_tasks < 1) {
    return Status::InvalidArgument("max_parallel_tasks must be >= 1");
  }
  if (c.max_task_attempts < 1) {
    return Status::InvalidArgument("max_task_attempts must be >= 1");
  }
  if (c.retry_base_ms < 0 || c.retry_max_backoff_ms < 0) {
    return Status::InvalidArgument("retry backoff must be non-negative");
  }
  if (c.speculative_slow_task_ms < 0) {
    return Status::InvalidArgument(
        "speculative_slow_task_ms must be non-negative");
  }
  if (c.speculative_win_margin_ms < 0) {
    return Status::InvalidArgument(
        "speculative_win_margin_ms must be non-negative");
  }
  if (c.num_nodes < 0) {
    return Status::InvalidArgument("num_nodes must be non-negative");
  }
  if (c.max_map_reexecutions < 0) {
    return Status::InvalidArgument(
        "max_map_reexecutions must be non-negative");
  }
  return Status::OK();
}

// Per-map-task output: the frozen arena shuffle (at most one sorted run
// per partition after Finish) plus bookkeeping.
struct MapTaskOutput {
  std::unique_ptr<ShuffleBuffer> shuffle;
  JobCounters counters;
  TaskRecord record;
  Status status;
  bool skipped = false;
};

// Per-map-task output of a map-only job: emitted values in order.
struct MapOnlyTaskOutput {
  std::vector<std::string> values;
  JobCounters counters;
  TaskRecord record;
  Status status;
  bool skipped = false;
};

// Per-reduce-task output.
struct ReduceTaskOutput {
  std::vector<std::string> values;
  JobCounters counters;
  TaskRecord record;
  Status status;
};

// Per-task bookkeeping of the retry/speculation machinery, kept separate
// from attempt counters so a discarded attempt leaves no counter residue.
struct AttemptStats {
  int retries = 0;
  bool speculative_launched = false;
  bool speculative_won = false;
};

// Runs one task through Hadoop-style attempt semantics: retry failed
// attempts with capped exponential backoff up to max_task_attempts, then
// optionally re-execute a slow successful attempt once, keeping whichever
// finished first (speculative execution). `run_attempt(attempt, out)`
// must fully populate a default-constructed *out, including out->status
// and the record timestamps; each attempt starts from fresh state so a
// failed attempt's partial output is discarded. Deterministic: attempt
// numbering and the duration-based speculation verdict do not depend on
// thread interleaving when task durations are injection-dominated.
template <typename TaskOut, typename Fn>
void RunTaskAttempts(const JobConfig& cfg, const Fn& run_attempt,
                     TaskOut* out, AttemptStats* stats) {
  for (int attempt = 0;; ++attempt) {
    if (attempt > 0) {
      ++stats->retries;
      if (cfg.retry_base_ms > 0) {
        int shift = std::min(attempt - 1, 20);
        int64_t delay =
            std::min<int64_t>(cfg.retry_max_backoff_ms,
                              static_cast<int64_t>(cfg.retry_base_ms)
                                  << shift);
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
    }
    TaskOut attempt_out{};
    run_attempt(attempt, &attempt_out);
    if (attempt_out.status.ok()) {
      double seconds = attempt_out.record.end_seconds -
                       attempt_out.record.start_seconds;
      if (cfg.speculative_execution &&
          seconds * 1000.0 >= cfg.speculative_slow_task_ms) {
        // Straggler: launch one backup attempt (numbered past the retry
        // range so scheduled/latency faults aimed at regular attempts
        // miss it) and keep whichever finished first. Tie-break: the
        // backup must beat the original by MORE than the configured win
        // margin; otherwise the original deterministically wins. The
        // margin caps the measured-duration comparison so two attempts
        // with identical injected latency (which differ only by
        // scheduler jitter) cannot nondeterministically flip speculative
        // bookkeeping.
        stats->speculative_launched = true;
        TaskOut backup{};
        run_attempt(cfg.max_task_attempts + attempt, &backup);
        double backup_seconds =
            backup.record.end_seconds - backup.record.start_seconds;
        if (backup.status.ok() &&
            (seconds - backup_seconds) * 1000.0 >
                cfg.speculative_win_margin_ms) {
          backup.record.speculative = true;
          stats->speculative_won = true;
          *out = std::move(backup);
          return;
        }
      }
      *out = std::move(attempt_out);
      return;
    }
    if (attempt + 1 >= cfg.max_task_attempts) {
      *out = std::move(attempt_out);
      return;
    }
  }
}

class MapContextImpl : public MapContext {
 public:
  MapContextImpl(const Partitioner* partitioner, int num_partitions,
                 int64_t sort_buffer_bytes, Combiner* combiner,
                 bool checksum, MapTaskOutput* out)
      : partitioner_(partitioner), num_partitions_(num_partitions),
        out_(out) {
    out_->shuffle = std::make_unique<ShuffleBuffer>(
        num_partitions, sort_buffer_bytes, combiner, checksum);
  }

  void Emit(std::string key, std::string value) override {
    EmitView(key, value);
  }

  void EmitView(std::string_view key, std::string_view value) override {
    if (!emit_status_.ok()) return;  // combiner already failed; drop
    int p = partitioner_->PartitionView(key, num_partitions_);
    ++records_;
    bytes_ += static_cast<int64_t>(key.size() + value.size());
    emit_status_ = out_->shuffle->Add(p, key, value);
  }

  void IncrementCounter(const std::string& name, int64_t delta) override {
    out_->counters.Add(name, delta);
  }

  // Flushes the batched per-record engine counters (hoisted out of the
  // Emit hot path) into the task counters.
  void FlushCounters() {
    if (records_ > 0) {
      out_->counters.Add("map_output_records", records_);
      out_->counters.Add("map_output_bytes", bytes_);
    }
    records_ = 0;
    bytes_ = 0;
  }

  // Final spill + map-side merge (the Fig. 5(b) overhead), then counter
  // flush. Propagates deferred combiner failures.
  Status FinishTask() {
    GESALL_RETURN_NOT_OK(emit_status_);
    GESALL_RETURN_NOT_OK(out_->shuffle->Finish());
    FlushCounters();
    const ShuffleStats& s = out_->shuffle->stats();
    if (s.spills > 0) out_->counters.Add("map_spills", s.spills);
    if (s.merge_bytes > 0) {
      out_->counters.Add("map_merge_bytes", s.merge_bytes);
    }
    if (s.combine_input_records > 0) {
      out_->counters.Add("combine_input_records", s.combine_input_records);
      out_->counters.Add("combine_output_records",
                         s.combine_output_records);
    }
    if (s.checksummed_bytes > 0) {
      out_->counters.Add("shuffle_checksummed_bytes", s.checksummed_bytes);
    }
    return Status::OK();
  }

 private:
  const Partitioner* partitioner_;
  int num_partitions_;
  MapTaskOutput* out_;
  Status emit_status_;
  int64_t records_ = 0;
  int64_t bytes_ = 0;
};

class ReduceContextImpl : public ReduceContext {
 public:
  explicit ReduceContextImpl(std::vector<std::string>* out,
                             JobCounters* counters)
      : out_(out), counters_(counters) {}
  void Emit(std::string value) override {
    ++records_;
    bytes_ += static_cast<int64_t>(value.size());
    out_->push_back(std::move(value));
  }
  void IncrementCounter(const std::string& name, int64_t delta) override {
    counters_->Add(name, delta);
  }
  void FlushCounters() {
    if (records_ > 0) {
      counters_->Add("reduce_output_records", records_);
      counters_->Add("reduce_output_bytes", bytes_);
    }
    records_ = 0;
    bytes_ = 0;
  }

 private:
  std::vector<std::string>* out_;
  JobCounters* counters_;
  int64_t records_ = 0;
  int64_t bytes_ = 0;
};

// Map-only contexts collect values directly (keys ignored).
class MapOnlyContext : public MapContext {
 public:
  MapOnlyContext(std::vector<std::string>* values, JobCounters* counters)
      : values_(values), counters_(counters) {}
  void Emit(std::string key, std::string value) override {
    (void)key;
    ++records_;
    bytes_ += static_cast<int64_t>(value.size());
    values_->push_back(std::move(value));
  }
  void EmitView(std::string_view key, std::string_view value) override {
    (void)key;
    ++records_;
    bytes_ += static_cast<int64_t>(value.size());
    values_->emplace_back(value);
  }
  void IncrementCounter(const std::string& name, int64_t delta) override {
    counters_->Add(name, delta);
  }
  void FlushCounters() {
    if (records_ > 0) {
      counters_->Add("map_output_records", records_);
      counters_->Add("map_output_bytes", bytes_);
    }
    records_ = 0;
    bytes_ = 0;
  }

 private:
  std::vector<std::string>* values_;
  JobCounters* counters_;
  int64_t records_ = 0;
  int64_t bytes_ = 0;
};

// Shared prologue of one map attempt: injected straggler latency, then
// the split.load fault point, then the real split load, then the
// mr.map_attempt fault point. Returns the split bytes on success.
Result<std::string> LoadSplitAttempt(const InputSplit& split, int index,
                                     int attempt, FaultInjector* injector) {
  if (injector != nullptr) {
    int latency = injector->LatencyMs(kFaultMapAttempt, index, attempt);
    if (latency > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(latency));
    }
    GESALL_RETURN_NOT_OK(injector->MaybeFail(kFaultSplitLoad, index,
                                             attempt));
  }
  GESALL_ASSIGN_OR_RETURN(std::string input, split.load());
  if (injector != nullptr) {
    GESALL_RETURN_NOT_OK(injector->MaybeFail(kFaultMapAttempt, index,
                                             attempt));
  }
  return input;
}

// Folds per-task attempt bookkeeping into the task's own counters and
// applies skip-bad-records isolation to a map task that exhausted its
// attempts. TaskOut is one of the map-side outputs.
template <typename TaskOut>
void FinalizeMapTask(const JobConfig& cfg, const AttemptStats& stats,
                     TaskOut* out) {
  if (!out->status.ok() && cfg.skip_bad_records) {
    // Poison split: drop the failed attempt's partial output and
    // counters so job-level counter invariants still hold.
    TaskRecord record = out->record;
    *out = TaskOut{};
    out->record = record;
    out->skipped = true;
  }
  if (stats.retries > 0) {
    out->counters.Add("map_task_retries", stats.retries);
  }
  if (stats.speculative_launched) {
    out->counters.Add("speculative_launches", 1);
  }
  if (stats.speculative_won) out->counters.Add("speculative_wins", 1);
  if (out->skipped) out->counters.Add("map_splits_skipped", 1);
}

}  // namespace

MapReduceJob::MapReduceJob(JobConfig config) : config_(std::move(config)) {}

Result<JobResult> MapReduceJob::RunMapOnly(
    const std::vector<InputSplit>& splits,
    const MapperFactory& mapper_factory) {
  GESALL_RETURN_NOT_OK(ValidateJobConfig(config_, /*needs_reducers=*/false));
  // A map-only job is a full job whose "reducers" are identity pass-
  // throughs keyed by map task, so outputs stay per-task.
  JobResult result;
  result.reducer_outputs.resize(splits.size());
  std::vector<MapOnlyTaskOutput> outputs(splits.size());
  Stopwatch job_clock;
  {
    ThreadPool pool(config_.max_parallel_tasks);
    for (size_t i = 0; i < splits.size(); ++i) {
      pool.Submit([&, i] {
        auto run_attempt = [&, i](int attempt, MapOnlyTaskOutput* out) {
          out->record.type = TaskRecord::Type::kMap;
          out->record.index = static_cast<int>(i);
          out->record.attempt = attempt;
          out->record.start_seconds = job_clock.ElapsedSeconds();
          auto input =
              LoadSplitAttempt(splits[i], static_cast<int>(i), attempt,
                               config_.fault_injector);
          if (input.ok()) {
            MapOnlyContext ctx(&out->values, &out->counters);
            auto mapper = mapper_factory();
            out->status = mapper->Map(input.ValueOrDie(), &ctx);
            ctx.FlushCounters();
            out->record.input_bytes =
                static_cast<int64_t>(input.ValueOrDie().size());
            out->record.output_bytes =
                out->counters.Get("map_output_bytes");
          } else {
            out->status = input.status();
          }
          out->record.end_seconds = job_clock.ElapsedSeconds();
        };
        AttemptStats stats;
        RunTaskAttempts(config_, run_attempt, &outputs[i], &stats);
        FinalizeMapTask(config_, stats, &outputs[i]);
      });
    }
    pool.Wait();
  }
  for (size_t i = 0; i < splits.size(); ++i) {
    GESALL_RETURN_NOT_OK(outputs[i].status);
    if (outputs[i].skipped) {
      result.skipped_splits.push_back(static_cast<int>(i));
    }
    result.counters.Merge(outputs[i].counters);
    result.tasks.push_back(outputs[i].record);
    result.reducer_outputs[i] = std::move(outputs[i].values);
  }
  return result;
}

Result<JobResult> MapReduceJob::Run(const std::vector<InputSplit>& splits,
                                    const MapperFactory& mapper_factory,
                                    const ReducerFactory& reducer_factory,
                                    const Partitioner* partitioner) {
  GESALL_RETURN_NOT_OK(ValidateJobConfig(config_, /*needs_reducers=*/true));
  HashPartitioner default_partitioner;
  if (partitioner == nullptr) partitioner = &default_partitioner;
  const int R = config_.num_reducers;

  std::vector<MapTaskOutput> outputs(splits.size());
  Stopwatch job_clock;

  // Node assignment of the whole-node failure model: locality-hinted
  // tasks run on their preferred node, the rest round-robin.
  const int num_nodes = config_.num_nodes;
  std::vector<int> node_of(splits.size(), -1);
  if (num_nodes > 0) {
    for (size_t i = 0; i < splits.size(); ++i) {
      const int preferred = splits[i].preferred_node;
      node_of[i] =
          (preferred >= 0 ? preferred : static_cast<int>(i)) % num_nodes;
    }
  }

  // One full map task (all attempts + finalization) into *slot. Reused
  // verbatim by the lost-map-output re-execution below, so a re-executed
  // task goes through the same retry/speculation/skip machinery.
  auto execute_map = [&](size_t i, MapTaskOutput* slot) {
    auto run_attempt = [&, i](int attempt, MapTaskOutput* out) {
      out->record.type = TaskRecord::Type::kMap;
      out->record.index = static_cast<int>(i);
      out->record.attempt = attempt;
      out->record.start_seconds = job_clock.ElapsedSeconds();
      auto input =
          LoadSplitAttempt(splits[i], static_cast<int>(i), attempt,
                           config_.fault_injector);
      if (input.ok()) {
        // Each attempt gets a fresh combiner instance so stateful
        // combiners cannot leak state across attempts.
        std::unique_ptr<Combiner> combiner;
        if (config_.combiner_factory) {
          combiner = config_.combiner_factory();
        }
        MapContextImpl ctx(partitioner, R, config_.sort_buffer_bytes,
                           combiner.get(), config_.checksum_shuffle, out);
        auto mapper = mapper_factory();
        out->status = mapper->Map(input.ValueOrDie(), &ctx);
        if (out->status.ok()) {
          out->status = ctx.FinishTask();
        } else {
          ctx.FlushCounters();
        }
        out->record.input_bytes =
            static_cast<int64_t>(input.ValueOrDie().size());
        out->record.output_bytes =
            out->counters.Get("map_output_bytes");
      } else {
        out->status = input.status();
      }
      out->record.end_seconds = job_clock.ElapsedSeconds();
    };
    AttemptStats stats;
    RunTaskAttempts(config_, run_attempt, slot, &stats);
    FinalizeMapTask(config_, stats, slot);
    slot->record.node = node_of[i];
  };

  {
    ThreadPool pool(config_.max_parallel_tasks);
    for (size_t i = 0; i < splits.size(); ++i) {
      pool.Submit([&, i] { execute_map(i, &outputs[i]); });
    }
    pool.Wait();
  }

  // Reduce-side fetch with Hadoop lost-map-output semantics. A map
  // output is lost when its node died ("node.crash", attempt 0 = the
  // heartbeat epoch the job observes), when the fetch itself is failed
  // by "mr.shuffle_fetch" (key = map index, attempt = fetch epoch), or
  // when a shuffle run's CRC32C no longer verifies. Lost outputs
  // re-execute their COMPLETED map task on the next live node; each
  // epoch re-fetches only the re-executed outputs, and a task lost more
  // than max_map_reexecutions times fails the job.
  JobCounters recovery_counters;
  if (num_nodes > 0 || config_.checksum_shuffle) {
    FaultInjector* injector = config_.fault_injector;
    std::vector<bool> dead(num_nodes > 0 ? num_nodes : 0, false);
    if (injector != nullptr) {
      for (int n = 0; n < num_nodes; ++n) {
        dead[n] = injector->ShouldFail(kFaultNodeCrash, n, 0);
      }
    }
    std::vector<int> reexecutions(splits.size(), 0);
    std::vector<size_t> fetch_pending(splits.size());
    for (size_t i = 0; i < splits.size(); ++i) fetch_pending[i] = i;
    for (int epoch = 0; !fetch_pending.empty(); ++epoch) {
      std::vector<size_t> lost;
      for (size_t i : fetch_pending) {
        MapTaskOutput& out = outputs[i];
        if (!out.status.ok() || out.skipped || out.shuffle == nullptr) {
          continue;  // nothing fetchable; the status merge handles it
        }
        if (num_nodes > 0 && dead[node_of[i]]) {
          recovery_counters.Add("map_outputs_lost_to_dead_nodes", 1);
          lost.push_back(i);
          continue;
        }
        if (injector != nullptr &&
            injector->ShouldFail(kFaultShuffleFetch,
                                 static_cast<int64_t>(i), epoch)) {
          recovery_counters.Add("shuffle_fetch_corruptions", 1);
          lost.push_back(i);
          continue;
        }
        if (config_.checksum_shuffle) {
          Status verify;
          for (int p = 0;
               verify.ok() && p < out.shuffle->num_partitions(); ++p) {
            verify = out.shuffle->VerifyPartition(p);
          }
          if (!verify.ok()) {
            recovery_counters.Add("shuffle_fetch_corruptions", 1);
            lost.push_back(i);
            continue;
          }
          recovery_counters.Add("shuffle_partitions_verified",
                                out.shuffle->num_partitions());
        }
      }
      if (lost.empty()) break;
      for (size_t i : lost) {
        if (++reexecutions[i] > config_.max_map_reexecutions) {
          return Status::IOError(
              "map output " + std::to_string(i) + " lost " +
              std::to_string(reexecutions[i]) +
              " times, exceeding max_map_reexecutions (" +
              std::to_string(config_.max_map_reexecutions) + ")");
        }
        if (num_nodes > 0) {
          int moved = -1;
          for (int k = 1; k <= num_nodes; ++k) {
            const int candidate = (node_of[i] + k) % num_nodes;
            if (!dead[candidate]) {
              moved = candidate;
              break;
            }
          }
          if (moved < 0) {
            return Status::IOError("cannot re-execute map task " +
                                   std::to_string(i) +
                                   ": every compute node is dead");
          }
          node_of[i] = moved;
        }
        outputs[i] = MapTaskOutput{};  // no counter/record residue
      }
      {
        ThreadPool pool(config_.max_parallel_tasks);
        for (size_t i : lost) {
          pool.Submit([&, i] { execute_map(i, &outputs[i]); });
        }
        pool.Wait();
      }
      recovery_counters.Add("map_tasks_reexecuted",
                            static_cast<int64_t>(lost.size()));
      fetch_pending = std::move(lost);
    }
  }

  JobResult result;
  for (auto& out : outputs) {
    GESALL_RETURN_NOT_OK(out.status);
    if (out.skipped) result.skipped_splits.push_back(out.record.index);
    result.counters.Merge(out.counters);
    result.tasks.push_back(out.record);
  }
  result.counters.Merge(recovery_counters);

  // Shuffle + reduce (map outputs are stable across reduce attempts, so
  // a retried reducer re-merges the same frozen runs).
  result.reducer_outputs.resize(R);
  std::vector<ReduceTaskOutput> reduce_outputs(R);
  {
    ThreadPool pool(config_.max_parallel_tasks);
    for (int r = 0; r < R; ++r) {
      pool.Submit([&, r] {
        auto run_attempt = [&, r](int attempt, ReduceTaskOutput* out) {
          out->record.type = TaskRecord::Type::kReduce;
          out->record.index = r;
          out->record.attempt = attempt;
          out->record.start_seconds = job_clock.ElapsedSeconds();
          FaultInjector* injector = config_.fault_injector;
          if (injector != nullptr) {
            int latency = injector->LatencyMs(kFaultReduceAttempt, r,
                                              attempt);
            if (latency > 0) {
              std::this_thread::sleep_for(
                  std::chrono::milliseconds(latency));
            }
            out->status = injector->MaybeFail(kFaultReduceAttempt, r,
                                              attempt);
            if (!out->status.ok()) {
              out->record.end_seconds = job_clock.ElapsedSeconds();
              return;
            }
          }
          // Gather this partition's frozen run from every map task (each
          // task has at most one run per partition after the map-side
          // merge) and merge the entry indexes, stable by map task
          // index. No key/value bytes are copied: entries are views into
          // the map tasks' arenas.
          std::vector<const ShuffleRun*> runs;
          int64_t shuffle_bytes = 0, shuffle_records = 0;
          for (const auto& map_out : outputs) {
            if (map_out.shuffle == nullptr) continue;  // skipped split
            if (r >= map_out.shuffle->num_partitions()) continue;
            for (const auto& run : map_out.shuffle->runs(r)) {
              runs.push_back(&run);
              shuffle_records += static_cast<int64_t>(run.size());
              for (const auto& e : run) {
                shuffle_bytes +=
                    static_cast<int64_t>(e.key.size() + e.value.size());
              }
            }
          }
          out->counters.Add("reduce_shuffle_bytes", shuffle_bytes);
          out->counters.Add("reduce_shuffle_records", shuffle_records);

          ShuffleRunMerger merger(runs);
          ReduceContextImpl ctx(&out->values, &out->counters);
          auto reducer = reducer_factory();
          const ShuffleEntry* current = nullptr;
          std::vector<std::string_view> values;
          auto flush = [&]() -> Status {
            if (current == nullptr) return Status::OK();
            return reducer->ReduceViews(current->key, values, &ctx);
          };
          Status st;
          for (const ShuffleEntry* e = merger.Next();
               e != nullptr && st.ok(); e = merger.Next()) {
            if (current == nullptr || !ShuffleKeyEqual(*e, *current)) {
              st = flush();
              current = e;  // stable: frozen runs never reallocate
              values.clear();
            }
            values.push_back(e->value);
          }
          if (st.ok()) st = flush();
          ctx.FlushCounters();
          out->status = st;
          out->record.end_seconds = job_clock.ElapsedSeconds();
          out->record.input_bytes = shuffle_bytes;
          out->record.output_bytes =
              out->counters.Get("reduce_output_bytes");
        };
        AttemptStats stats;
        RunTaskAttempts(config_, run_attempt, &reduce_outputs[r], &stats);
        if (stats.retries > 0) {
          reduce_outputs[r].counters.Add("reduce_task_retries",
                                         stats.retries);
        }
        if (stats.speculative_launched) {
          reduce_outputs[r].counters.Add("speculative_launches", 1);
        }
        if (stats.speculative_won) {
          reduce_outputs[r].counters.Add("speculative_wins", 1);
        }
      });
    }
    pool.Wait();
  }
  for (int r = 0; r < R; ++r) {
    GESALL_RETURN_NOT_OK(reduce_outputs[r].status);
    result.counters.Merge(reduce_outputs[r].counters);
    result.tasks.push_back(reduce_outputs[r].record);
    result.reducer_outputs[r] = std::move(reduce_outputs[r].values);
  }
  return result;
}

}  // namespace gesall

#include "mr/mapreduce.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <queue>
#include <thread>

#include "mr/shuffle_buffer.h"
#include "util/executor.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace gesall {

int HashPartitioner::PartitionView(std::string_view key,
                                   int num_partitions) const {
  if (num_partitions <= 1) return 0;  // <= 0 would be UB in the modulo
  return static_cast<int>(Fnv1a64(key) %
                          static_cast<uint64_t>(num_partitions));
}

int RangePartitioner::PartitionView(std::string_view key,
                                    int num_partitions) const {
  if (num_partitions <= 1) return 0;
  auto it = std::upper_bound(
      boundaries_.begin(), boundaries_.end(), key,
      [](std::string_view k, const std::string& b) { return k < b; });
  int p = static_cast<int>(it - boundaries_.begin());
  return std::min(p, num_partitions - 1);
}

InputSplit InlineSplit(std::string data) {
  auto shared = std::make_shared<std::string>(std::move(data));
  InputSplit split;
  split.load = [shared]() -> Result<std::string> { return *shared; };
  return split;
}

namespace {

Status ValidateJobConfig(const JobConfig& c, bool needs_reducers) {
  if (needs_reducers && c.num_reducers < 1) {
    return Status::InvalidArgument("num_reducers must be >= 1");
  }
  if (c.max_parallel_tasks < 1) {
    return Status::InvalidArgument("max_parallel_tasks must be >= 1");
  }
  if (c.max_task_attempts < 1) {
    return Status::InvalidArgument("max_task_attempts must be >= 1");
  }
  if (c.retry_base_ms < 0 || c.retry_max_backoff_ms < 0) {
    return Status::InvalidArgument("retry backoff must be non-negative");
  }
  if (c.speculative_slow_task_ms < 0) {
    return Status::InvalidArgument(
        "speculative_slow_task_ms must be non-negative");
  }
  if (c.speculative_win_margin_ms < 0) {
    return Status::InvalidArgument(
        "speculative_win_margin_ms must be non-negative");
  }
  if (c.num_nodes < 0) {
    return Status::InvalidArgument("num_nodes must be non-negative");
  }
  if (c.max_map_reexecutions < 0) {
    return Status::InvalidArgument(
        "max_map_reexecutions must be non-negative");
  }
  if (c.shuffle_compress_level < -1 || c.shuffle_compress_level > 9) {
    return Status::InvalidArgument(
        "shuffle_compress_level must be -1..9");
  }
  return Status::OK();
}

// Per-map-task output: the frozen arena shuffle (at most one sorted run
// per partition after Finish) plus bookkeeping.
struct MapTaskOutput {
  std::unique_ptr<ShuffleBuffer> shuffle;
  JobCounters counters;
  TaskRecord record;
  Status status;
  bool skipped = false;
};

// Per-map-task output of a map-only job: emitted values in order.
struct MapOnlyTaskOutput {
  std::vector<std::string> values;
  JobCounters counters;
  TaskRecord record;
  Status status;
  bool skipped = false;
};

// Per-reduce-task output.
struct ReduceTaskOutput {
  std::vector<std::string> values;
  JobCounters counters;
  TaskRecord record;
  Status status;
};

// Per-task bookkeeping of the retry/speculation machinery, kept separate
// from attempt counters so a discarded attempt leaves no counter residue.
struct AttemptStats {
  int retries = 0;
  bool speculative_launched = false;
  bool speculative_won = false;
};

// Runs one task through Hadoop-style attempt semantics: retry failed
// attempts with capped exponential backoff up to max_task_attempts, then
// optionally re-execute a slow successful attempt once, keeping whichever
// finished first (speculative execution). `run_attempt(attempt, out)`
// must fully populate a default-constructed *out, including out->status
// and the record timestamps; each attempt starts from fresh state so a
// failed attempt's partial output is discarded. Deterministic: attempt
// numbering and the duration-based speculation verdict do not depend on
// thread interleaving when task durations are injection-dominated.
template <typename TaskOut, typename Fn>
void RunTaskAttempts(const JobConfig& cfg, const Fn& run_attempt,
                     TaskOut* out, AttemptStats* stats) {
  for (int attempt = 0;; ++attempt) {
    if (attempt > 0) {
      ++stats->retries;
      if (cfg.retry_base_ms > 0) {
        int shift = std::min(attempt - 1, 20);
        int64_t delay =
            std::min<int64_t>(cfg.retry_max_backoff_ms,
                              static_cast<int64_t>(cfg.retry_base_ms)
                                  << shift);
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
    }
    TaskOut attempt_out{};
    run_attempt(attempt, &attempt_out);
    if (attempt_out.status.IsCancelled()) {
      // Cancellation is terminal, not a fault: retrying or launching a
      // speculative backup would just re-observe the flipped token.
      *out = std::move(attempt_out);
      return;
    }
    if (attempt_out.status.ok()) {
      double seconds = attempt_out.record.end_seconds -
                       attempt_out.record.start_seconds;
      if (cfg.speculative_execution &&
          seconds * 1000.0 >= cfg.speculative_slow_task_ms) {
        // Straggler: launch one backup attempt (numbered past the retry
        // range so scheduled/latency faults aimed at regular attempts
        // miss it) and keep whichever finished first. Tie-break: the
        // backup must beat the original by MORE than the configured win
        // margin; otherwise the original deterministically wins. The
        // margin caps the measured-duration comparison so two attempts
        // with identical injected latency (which differ only by
        // scheduler jitter) cannot nondeterministically flip speculative
        // bookkeeping.
        stats->speculative_launched = true;
        TaskOut backup{};
        run_attempt(cfg.max_task_attempts + attempt, &backup);
        double backup_seconds =
            backup.record.end_seconds - backup.record.start_seconds;
        if (backup.status.ok() &&
            (seconds - backup_seconds) * 1000.0 >
                cfg.speculative_win_margin_ms) {
          backup.record.speculative = true;
          stats->speculative_won = true;
          *out = std::move(backup);
          return;
        }
      }
      *out = std::move(attempt_out);
      return;
    }
    if (attempt + 1 >= cfg.max_task_attempts) {
      *out = std::move(attempt_out);
      return;
    }
  }
}

class MapContextImpl : public MapContext {
 public:
  MapContextImpl(const Partitioner* partitioner, const JobConfig& cfg,
                 Combiner* combiner, Executor* executor, MapTaskOutput* out)
      : partitioner_(partitioner), num_partitions_(cfg.num_reducers),
        out_(out) {
    out_->shuffle = std::make_unique<ShuffleBuffer>(
        cfg.num_reducers, cfg.sort_buffer_bytes, combiner,
        cfg.checksum_shuffle, cfg.compress_shuffle,
        cfg.shuffle_compress_level,
        cfg.compress_shuffle ? executor : nullptr);
  }

  void Emit(std::string key, std::string value) override {
    EmitView(key, value);
  }

  void EmitView(std::string_view key, std::string_view value) override {
    if (!emit_status_.ok()) return;  // combiner already failed; drop
    int p = partitioner_->PartitionView(key, num_partitions_);
    ++records_;
    bytes_ += static_cast<int64_t>(key.size() + value.size());
    emit_status_ = out_->shuffle->Add(p, key, value);
  }

  void IncrementCounter(const std::string& name, int64_t delta) override {
    out_->counters.Add(name, delta);
  }

  // Flushes the batched per-record engine counters (hoisted out of the
  // Emit hot path) into the task counters.
  void FlushCounters() {
    if (records_ > 0) {
      out_->counters.Add("map_output_records", records_);
      out_->counters.Add("map_output_bytes", bytes_);
    }
    records_ = 0;
    bytes_ = 0;
  }

  // Final spill + map-side merge (the Fig. 5(b) overhead), then counter
  // flush. Propagates deferred combiner failures.
  Status FinishTask() {
    GESALL_RETURN_NOT_OK(emit_status_);
    GESALL_RETURN_NOT_OK(out_->shuffle->Finish());
    FlushCounters();
    const ShuffleStats& s = out_->shuffle->stats();
    if (s.spills > 0) out_->counters.Add("map_spills", s.spills);
    if (s.merge_bytes > 0) {
      out_->counters.Add("map_merge_bytes", s.merge_bytes);
    }
    if (s.combine_input_records > 0) {
      out_->counters.Add("combine_input_records", s.combine_input_records);
      out_->counters.Add("combine_output_records",
                         s.combine_output_records);
    }
    if (s.checksummed_bytes > 0) {
      out_->counters.Add("shuffle_checksummed_bytes", s.checksummed_bytes);
    }
    if (s.spill_bytes_raw > 0) {
      out_->counters.Add("shuffle_spill_bytes_raw", s.spill_bytes_raw);
      out_->counters.Add("shuffle_spill_bytes_compressed",
                         s.spill_bytes_compressed);
      out_->counters.Add("shuffle_compress_micros", s.compress_micros);
      if (s.decompress_micros > 0) {
        out_->counters.Add("shuffle_decompress_micros", s.decompress_micros);
      }
    }
    return Status::OK();
  }

 private:
  const Partitioner* partitioner_;
  int num_partitions_;
  MapTaskOutput* out_;
  Status emit_status_;
  int64_t records_ = 0;
  int64_t bytes_ = 0;
};

class ReduceContextImpl : public ReduceContext {
 public:
  explicit ReduceContextImpl(std::vector<std::string>* out,
                             JobCounters* counters)
      : out_(out), counters_(counters) {}
  void Emit(std::string value) override {
    ++records_;
    bytes_ += static_cast<int64_t>(value.size());
    out_->push_back(std::move(value));
  }
  void IncrementCounter(const std::string& name, int64_t delta) override {
    counters_->Add(name, delta);
  }
  void FlushCounters() {
    if (records_ > 0) {
      counters_->Add("reduce_output_records", records_);
      counters_->Add("reduce_output_bytes", bytes_);
    }
    records_ = 0;
    bytes_ = 0;
  }

 private:
  std::vector<std::string>* out_;
  JobCounters* counters_;
  int64_t records_ = 0;
  int64_t bytes_ = 0;
};

// Map-only contexts collect values directly (keys ignored).
class MapOnlyContext : public MapContext {
 public:
  MapOnlyContext(std::vector<std::string>* values, JobCounters* counters)
      : values_(values), counters_(counters) {}
  void Emit(std::string key, std::string value) override {
    (void)key;
    ++records_;
    bytes_ += static_cast<int64_t>(value.size());
    values_->push_back(std::move(value));
  }
  void EmitView(std::string_view key, std::string_view value) override {
    (void)key;
    ++records_;
    bytes_ += static_cast<int64_t>(value.size());
    values_->emplace_back(value);
  }
  void IncrementCounter(const std::string& name, int64_t delta) override {
    counters_->Add(name, delta);
  }
  void FlushCounters() {
    if (records_ > 0) {
      counters_->Add("map_output_records", records_);
      counters_->Add("map_output_bytes", bytes_);
    }
    records_ = 0;
    bytes_ = 0;
  }

 private:
  std::vector<std::string>* values_;
  JobCounters* counters_;
  int64_t records_ = 0;
  int64_t bytes_ = 0;
};

// Shared prologue of one map attempt: injected straggler latency, then
// the split.load fault point, then the real split load, then the
// mr.map_attempt fault point. Returns the split bytes on success.
Result<std::string> LoadSplitAttempt(const InputSplit& split, int index,
                                     int attempt, FaultInjector* injector) {
  if (injector != nullptr) {
    int latency = injector->LatencyMs(kFaultMapAttempt, index, attempt);
    if (latency > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(latency));
    }
    GESALL_RETURN_NOT_OK(injector->MaybeFail(kFaultSplitLoad, index,
                                             attempt));
  }
  GESALL_ASSIGN_OR_RETURN(std::string input, split.load());
  if (injector != nullptr) {
    GESALL_RETURN_NOT_OK(injector->MaybeFail(kFaultMapAttempt, index,
                                             attempt));
  }
  return input;
}

// Fault-injection points for a streamed split, bracketing the stream
// call the way LoadSplitAttempt brackets split.load(): the split-load
// point (plus injected latency) fires before the stream starts, the
// map-attempt point after it returns, so chaos tests exercise streamed
// map tasks through the same retry machinery as loaded ones.
Status PreStreamFaults(int index, int attempt, FaultInjector* injector) {
  if (injector == nullptr) return Status::OK();
  int latency = injector->LatencyMs(kFaultMapAttempt, index, attempt);
  if (latency > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(latency));
  }
  return injector->MaybeFail(kFaultSplitLoad, index, attempt);
}

Status PostStreamFaults(int index, int attempt, FaultInjector* injector) {
  if (injector == nullptr) return Status::OK();
  return injector->MaybeFail(kFaultMapAttempt, index, attempt);
}

// Folds per-task attempt bookkeeping into the task's own counters and
// applies skip-bad-records isolation to a map task that exhausted its
// attempts. TaskOut is one of the map-side outputs.
template <typename TaskOut>
void FinalizeMapTask(const JobConfig& cfg, const AttemptStats& stats,
                     TaskOut* out) {
  // A cancelled task is not a poison split: isolating it would let the
  // job "succeed" with a silently truncated output instead of failing
  // fast with the cancellation cause.
  if (!out->status.ok() && cfg.skip_bad_records &&
      !out->status.IsCancelled()) {
    // Poison split: drop the failed attempt's partial output and
    // counters so job-level counter invariants still hold.
    TaskRecord record = out->record;
    *out = TaskOut{};
    out->record = record;
    out->skipped = true;
  }
  if (stats.retries > 0) {
    out->counters.Add("map_task_retries", stats.retries);
  }
  if (stats.speculative_launched) {
    out->counters.Add("speculative_launches", 1);
  }
  if (stats.speculative_won) out->counters.Add("speculative_wins", 1);
  if (out->skipped) out->counters.Add("map_splits_skipped", 1);
}

}  // namespace

// Shared state of one asynchronously running job. Tasks hold it via
// shared_ptr, so a caller may drop the Handle without waiting. Phase
// transitions are single-threaded hand-offs (the last map task's
// acq_rel countdown launches the master; the master launches reduces;
// the last reduce task finalizes), so the per-task output slots never
// see concurrent writers and need no lock of their own.
namespace internal {
struct JobState {
  JobConfig config;
  std::vector<InputSplit> splits;
  MapperFactory mapper_factory;
  ReducerFactory reducer_factory;
  const Partitioner* partitioner = nullptr;
  HashPartitioner default_partitioner;
  bool map_only = false;

  Executor* executor = nullptr;
  std::shared_ptr<Throttle> throttle;
  Stopwatch job_clock;

  std::vector<int> node_of;
  std::vector<MapTaskOutput> map_outputs;
  std::vector<MapOnlyTaskOutput> map_only_outputs;
  std::vector<ReduceTaskOutput> reduce_outputs;
  std::atomic<int> maps_remaining{0};
  std::atomic<int> reduces_remaining{0};

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;    // guarded by mu
  bool waited = false;  // guarded by mu
  Status error;         // guarded by mu until done
  JobResult result;     // guarded by mu until done
};
}  // namespace internal

namespace {

using internal::JobState;

void FinishJob(const std::shared_ptr<JobState>& s, Status st) {
  {
    std::lock_guard<std::mutex> lock(s->mu);
    s->error = std::move(st);
    s->done = true;
  }
  s->cv.notify_all();
}

// One full map task of a full (map+reduce) job: all attempts plus
// finalization into *slot. Reused verbatim by the master's lost-output
// re-execution, so a re-executed task goes through the same
// retry/speculation/skip machinery.
void ExecuteMapFull(JobState* s, size_t i, MapTaskOutput* slot) {
  const JobConfig& cfg = s->config;
  auto run_attempt = [&](int attempt, MapTaskOutput* out) {
    out->record.type = TaskRecord::Type::kMap;
    out->record.index = static_cast<int>(i);
    out->record.attempt = attempt;
    out->record.start_seconds = s->job_clock.ElapsedSeconds();
    if (cfg.cancel != nullptr && cfg.cancel->cancelled()) {
      out->status = cfg.cancel->status();
      out->record.end_seconds = s->job_clock.ElapsedSeconds();
      return;
    }
    if (s->splits[i].stream) {
      // Streamed split: the stream drives emits through the context
      // itself; no whole-split string ever materializes.
      Status st =
          PreStreamFaults(static_cast<int>(i), attempt, cfg.fault_injector);
      if (st.ok()) {
        std::unique_ptr<Combiner> combiner;
        if (cfg.combiner_factory) combiner = cfg.combiner_factory();
        MapContextImpl ctx(s->partitioner, cfg, combiner.get(), s->executor,
                           out);
        out->status = s->splits[i].stream(&ctx);
        if (out->status.ok()) {
          out->status = PostStreamFaults(static_cast<int>(i), attempt,
                                         cfg.fault_injector);
        }
        if (out->status.ok()) {
          out->status = ctx.FinishTask();
        } else {
          ctx.FlushCounters();
        }
        out->record.input_bytes = out->counters.Get("map_input_bytes");
        out->record.output_bytes = out->counters.Get("map_output_bytes");
      } else {
        out->status = st;
      }
      out->record.end_seconds = s->job_clock.ElapsedSeconds();
      return;
    }
    auto input = LoadSplitAttempt(s->splits[i], static_cast<int>(i),
                                  attempt, cfg.fault_injector);
    if (input.ok()) {
      // Each attempt gets a fresh combiner instance so stateful
      // combiners cannot leak state across attempts.
      std::unique_ptr<Combiner> combiner;
      if (cfg.combiner_factory) combiner = cfg.combiner_factory();
      MapContextImpl ctx(s->partitioner, cfg, combiner.get(), s->executor,
                         out);
      auto mapper = s->mapper_factory();
      out->status = mapper->Map(input.ValueOrDie(), &ctx);
      if (out->status.ok()) {
        out->status = ctx.FinishTask();
      } else {
        ctx.FlushCounters();
      }
      out->record.input_bytes =
          static_cast<int64_t>(input.ValueOrDie().size());
      out->record.output_bytes = out->counters.Get("map_output_bytes");
    } else {
      out->status = input.status();
    }
    out->record.end_seconds = s->job_clock.ElapsedSeconds();
  };
  AttemptStats stats;
  RunTaskAttempts(cfg, run_attempt, slot, &stats);
  FinalizeMapTask(cfg, stats, slot);
  slot->record.node = s->node_of[i];
}

void ExecuteMapOnly(JobState* s, size_t i, MapOnlyTaskOutput* slot) {
  const JobConfig& cfg = s->config;
  auto run_attempt = [&](int attempt, MapOnlyTaskOutput* out) {
    out->record.type = TaskRecord::Type::kMap;
    out->record.index = static_cast<int>(i);
    out->record.attempt = attempt;
    out->record.start_seconds = s->job_clock.ElapsedSeconds();
    if (cfg.cancel != nullptr && cfg.cancel->cancelled()) {
      out->status = cfg.cancel->status();
      out->record.end_seconds = s->job_clock.ElapsedSeconds();
      return;
    }
    if (s->splits[i].stream) {
      Status st =
          PreStreamFaults(static_cast<int>(i), attempt, cfg.fault_injector);
      if (st.ok()) {
        MapOnlyContext ctx(&out->values, &out->counters);
        out->status = s->splits[i].stream(&ctx);
        if (out->status.ok()) {
          out->status = PostStreamFaults(static_cast<int>(i), attempt,
                                         cfg.fault_injector);
        }
        ctx.FlushCounters();
        out->record.input_bytes = out->counters.Get("map_input_bytes");
        out->record.output_bytes = out->counters.Get("map_output_bytes");
      } else {
        out->status = st;
      }
      out->record.end_seconds = s->job_clock.ElapsedSeconds();
      return;
    }
    auto input = LoadSplitAttempt(s->splits[i], static_cast<int>(i),
                                  attempt, cfg.fault_injector);
    if (input.ok()) {
      MapOnlyContext ctx(&out->values, &out->counters);
      auto mapper = s->mapper_factory();
      out->status = mapper->Map(input.ValueOrDie(), &ctx);
      ctx.FlushCounters();
      out->record.input_bytes =
          static_cast<int64_t>(input.ValueOrDie().size());
      out->record.output_bytes = out->counters.Get("map_output_bytes");
    } else {
      out->status = input.status();
    }
    out->record.end_seconds = s->job_clock.ElapsedSeconds();
  };
  AttemptStats stats;
  RunTaskAttempts(cfg, run_attempt, slot, &stats);
  FinalizeMapTask(cfg, stats, slot);
}

void FinalizeMapOnlyJob(const std::shared_ptr<JobState>& s) {
  JobResult result;
  result.reducer_outputs.resize(s->splits.size());
  for (size_t i = 0; i < s->splits.size(); ++i) {
    MapOnlyTaskOutput& out = s->map_only_outputs[i];
    if (!out.status.ok()) {
      FinishJob(s, out.status);
      return;
    }
    if (out.skipped) {
      result.skipped_splits.push_back(static_cast<int>(i));
    }
    result.counters.Merge(out.counters);
    result.tasks.push_back(out.record);
    result.reducer_outputs[i] = std::move(out.values);
  }
  {
    std::lock_guard<std::mutex> lock(s->mu);
    s->result = std::move(result);
    s->done = true;
  }
  s->cv.notify_all();
}

void RunReduceTask(const std::shared_ptr<JobState>& s, int r);
void FinalizeFullJob(const std::shared_ptr<JobState>& s);

// The job master: reduce-side fetch with Hadoop lost-map-output
// semantics, then the map-side result merge, then reduce launch. A map
// output is lost when its node died ("node.crash", attempt 0 = the
// heartbeat epoch the job observes), when the fetch itself is failed by
// "mr.shuffle_fetch" (key = map index, attempt = fetch epoch), or when
// a shuffle run's CRC32C no longer verifies. Lost outputs re-execute
// their COMPLETED map task on the next live node; each epoch re-fetches
// only the re-executed outputs, and a task lost more than
// max_map_reexecutions times fails the job. Runs at kHigh priority —
// recovery unblocks reduces, so it overtakes queued regular work — and
// re-executed maps bypass the admission throttle for the same reason.
void MasterVerifyAndReduce(const std::shared_ptr<JobState>& s) {
  const JobConfig& cfg = s->config;
  if (cfg.cancel != nullptr && cfg.cancel->cancelled()) {
    // Don't start recovery or reduces for a job nobody wants anymore.
    FinishJob(s, cfg.cancel->status());
    return;
  }
  const int num_nodes = cfg.num_nodes;
  auto& outputs = s->map_outputs;
  JobCounters recovery_counters;
  if (num_nodes > 0 || cfg.checksum_shuffle) {
    FaultInjector* injector = cfg.fault_injector;
    std::vector<bool> dead(num_nodes > 0 ? num_nodes : 0, false);
    if (injector != nullptr) {
      for (int n = 0; n < num_nodes; ++n) {
        dead[n] = injector->ShouldFail(kFaultNodeCrash, n, 0);
      }
    }
    std::vector<int> reexecutions(s->splits.size(), 0);
    std::vector<size_t> fetch_pending(s->splits.size());
    for (size_t i = 0; i < s->splits.size(); ++i) fetch_pending[i] = i;
    for (int epoch = 0; !fetch_pending.empty(); ++epoch) {
      std::vector<size_t> lost;
      for (size_t i : fetch_pending) {
        MapTaskOutput& out = outputs[i];
        if (!out.status.ok() || out.skipped || out.shuffle == nullptr) {
          continue;  // nothing fetchable; the status merge handles it
        }
        if (num_nodes > 0 && dead[s->node_of[i]]) {
          recovery_counters.Add("map_outputs_lost_to_dead_nodes", 1);
          lost.push_back(i);
          continue;
        }
        if (injector != nullptr &&
            injector->ShouldFail(kFaultShuffleFetch,
                                 static_cast<int64_t>(i), epoch)) {
          recovery_counters.Add("shuffle_fetch_corruptions", 1);
          lost.push_back(i);
          continue;
        }
        if (cfg.checksum_shuffle) {
          Status verify;
          for (int p = 0;
               verify.ok() && p < out.shuffle->num_partitions(); ++p) {
            verify = out.shuffle->VerifyPartition(p);
          }
          if (!verify.ok()) {
            recovery_counters.Add("shuffle_fetch_corruptions", 1);
            lost.push_back(i);
            continue;
          }
          recovery_counters.Add("shuffle_partitions_verified",
                                out.shuffle->num_partitions());
        }
      }
      if (lost.empty()) break;
      for (size_t i : lost) {
        if (++reexecutions[i] > cfg.max_map_reexecutions) {
          FinishJob(s, Status::IOError(
                           "map output " + std::to_string(i) + " lost " +
                           std::to_string(reexecutions[i]) +
                           " times, exceeding max_map_reexecutions (" +
                           std::to_string(cfg.max_map_reexecutions) +
                           ")"));
          return;
        }
        if (num_nodes > 0) {
          int moved = -1;
          for (int k = 1; k <= num_nodes; ++k) {
            const int candidate = (s->node_of[i] + k) % num_nodes;
            if (!dead[candidate]) {
              moved = candidate;
              break;
            }
          }
          if (moved < 0) {
            FinishJob(s, Status::IOError(
                             "cannot re-execute map task " +
                             std::to_string(i) +
                             ": every compute node is dead"));
            return;
          }
          s->node_of[i] = moved;
        }
        outputs[i] = MapTaskOutput{};  // no counter/record residue
      }
      {
        // TaskGroup, not the throttle: the helping Wait() keeps the
        // master making progress even when every worker (and slot) is
        // occupied by another overlapped round's tasks.
        TaskGroup group(s->executor, Executor::Priority::kHigh);
        JobState* raw = s.get();
        for (size_t i : lost) {
          group.Submit(
              [raw, i] { ExecuteMapFull(raw, i, &raw->map_outputs[i]); });
        }
        group.Wait();
      }
      recovery_counters.Add("map_tasks_reexecuted",
                            static_cast<int64_t>(lost.size()));
      fetch_pending = std::move(lost);
    }
  }

  // Map-side merge. A map error fails the job before any reducer runs,
  // matching the barriered engine's phase semantics.
  JobResult result;
  for (auto& out : outputs) {
    if (!out.status.ok()) {
      FinishJob(s, out.status);
      return;
    }
    if (out.skipped) result.skipped_splits.push_back(out.record.index);
    result.counters.Merge(out.counters);
    result.tasks.push_back(out.record);
  }
  result.counters.Merge(recovery_counters);
  {
    // Parked in state until the last reduce task appends its side; the
    // launch → dequeue chain orders this against the finalizer.
    std::lock_guard<std::mutex> lock(s->mu);
    s->result = std::move(result);
  }

  const int R = cfg.num_reducers;
  s->reduce_outputs.resize(static_cast<size_t>(R));
  s->reduces_remaining.store(R, std::memory_order_release);
  for (int r = 0; r < R; ++r) {
    s->throttle->Submit([s, r] {
      RunReduceTask(s, r);
      if (s->reduces_remaining.fetch_sub(1, std::memory_order_acq_rel) ==
          1) {
        FinalizeFullJob(s);
      }
    });
  }
}

// Shuffle + reduce of one partition (map outputs are stable across
// reduce attempts, so a retried reducer re-merges the same frozen runs).
void RunReduceTask(const std::shared_ptr<JobState>& s, int r) {
  const JobConfig& cfg = s->config;
  auto run_attempt = [&](int attempt, ReduceTaskOutput* out) {
    out->record.type = TaskRecord::Type::kReduce;
    out->record.index = r;
    out->record.attempt = attempt;
    out->record.start_seconds = s->job_clock.ElapsedSeconds();
    if (cfg.cancel != nullptr && cfg.cancel->cancelled()) {
      out->status = cfg.cancel->status();
      out->record.end_seconds = s->job_clock.ElapsedSeconds();
      return;
    }
    FaultInjector* injector = cfg.fault_injector;
    if (injector != nullptr) {
      int latency = injector->LatencyMs(kFaultReduceAttempt, r, attempt);
      if (latency > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(latency));
      }
      out->status = injector->MaybeFail(kFaultReduceAttempt, r, attempt);
      if (!out->status.ok()) {
        out->record.end_seconds = s->job_clock.ElapsedSeconds();
        return;
      }
    }
    // Gather this partition's frozen run from every map task (each task
    // has at most one run per partition after the map-side merge) and
    // merge the entry indexes, stable by map task index. Uncompressed
    // runs cost no key/value copies: entries are views into the map
    // tasks' arenas. Compressed runs merge through lazy cursors that
    // inflate one 64 KiB block at a time.
    std::vector<const ShuffleRun*> runs;
    std::vector<std::unique_ptr<CompressedShuffleRunReader>> readers;
    std::vector<ShuffleRunReader*> reader_ptrs;
    int64_t shuffle_bytes = 0, shuffle_records = 0, compressed_bytes = 0;
    for (const auto& map_out : s->map_outputs) {
      if (map_out.shuffle == nullptr) continue;  // skipped split
      if (r >= map_out.shuffle->num_partitions()) continue;
      if (map_out.shuffle->compressed()) {
        for (const auto& crun : map_out.shuffle->compressed_runs(r)) {
          readers.push_back(
              std::make_unique<CompressedShuffleRunReader>(crun.bytes));
          reader_ptrs.push_back(readers.back().get());
          shuffle_records += crun.records;
          shuffle_bytes += crun.raw_bytes;
          compressed_bytes += static_cast<int64_t>(crun.bytes.size());
        }
        continue;
      }
      for (const auto& run : map_out.shuffle->runs(r)) {
        runs.push_back(&run);
        shuffle_records += static_cast<int64_t>(run.size());
        for (const auto& e : run) {
          shuffle_bytes +=
              static_cast<int64_t>(e.key.size() + e.value.size());
        }
      }
    }
    out->counters.Add("reduce_shuffle_bytes", shuffle_bytes);
    out->counters.Add("reduce_shuffle_records", shuffle_records);
    if (compressed_bytes > 0) {
      out->counters.Add("reduce_shuffle_bytes_compressed", compressed_bytes);
    }

    ShuffleRunMerger merger(runs, reader_ptrs);
    ReduceContextImpl ctx(&out->values, &out->counters);
    auto reducer = s->reducer_factory();
    Status st;
    if (readers.empty()) {
      // Zero-copy grouping: entries and their views are stable for the
      // lifetime of the frozen runs, so a whole key group accumulates as
      // views with no copies.
      const ShuffleEntry* current = nullptr;
      std::vector<std::string_view> values;
      auto flush = [&]() -> Status {
        if (current == nullptr) return Status::OK();
        return reducer->ReduceViews(current->key, values, &ctx);
      };
      for (const ShuffleEntry* e = merger.Next(); e != nullptr && st.ok();
           e = merger.Next()) {
        if (current == nullptr || !ShuffleKeyEqual(*e, *current)) {
          st = flush();
          current = e;  // stable: frozen runs never reallocate
          values.clear();
        }
        values.push_back(e->value);
      }
      if (st.ok()) st = flush();
    } else {
      // Streaming grouping: a lazy cursor's entry dies on the next
      // Next(), but ReduceViews needs the whole group at once — so the
      // current key and the group's value bytes accumulate in reused
      // owned buffers (cleared per group, capacity kept, so the steady
      // state allocates nothing).
      std::string current_key;
      uint64_t cur_prefix = 0, cur_prefix2 = 0;
      bool has_group = false;
      std::string group_buf;
      std::vector<std::pair<size_t, size_t>> spans;
      std::vector<std::string_view> values;
      auto flush = [&]() -> Status {
        if (!has_group) return Status::OK();
        values.clear();
        const std::string_view buf = group_buf;
        for (const auto& [off, len] : spans) {
          values.push_back(buf.substr(off, len));
        }
        return reducer->ReduceViews(current_key, values, &ctx);
      };
      for (const ShuffleEntry* e = merger.Next(); e != nullptr && st.ok();
           e = merger.Next()) {
        if (!has_group || e->prefix != cur_prefix ||
            e->prefix2 != cur_prefix2 || e->key != current_key) {
          st = flush();
          current_key.assign(e->key);
          cur_prefix = e->prefix;
          cur_prefix2 = e->prefix2;
          group_buf.clear();
          spans.clear();
          has_group = true;
        }
        spans.emplace_back(group_buf.size(), e->value.size());
        group_buf.append(e->value);
      }
      if (st.ok()) st = flush();
      int64_t decompress_micros = 0;
      for (const auto& reader : readers) {
        // A mid-stream decode failure drains its cursor silently; the
        // status check here is what fails (and retries) the attempt.
        if (st.ok() && !reader->status().ok()) st = reader->status();
        decompress_micros += reader->decompress_micros();
      }
      out->counters.Add("shuffle_decompress_micros", decompress_micros);
    }
    ctx.FlushCounters();
    out->status = st;
    out->record.end_seconds = s->job_clock.ElapsedSeconds();
    out->record.input_bytes = shuffle_bytes;
    out->record.output_bytes = out->counters.Get("reduce_output_bytes");
  };
  ReduceTaskOutput& slot = s->reduce_outputs[static_cast<size_t>(r)];
  AttemptStats stats;
  RunTaskAttempts(cfg, run_attempt, &slot, &stats);
  if (stats.retries > 0) {
    slot.counters.Add("reduce_task_retries", stats.retries);
  }
  if (stats.speculative_launched) {
    slot.counters.Add("speculative_launches", 1);
  }
  if (stats.speculative_won) slot.counters.Add("speculative_wins", 1);
  if (slot.status.ok() && cfg.on_partition_output) {
    // Per-partition readiness edge: downstream rounds may start on this
    // partition now, while sibling reduces are still running.
    cfg.on_partition_output(r, slot.values, slot.counters);
  }
}

void FinalizeFullJob(const std::shared_ptr<JobState>& s) {
  JobResult result;
  {
    std::lock_guard<std::mutex> lock(s->mu);
    result = std::move(s->result);
  }
  const int R = s->config.num_reducers;
  result.reducer_outputs.resize(static_cast<size_t>(R));
  for (int r = 0; r < R; ++r) {
    ReduceTaskOutput& out = s->reduce_outputs[static_cast<size_t>(r)];
    if (!out.status.ok()) {
      FinishJob(s, out.status);
      return;
    }
    result.counters.Merge(out.counters);
    result.tasks.push_back(out.record);
    result.reducer_outputs[static_cast<size_t>(r)] =
        std::move(out.values);
  }
  {
    std::lock_guard<std::mutex> lock(s->mu);
    s->result = std::move(result);
    s->done = true;
  }
  s->cv.notify_all();
}

// Admits every map task: gated splits register on their ReadySignal and
// only enter the admission throttle once the upstream partition lands
// (a waiting split holds no task slot). The last map to finish launches
// the continuation at kHigh priority.
void SubmitMaps(const std::shared_ptr<JobState>& s) {
  const size_t n = s->splits.size();
  for (size_t i = 0; i < n; ++i) {
    std::function<void()> task = [s, i] {
      if (s->map_only) {
        ExecuteMapOnly(s.get(), i, &s->map_only_outputs[i]);
      } else {
        ExecuteMapFull(s.get(), i, &s->map_outputs[i]);
      }
      if (s->maps_remaining.fetch_sub(1, std::memory_order_acq_rel) ==
          1) {
        s->executor->Submit(
            [s] {
              if (s->map_only) {
                FinalizeMapOnlyJob(s);
              } else {
                MasterVerifyAndReduce(s);
              }
            },
            Executor::Priority::kHigh);
      }
    };
    const std::shared_ptr<ReadySignal>& gate = s->splits[i].ready;
    if (gate != nullptr) {
      gate->OnReady([s, task = std::move(task)] {
        s->throttle->Submit(std::move(task));
      });
      if (s->config.cancel != nullptr) {
        // A cancelled upstream round may never notify this gate; fire it
        // on cancellation so the map task runs (and fails fast with
        // Cancelled) instead of stranding the countdown — otherwise
        // Handle::Wait() on a cancelled pipelined job would hang. Notify
        // is idempotent, so racing with the real readiness edge is fine;
        // the callback holds only the gate, not the job state.
        s->config.cancel->OnCancel([gate] { gate->Notify(); });
      }
    } else {
      s->throttle->Submit(std::move(task));
    }
  }
}

std::shared_ptr<JobState> StartJob(const JobConfig& config,
                                   const std::vector<InputSplit>& splits,
                                   const MapperFactory& mapper_factory,
                                   const ReducerFactory& reducer_factory,
                                   const Partitioner* partitioner,
                                   bool map_only) {
  auto s = std::make_shared<JobState>();
  s->config = config;
  s->splits = splits;
  s->mapper_factory = mapper_factory;
  s->reducer_factory = reducer_factory;
  s->partitioner =
      partitioner != nullptr ? partitioner : &s->default_partitioner;
  s->map_only = map_only;
  Status valid = ValidateJobConfig(config, /*needs_reducers=*/!map_only);
  if (!valid.ok()) {
    FinishJob(s, std::move(valid));
    return s;
  }
  s->executor =
      config.executor != nullptr ? config.executor : Executor::Shared();
  s->throttle = config.throttle != nullptr
                    ? config.throttle
                    : std::make_shared<Throttle>(s->executor,
                                                 config.max_parallel_tasks,
                                                 config.priority);
  const size_t n = splits.size();
  if (config.num_nodes > 0) {
    // Node assignment of the whole-node failure model: locality-hinted
    // tasks run on their preferred node, the rest round-robin.
    s->node_of.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const int preferred = splits[i].preferred_node;
      s->node_of[i] =
          (preferred >= 0 ? preferred : static_cast<int>(i)) %
          config.num_nodes;
    }
  } else {
    s->node_of.assign(n, -1);
  }
  if (map_only) {
    s->map_only_outputs.resize(n);
  } else {
    s->map_outputs.resize(n);
  }
  s->maps_remaining.store(static_cast<int>(n),
                          std::memory_order_release);
  if (n == 0) {
    // No countdown will fire; run the continuation directly.
    if (map_only) {
      FinalizeMapOnlyJob(s);
    } else {
      s->executor->Submit([s] { MasterVerifyAndReduce(s); },
                          Executor::Priority::kHigh);
    }
    return s;
  }
  SubmitMaps(s);
  return s;
}

}  // namespace

Result<JobResult> MapReduceJob::Handle::Wait() {
  JobState& s = *state_;
  std::unique_lock<std::mutex> lock(s.mu);
  s.cv.wait(lock, [&s] { return s.done; });
  if (s.waited) {
    return Status::Internal("MapReduceJob::Handle waited twice");
  }
  s.waited = true;
  if (!s.error.ok()) return s.error;
  return std::move(s.result);
}

MapReduceJob::MapReduceJob(JobConfig config) : config_(std::move(config)) {}

MapReduceJob::Handle MapReduceJob::Start(
    const std::vector<InputSplit>& splits,
    const MapperFactory& mapper_factory,
    const ReducerFactory& reducer_factory,
    const Partitioner* partitioner) {
  return Handle(StartJob(config_, splits, mapper_factory, reducer_factory,
                         partitioner, /*map_only=*/false));
}

MapReduceJob::Handle MapReduceJob::StartMapOnly(
    const std::vector<InputSplit>& splits,
    const MapperFactory& mapper_factory) {
  return Handle(StartJob(config_, splits, mapper_factory,
                         /*reducer_factory=*/nullptr, /*partitioner=*/nullptr,
                         /*map_only=*/true));
}

Result<JobResult> MapReduceJob::Run(const std::vector<InputSplit>& splits,
                                    const MapperFactory& mapper_factory,
                                    const ReducerFactory& reducer_factory,
                                    const Partitioner* partitioner) {
  return Start(splits, mapper_factory, reducer_factory, partitioner)
      .Wait();
}

Result<JobResult> MapReduceJob::RunMapOnly(
    const std::vector<InputSplit>& splits,
    const MapperFactory& mapper_factory) {
  return StartMapOnly(splits, mapper_factory).Wait();
}

}  // namespace gesall

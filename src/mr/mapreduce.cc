#include "mr/mapreduce.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <queue>

#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace gesall {

int HashPartitioner::Partition(const std::string& key,
                               int num_partitions) const {
  return static_cast<int>(Fnv1a64(key) %
                          static_cast<uint64_t>(num_partitions));
}

int RangePartitioner::Partition(const std::string& key,
                                int num_partitions) const {
  auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), key);
  int p = static_cast<int>(it - boundaries_.begin());
  return std::min(p, num_partitions - 1);
}

InputSplit InlineSplit(std::string data) {
  auto shared = std::make_shared<std::string>(std::move(data));
  InputSplit split;
  split.load = [shared]() -> Result<std::string> { return *shared; };
  return split;
}

namespace {

// A sorted run of one map task's output for one reduce partition.
using SortedRun = std::vector<KeyValue>;

// Per-map-task output: runs[partition] = list of sorted spill runs.
struct MapTaskOutput {
  std::vector<std::vector<SortedRun>> runs;
  JobCounters counters;
  TaskRecord record;
  Status status;
};

class MapContextImpl : public MapContext {
 public:
  MapContextImpl(const Partitioner* partitioner, int num_partitions,
                 int64_t sort_buffer_bytes, MapTaskOutput* out)
      : partitioner_(partitioner), num_partitions_(num_partitions),
        sort_buffer_bytes_(sort_buffer_bytes), out_(out) {
    buffer_.resize(num_partitions);
    out_->runs.resize(num_partitions);
  }

  void Emit(std::string key, std::string value) override {
    int p = partitioner_->Partition(key, num_partitions_);
    buffered_bytes_ +=
        static_cast<int64_t>(key.size() + value.size() + 16);
    out_->counters.Add("map_output_records", 1);
    out_->counters.Add("map_output_bytes",
                       static_cast<int64_t>(key.size() + value.size()));
    buffer_[p].push_back({std::move(key), std::move(value)});
    if (buffered_bytes_ > sort_buffer_bytes_) Spill();
  }

  void IncrementCounter(const std::string& name, int64_t delta) override {
    out_->counters.Add(name, delta);
  }

  // Sorts and freezes the current buffer as one spill run per partition.
  void Spill() {
    bool any = false;
    for (int p = 0; p < num_partitions_; ++p) {
      if (buffer_[p].empty()) continue;
      any = true;
      std::stable_sort(buffer_[p].begin(), buffer_[p].end(),
                       [](const KeyValue& a, const KeyValue& b) {
                         return a.key < b.key;
                       });
      out_->runs[p].push_back(std::move(buffer_[p]));
      buffer_[p].clear();
    }
    if (any) out_->counters.Add("map_spills", 1);
    buffered_bytes_ = 0;
  }

  // Map-side merge: collapses spill runs into one sorted run per
  // partition, charging merge bytes (the Fig. 5(b) overhead).
  void FinishTask() {
    Spill();
    for (int p = 0; p < num_partitions_; ++p) {
      auto& runs = out_->runs[p];
      if (runs.size() <= 1) continue;
      int64_t merge_bytes = 0;
      size_t total = 0;
      for (const auto& run : runs) {
        total += run.size();
        for (const auto& kv : run) {
          merge_bytes +=
              static_cast<int64_t>(kv.key.size() + kv.value.size());
        }
      }
      out_->counters.Add("map_merge_bytes", merge_bytes);
      SortedRun merged;
      merged.reserve(total);
      // K-way merge, stable across run creation order.
      using Cursor = std::pair<size_t, size_t>;  // (run, offset)
      auto less = [&runs](const Cursor& a, const Cursor& b) {
        const KeyValue& ka = runs[a.first][a.second];
        const KeyValue& kb = runs[b.first][b.second];
        if (ka.key != kb.key) return ka.key > kb.key;  // min-heap
        return a.first > b.first;
      };
      std::priority_queue<Cursor, std::vector<Cursor>, decltype(less)> heap(
          less);
      for (size_t r = 0; r < runs.size(); ++r) {
        if (!runs[r].empty()) heap.push({r, 0});
      }
      while (!heap.empty()) {
        auto [r, o] = heap.top();
        heap.pop();
        merged.push_back(std::move(runs[r][o]));
        if (o + 1 < runs[r].size()) heap.push({r, o + 1});
      }
      runs.clear();
      runs.push_back(std::move(merged));
    }
  }

 private:
  const Partitioner* partitioner_;
  int num_partitions_;
  int64_t sort_buffer_bytes_;
  MapTaskOutput* out_;
  std::vector<SortedRun> buffer_;
  int64_t buffered_bytes_ = 0;
};

class ReduceContextImpl : public ReduceContext {
 public:
  explicit ReduceContextImpl(std::vector<std::string>* out,
                             JobCounters* counters)
      : out_(out), counters_(counters) {}
  void Emit(std::string value) override {
    counters_->Add("reduce_output_records", 1);
    out_->push_back(std::move(value));
  }
  void IncrementCounter(const std::string& name, int64_t delta) override {
    counters_->Add(name, delta);
  }

 private:
  std::vector<std::string>* out_;
  JobCounters* counters_;
};

}  // namespace

MapReduceJob::MapReduceJob(JobConfig config) : config_(config) {}

Result<JobResult> MapReduceJob::RunMapOnly(
    const std::vector<InputSplit>& splits,
    const MapperFactory& mapper_factory) {
  // A map-only job is a full job whose "reducers" are identity pass-
  // throughs keyed by map task, so outputs stay per-task.
  JobResult result;
  result.reducer_outputs.resize(splits.size());
  std::vector<MapTaskOutput> outputs(splits.size());
  std::vector<std::vector<std::string>> task_values(splits.size());
  Stopwatch job_clock;
  {
    ThreadPool pool(config_.max_parallel_tasks);
    for (size_t i = 0; i < splits.size(); ++i) {
      pool.Submit([&, i] {
        Stopwatch task_clock;
        double start = job_clock.ElapsedSeconds();
        auto input = splits[i].load();
        if (!input.ok()) {
          outputs[i].status = input.status();
          return;
        }
        // Map-only contexts collect values directly (keys ignored).
        class MapOnlyContext : public MapContext {
         public:
          MapOnlyContext(std::vector<std::string>* values,
                         JobCounters* counters)
              : values_(values), counters_(counters) {}
          void Emit(std::string key, std::string value) override {
            (void)key;
            counters_->Add("map_output_records", 1);
            values_->push_back(std::move(value));
          }
          void IncrementCounter(const std::string& name,
                                int64_t delta) override {
            counters_->Add(name, delta);
          }

         private:
          std::vector<std::string>* values_;
          JobCounters* counters_;
        };
        MapOnlyContext ctx(&task_values[i], &outputs[i].counters);
        auto mapper = mapper_factory();
        outputs[i].status = mapper->Map(input.ValueOrDie(), &ctx);
        outputs[i].record.type = TaskRecord::Type::kMap;
        outputs[i].record.index = static_cast<int>(i);
        outputs[i].record.start_seconds = start;
        outputs[i].record.end_seconds = job_clock.ElapsedSeconds();
        outputs[i].record.input_bytes =
            static_cast<int64_t>(input.ValueOrDie().size());
      });
    }
    pool.Wait();
  }
  for (size_t i = 0; i < splits.size(); ++i) {
    GESALL_RETURN_NOT_OK(outputs[i].status);
    result.counters.Merge(outputs[i].counters);
    result.tasks.push_back(outputs[i].record);
    result.reducer_outputs[i] = std::move(task_values[i]);
  }
  return result;
}

Result<JobResult> MapReduceJob::Run(const std::vector<InputSplit>& splits,
                                    const MapperFactory& mapper_factory,
                                    const ReducerFactory& reducer_factory,
                                    const Partitioner* partitioner) {
  HashPartitioner default_partitioner;
  if (partitioner == nullptr) partitioner = &default_partitioner;
  const int R = config_.num_reducers;

  std::vector<MapTaskOutput> outputs(splits.size());
  Stopwatch job_clock;
  {
    ThreadPool pool(config_.max_parallel_tasks);
    for (size_t i = 0; i < splits.size(); ++i) {
      pool.Submit([&, i] {
        double start = job_clock.ElapsedSeconds();
        auto input = splits[i].load();
        if (!input.ok()) {
          outputs[i].status = input.status();
          return;
        }
        MapContextImpl ctx(partitioner, R, config_.sort_buffer_bytes,
                           &outputs[i]);
        auto mapper = mapper_factory();
        outputs[i].status = mapper->Map(input.ValueOrDie(), &ctx);
        if (outputs[i].status.ok()) ctx.FinishTask();
        outputs[i].record.type = TaskRecord::Type::kMap;
        outputs[i].record.index = static_cast<int>(i);
        outputs[i].record.start_seconds = start;
        outputs[i].record.end_seconds = job_clock.ElapsedSeconds();
        outputs[i].record.input_bytes =
            static_cast<int64_t>(input.ValueOrDie().size());
      });
    }
    pool.Wait();
  }

  JobResult result;
  for (auto& out : outputs) {
    GESALL_RETURN_NOT_OK(out.status);
    result.counters.Merge(out.counters);
    result.tasks.push_back(out.record);
  }

  // Shuffle + reduce.
  result.reducer_outputs.resize(R);
  std::vector<JobCounters> reduce_counters(R);
  std::vector<TaskRecord> reduce_records(R);
  std::vector<Status> reduce_status(R);
  {
    ThreadPool pool(config_.max_parallel_tasks);
    for (int r = 0; r < R; ++r) {
      pool.Submit([&, r] {
        double start = job_clock.ElapsedSeconds();
        // Gather this partition's sorted run from every map task (each
        // task has at most one run per partition after the map-side
        // merge) and merge them, stable by map task index.
        std::vector<const SortedRun*> runs;
        int64_t shuffle_bytes = 0, shuffle_records = 0;
        for (const auto& out : outputs) {
          if (r < static_cast<int>(out.runs.size())) {
            for (const auto& run : out.runs[r]) {
              runs.push_back(&run);
              shuffle_records += static_cast<int64_t>(run.size());
              for (const auto& kv : run) {
                shuffle_bytes +=
                    static_cast<int64_t>(kv.key.size() + kv.value.size());
              }
            }
          }
        }
        reduce_counters[r].Add("reduce_shuffle_bytes", shuffle_bytes);
        reduce_counters[r].Add("reduce_shuffle_records", shuffle_records);

        using Cursor = std::pair<size_t, size_t>;
        auto less = [&runs](const Cursor& a, const Cursor& b) {
          const KeyValue& ka = (*runs[a.first])[a.second];
          const KeyValue& kb = (*runs[b.first])[b.second];
          if (ka.key != kb.key) return ka.key > kb.key;
          return a.first > b.first;
        };
        std::priority_queue<Cursor, std::vector<Cursor>, decltype(less)>
            heap(less);
        for (size_t i = 0; i < runs.size(); ++i) {
          if (!runs[i]->empty()) heap.push({i, 0});
        }

        ReduceContextImpl ctx(&result.reducer_outputs[r],
                              &reduce_counters[r]);
        auto reducer = reducer_factory();
        std::string current_key;
        std::vector<std::string> values;
        bool have_key = false;
        auto flush = [&]() -> Status {
          if (!have_key) return Status::OK();
          return reducer->Reduce(current_key, values, &ctx);
        };
        Status st;
        while (!heap.empty() && st.ok()) {
          auto [run_idx, off] = heap.top();
          heap.pop();
          const KeyValue& kv = (*runs[run_idx])[off];
          if (!have_key || kv.key != current_key) {
            st = flush();
            current_key = kv.key;
            values.clear();
            have_key = true;
          }
          values.push_back(kv.value);
          if (off + 1 < runs[run_idx]->size()) heap.push({run_idx, off + 1});
        }
        if (st.ok()) st = flush();
        reduce_status[r] = st;
        reduce_records[r].type = TaskRecord::Type::kReduce;
        reduce_records[r].index = r;
        reduce_records[r].start_seconds = start;
        reduce_records[r].end_seconds = job_clock.ElapsedSeconds();
        reduce_records[r].input_bytes = shuffle_bytes;
      });
    }
    pool.Wait();
  }
  for (int r = 0; r < R; ++r) {
    GESALL_RETURN_NOT_OK(reduce_status[r]);
    result.counters.Merge(reduce_counters[r]);
    result.tasks.push_back(reduce_records[r]);
  }
  return result;
}

}  // namespace gesall

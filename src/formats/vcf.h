// Variant records (VCF-like) with the quality annotations used by the
// paper's accuracy study (Tables 9-10): MQ, DP, FS, AB, plus genotype and
// transition/transversion classification.

#ifndef GESALL_FORMATS_VCF_H_
#define GESALL_FORMATS_VCF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace gesall {

/// \brief Diploid genotype call.
enum class Genotype { kHet, kHomAlt };

/// \brief One called variant (SNP or small indel).
struct VariantRecord {
  int32_t chrom = 0;         // reference index
  int64_t pos = 0;           // 0-based position of the first ref base
  std::string ref;           // reference allele
  std::string alt;           // alternate allele
  double qual = 0.0;         // phred-scaled call confidence
  Genotype genotype = Genotype::kHet;

  // Annotations (Tables 9-10 metrics).
  double mq = 0.0;   // RMS mapping quality of covering reads
  int32_t dp = 0;    // read depth at the site
  double fs = 0.0;   // phred-scaled Fisher strand-bias p-value
  double ab = 0.0;   // allele balance: ALT / (REF + ALT) reads

  bool IsSnp() const { return ref.size() == 1 && alt.size() == 1; }
  bool IsIndel() const { return !IsSnp(); }

  /// Transitions: A<->G, C<->T (expect Ti/Tv ~ 2 in good call sets).
  bool IsTransition() const;

  /// Identity key (site + alleles), used by concordance analysis.
  std::string Key() const;

  bool operator==(const VariantRecord&) const = default;
};

/// Sorts by (chrom, pos, ref, alt).
bool VariantLess(const VariantRecord& a, const VariantRecord& b);

/// Renders records as tab-separated VCF-like text lines.
std::string WriteVcfText(const std::vector<VariantRecord>& variants,
                         const std::vector<std::string>& chrom_names);

/// \brief Aggregate statistics over a call set (Tables 9-10 columns).
struct VariantSetStats {
  int64_t count = 0;
  int64_t snps = 0;
  int64_t indels = 0;
  double mean_qual = 0.0;
  double mean_mq = 0.0;
  double mean_dp = 0.0;
  double mean_fs = 0.0;
  double mean_ab = 0.0;
  double titv_ratio = 0.0;     // transitions / transversions
  double het_hom_ratio = 0.0;  // het calls / hom-alt calls
};

VariantSetStats ComputeVariantSetStats(
    const std::vector<VariantRecord>& variants);

/// Binary codec for shipping variants through MapReduce values.
std::string EncodeVariantBinary(const VariantRecord& v);
Result<VariantRecord> DecodeVariantBinary(std::string_view data,
                                          size_t* offset);

}  // namespace gesall

#endif  // GESALL_FORMATS_VCF_H_

#include "formats/sam.h"

#include <charconv>
#include <sstream>

namespace gesall {

std::optional<std::string> SamRecord::GetTag(const std::string& key) const {
  for (const auto& t : tags) {
    if (t.key == key) return t.value;
  }
  return std::nullopt;
}

void SamRecord::SetTag(const std::string& key, char type, std::string value) {
  for (auto& t : tags) {
    if (t.key == key) {
      t.type = type;
      t.value = std::move(value);
      return;
    }
  }
  tags.push_back({key, type, std::move(value)});
}

std::optional<int64_t> SamRecord::GetIntTag(const std::string& key) const {
  auto v = GetTag(key);
  if (!v) return std::nullopt;
  int64_t out = 0;
  auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  if (ec != std::errc() || ptr != v->data() + v->size()) return std::nullopt;
  return out;
}

int64_t SamRecord::BaseQualityScore() const {
  int64_t score = 0;
  for (char c : qual) {
    int q = c - 33;
    if (q >= 15) score += q;
  }
  return score;
}

std::string WriteSamHeader(const SamHeader& header) {
  std::string out = "@HD\tVN:1.6\tSO:" + header.sort_order + "\n";
  for (const auto& r : header.refs) {
    out += "@SQ\tSN:" + r.name + "\tLN:" + std::to_string(r.length) + "\n";
  }
  for (const auto& rg : header.read_groups) {
    out += "@RG\tID:" + rg.id + "\tSM:" + rg.sample + "\tLB:" + rg.library +
           "\n";
  }
  for (const auto& pg : header.programs) {
    out += "@PG\tID:" + pg + "\n";
  }
  return out;
}

namespace {

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  return fields;
}

// Extracts "XX:value" style header sub-field.
std::string HeaderField(const std::vector<std::string>& fields,
                        const std::string& key) {
  for (const auto& f : fields) {
    if (f.size() > 3 && f.compare(0, 2, key) == 0 && f[2] == ':') {
      return f.substr(3);
    }
  }
  return "";
}

Result<int64_t> ParseI64(const std::string& s) {
  int64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::Corruption("bad integer field: " + s);
  }
  return v;
}

}  // namespace

Result<SamHeader> ParseSamHeader(const std::string& text) {
  SamHeader header;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] != '@') continue;
    auto fields = SplitTabs(line);
    const std::string& tag = fields[0];
    if (tag == "@HD") {
      std::string so = HeaderField(fields, "SO");
      if (!so.empty()) header.sort_order = so;
    } else if (tag == "@SQ") {
      SamHeader::RefSeq r;
      r.name = HeaderField(fields, "SN");
      GESALL_ASSIGN_OR_RETURN(r.length, ParseI64(HeaderField(fields, "LN")));
      if (r.name.empty()) return Status::Corruption("@SQ missing SN");
      header.refs.push_back(std::move(r));
    } else if (tag == "@RG") {
      ReadGroup rg;
      rg.id = HeaderField(fields, "ID");
      rg.sample = HeaderField(fields, "SM");
      rg.library = HeaderField(fields, "LB");
      header.read_groups.push_back(std::move(rg));
    } else if (tag == "@PG") {
      header.programs.push_back(HeaderField(fields, "ID"));
    }
  }
  return header;
}

std::string WriteSamLine(const SamRecord& rec, const SamHeader& header) {
  auto ref_name = [&](int32_t id) -> std::string {
    if (id < 0 || id >= static_cast<int32_t>(header.refs.size())) return "*";
    return header.refs[id].name;
  };
  std::string out;
  out += rec.qname;
  out += '\t';
  out += std::to_string(rec.flag);
  out += '\t';
  out += ref_name(rec.ref_id);
  out += '\t';
  out += std::to_string(rec.pos + 1);  // SAM text is 1-based
  out += '\t';
  out += std::to_string(rec.mapq);
  out += '\t';
  out += CigarToString(rec.cigar);
  out += '\t';
  if (rec.mate_ref_id >= 0 && rec.mate_ref_id == rec.ref_id) {
    out += "=";
  } else {
    out += ref_name(rec.mate_ref_id);
  }
  out += '\t';
  out += std::to_string(rec.mate_pos + 1);
  out += '\t';
  out += std::to_string(rec.tlen);
  out += '\t';
  out += rec.seq.empty() ? "*" : rec.seq;
  out += '\t';
  out += rec.qual.empty() ? "*" : rec.qual;
  for (const auto& t : rec.tags) {
    out += '\t';
    out += t.key;
    out += ':';
    out += t.type;
    out += ':';
    out += t.value;
  }
  return out;
}

Result<SamRecord> ParseSamLine(const std::string& line,
                               const SamHeader& header) {
  auto fields = SplitTabs(line);
  if (fields.size() < 11) return Status::Corruption("SAM line too short");
  SamRecord rec;
  rec.qname = fields[0];
  GESALL_ASSIGN_OR_RETURN(int64_t flag, ParseI64(fields[1]));
  rec.flag = static_cast<uint16_t>(flag);
  rec.ref_id = fields[2] == "*" ? -1 : header.FindRef(fields[2]);
  if (fields[2] != "*" && rec.ref_id < 0) {
    return Status::Corruption("unknown reference name " + fields[2]);
  }
  GESALL_ASSIGN_OR_RETURN(int64_t pos1, ParseI64(fields[3]));
  rec.pos = pos1 - 1;
  GESALL_ASSIGN_OR_RETURN(int64_t mapq, ParseI64(fields[4]));
  rec.mapq = static_cast<int>(mapq);
  GESALL_ASSIGN_OR_RETURN(rec.cigar, ParseCigar(fields[5]));
  if (fields[6] == "=") {
    rec.mate_ref_id = rec.ref_id;
  } else if (fields[6] == "*") {
    rec.mate_ref_id = -1;
  } else {
    rec.mate_ref_id = header.FindRef(fields[6]);
    if (rec.mate_ref_id < 0) {
      return Status::Corruption("unknown mate reference name " + fields[6]);
    }
  }
  GESALL_ASSIGN_OR_RETURN(int64_t mpos1, ParseI64(fields[7]));
  rec.mate_pos = mpos1 - 1;
  GESALL_ASSIGN_OR_RETURN(rec.tlen, ParseI64(fields[8]));
  rec.seq = fields[9] == "*" ? "" : fields[9];
  rec.qual = fields[10] == "*" ? "" : fields[10];
  for (size_t i = 11; i < fields.size(); ++i) {
    const std::string& f = fields[i];
    if (f.size() < 5 || f[2] != ':' || f[4] != ':') {
      return Status::Corruption("malformed SAM tag: " + f);
    }
    rec.tags.push_back({f.substr(0, 2), f[3], f.substr(5)});
  }
  return rec;
}

std::string WriteSamText(const SamHeader& header,
                         const std::vector<SamRecord>& records) {
  std::string out = WriteSamHeader(header);
  for (const auto& r : records) {
    out += WriteSamLine(r, header);
    out += '\n';
  }
  return out;
}

Result<std::pair<SamHeader, std::vector<SamRecord>>> ParseSamText(
    const std::string& text) {
  std::string header_text;
  std::vector<std::string> record_lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '@') {
      header_text += line;
      header_text += '\n';
    } else {
      record_lines.push_back(line);
    }
  }
  GESALL_ASSIGN_OR_RETURN(SamHeader header, ParseSamHeader(header_text));
  std::vector<SamRecord> records;
  records.reserve(record_lines.size());
  for (const auto& rl : record_lines) {
    GESALL_ASSIGN_OR_RETURN(SamRecord rec, ParseSamLine(rl, header));
    records.push_back(std::move(rec));
  }
  return std::make_pair(std::move(header), std::move(records));
}

}  // namespace gesall

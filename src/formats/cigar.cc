#include "formats/cigar.h"

namespace gesall {

namespace {
bool ConsumesReference(char op) {
  return op == 'M' || op == 'D' || op == 'N' || op == '=' || op == 'X';
}
bool ConsumesQuery(char op) {
  return op == 'M' || op == 'I' || op == 'S' || op == '=' || op == 'X';
}
bool IsValidOp(char op) {
  return op == 'M' || op == 'I' || op == 'D' || op == 'S' || op == 'H' ||
         op == 'N' || op == '=' || op == 'X';
}
}  // namespace

std::string CigarToString(const Cigar& cigar) {
  if (cigar.empty()) return "*";
  std::string out;
  for (const auto& c : cigar) {
    out += std::to_string(c.len);
    out += c.op;
  }
  return out;
}

Result<Cigar> ParseCigar(const std::string& text) {
  Cigar cigar;
  if (text == "*") return cigar;
  int64_t len = 0;
  bool have_len = false;
  for (char c : text) {
    if (c >= '0' && c <= '9') {
      len = len * 10 + (c - '0');
      have_len = true;
      if (len > INT32_MAX) return Status::Corruption("CIGAR length overflow");
    } else if (IsValidOp(c)) {
      if (!have_len || len == 0) {
        return Status::Corruption("CIGAR op without length");
      }
      cigar.push_back({c, static_cast<int32_t>(len)});
      len = 0;
      have_len = false;
    } else {
      return Status::Corruption("invalid CIGAR character");
    }
  }
  if (have_len) return Status::Corruption("trailing CIGAR length");
  return cigar;
}

int64_t CigarReferenceLength(const Cigar& cigar) {
  int64_t n = 0;
  for (const auto& c : cigar) {
    if (ConsumesReference(c.op)) n += c.len;
  }
  return n;
}

int64_t CigarQueryLength(const Cigar& cigar) {
  int64_t n = 0;
  for (const auto& c : cigar) {
    if (ConsumesQuery(c.op)) n += c.len;
  }
  return n;
}

int32_t LeadingClip(const Cigar& cigar) {
  int32_t n = 0;
  for (const auto& c : cigar) {
    if (c.op == 'S' || c.op == 'H') {
      n += c.len;
    } else {
      break;
    }
  }
  return n;
}

int32_t TrailingClip(const Cigar& cigar) {
  int32_t n = 0;
  for (auto it = cigar.rbegin(); it != cigar.rend(); ++it) {
    if (it->op == 'S' || it->op == 'H') {
      n += it->len;
    } else {
      break;
    }
  }
  return n;
}

int64_t UnclippedFivePrime(int64_t pos, const Cigar& cigar, bool reverse) {
  if (!reverse) return pos - LeadingClip(cigar);
  return pos + CigarReferenceLength(cigar) - 1 + TrailingClip(cigar);
}

}  // namespace gesall

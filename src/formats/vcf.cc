#include "formats/vcf.h"

#include <algorithm>

#include "util/io.h"

namespace gesall {

bool VariantRecord::IsTransition() const {
  if (!IsSnp()) return false;
  char r = ref[0], a = alt[0];
  return (r == 'A' && a == 'G') || (r == 'G' && a == 'A') ||
         (r == 'C' && a == 'T') || (r == 'T' && a == 'C');
}

std::string VariantRecord::Key() const {
  return std::to_string(chrom) + ":" + std::to_string(pos) + ":" + ref + ">" +
         alt;
}

bool VariantLess(const VariantRecord& a, const VariantRecord& b) {
  if (a.chrom != b.chrom) return a.chrom < b.chrom;
  if (a.pos != b.pos) return a.pos < b.pos;
  if (a.ref != b.ref) return a.ref < b.ref;
  return a.alt < b.alt;
}

std::string WriteVcfText(const std::vector<VariantRecord>& variants,
                         const std::vector<std::string>& chrom_names) {
  std::string out =
      "#CHROM\tPOS\tREF\tALT\tQUAL\tGT\tMQ\tDP\tFS\tAB\n";
  char buf[64];
  for (const auto& v : variants) {
    out += (v.chrom >= 0 && v.chrom < static_cast<int32_t>(chrom_names.size())
                ? chrom_names[v.chrom]
                : "?");
    out += '\t';
    out += std::to_string(v.pos + 1);
    out += '\t';
    out += v.ref;
    out += '\t';
    out += v.alt;
    out += '\t';
    std::snprintf(buf, sizeof(buf), "%.1f", v.qual);
    out += buf;
    out += '\t';
    out += v.genotype == Genotype::kHet ? "0/1" : "1/1";
    std::snprintf(buf, sizeof(buf), "\t%.1f\t%d\t%.1f\t%.2f\n", v.mq, v.dp,
                  v.fs, v.ab);
    out += buf;
  }
  return out;
}

VariantSetStats ComputeVariantSetStats(
    const std::vector<VariantRecord>& variants) {
  VariantSetStats s;
  s.count = static_cast<int64_t>(variants.size());
  if (variants.empty()) return s;
  int64_t ti = 0, tv = 0, het = 0, hom = 0;
  double sum_qual = 0, sum_mq = 0, sum_dp = 0, sum_fs = 0, sum_ab = 0;
  for (const auto& v : variants) {
    if (v.IsSnp()) {
      ++s.snps;
      if (v.IsTransition()) {
        ++ti;
      } else {
        ++tv;
      }
    } else {
      ++s.indels;
    }
    if (v.genotype == Genotype::kHet) {
      ++het;
    } else {
      ++hom;
    }
    sum_qual += v.qual;
    sum_mq += v.mq;
    sum_dp += v.dp;
    sum_fs += v.fs;
    sum_ab += v.ab;
  }
  double n = static_cast<double>(s.count);
  s.mean_qual = sum_qual / n;
  s.mean_mq = sum_mq / n;
  s.mean_dp = sum_dp / n;
  s.mean_fs = sum_fs / n;
  s.mean_ab = sum_ab / n;
  s.titv_ratio = tv > 0 ? static_cast<double>(ti) / tv : 0.0;
  s.het_hom_ratio = hom > 0 ? static_cast<double>(het) / hom : 0.0;
  return s;
}

}  // namespace gesall

namespace gesall {

std::string EncodeVariantBinary(const VariantRecord& v) {
  std::string body;
  BufferWriter w(&body);
  w.PutI32(v.chrom);
  w.PutI64(v.pos);
  w.PutString(v.ref);
  w.PutString(v.alt);
  w.PutF64(v.qual);
  w.PutU8(v.genotype == Genotype::kHet ? 0 : 1);
  w.PutF64(v.mq);
  w.PutI32(v.dp);
  w.PutF64(v.fs);
  w.PutF64(v.ab);
  std::string out;
  BufferWriter lw(&out);
  lw.PutU32(static_cast<uint32_t>(body.size()));
  out += body;
  return out;
}

Result<VariantRecord> DecodeVariantBinary(std::string_view data,
                                          size_t* offset) {
  BufferReader lr(data.substr(*offset));
  uint32_t len;
  GESALL_RETURN_NOT_OK(lr.GetU32(&len));
  if (lr.remaining() < len) {
    return Status::Corruption("truncated variant record");
  }
  BufferReader r(data.substr(*offset + 4, len));
  VariantRecord v;
  GESALL_RETURN_NOT_OK(r.GetI32(&v.chrom));
  GESALL_RETURN_NOT_OK(r.GetI64(&v.pos));
  GESALL_RETURN_NOT_OK(r.GetString(&v.ref));
  GESALL_RETURN_NOT_OK(r.GetString(&v.alt));
  GESALL_RETURN_NOT_OK(r.GetF64(&v.qual));
  uint8_t gt;
  GESALL_RETURN_NOT_OK(r.GetU8(&gt));
  v.genotype = gt == 0 ? Genotype::kHet : Genotype::kHomAlt;
  GESALL_RETURN_NOT_OK(r.GetF64(&v.mq));
  GESALL_RETURN_NOT_OK(r.GetI32(&v.dp));
  GESALL_RETURN_NOT_OK(r.GetF64(&v.fs));
  GESALL_RETURN_NOT_OK(r.GetF64(&v.ab));
  *offset += 4 + len;
  return v;
}

}  // namespace gesall

// BAM: binary, compressed SAM over BGZF blocks (paper §3.1).
//
// Layout: the serialized header occupies its own leading BGZF block(s)
// (the writer flushes after the header), followed by record blocks. The
// writer also flushes before a record that would straddle a block, so
// every BGZF chunk after the header contains whole records. This is the
// property Gesall's storage substrate exploits: a DFS split that starts at
// a chunk boundary can be decoded into a valid record stream after
// fetching the header from the file's first chunk.

#ifndef GESALL_FORMATS_BAM_H_
#define GESALL_FORMATS_BAM_H_

#include <string>
#include <vector>

#include "formats/sam.h"
#include "util/bgzf.h"
#include "util/status.h"

namespace gesall {

/// Serializes one record into the custom binary layout (length-prefixed).
std::string EncodeBamRecord(const SamRecord& rec);

/// Decodes one record from `data` starting at *offset; advances *offset.
Result<SamRecord> DecodeBamRecord(std::string_view data, size_t* offset);

/// \brief Streaming BAM writer: header first, then records, chunk-aligned.
class BamWriter {
 public:
  explicit BamWriter(std::string* out) : out_(out), bgzf_(out) {}

  /// Must be called exactly once, before any record.
  Status WriteHeader(const SamHeader& header);

  Status WriteRecord(const SamRecord& rec);

  /// Flushes the trailing partial block. Must be called last.
  Status Finish();

 private:
  std::string* out_;
  BgzfWriter bgzf_;
  bool header_written_ = false;
};

/// Serializes a complete BAM file in one call.
Result<std::string> WriteBam(const SamHeader& header,
                             const std::vector<SamRecord>& records);

/// Parses a complete BAM file.
Result<std::pair<SamHeader, std::vector<SamRecord>>> ReadBam(
    std::string_view bam);

/// Parses only the header (first chunk) of a BAM file.
Result<SamHeader> ReadBamHeader(std::string_view bam);

/// \brief Iterates records from a decompressed byte stream of record
/// chunks (no header), as Gesall's record reader presents DFS splits.
class BamRecordIterator {
 public:
  explicit BamRecordIterator(std::string_view decompressed_records)
      : data_(decompressed_records) {}

  bool Done() const { return offset_ >= data_.size(); }

  /// Decodes the next record; call only when !Done().
  Result<SamRecord> Next();

 private:
  std::string_view data_;
  size_t offset_ = 0;
};

/// \brief Decompresses the record region (everything after the header
/// blocks) of a BAM byte string.
Result<std::string> DecompressBamRecords(std::string_view bam);

/// \brief Returns the file offset where record chunks begin (i.e. one past
/// the header's BGZF blocks).
Result<size_t> BamRecordsStartOffset(std::string_view bam);

}  // namespace gesall

#endif  // GESALL_FORMATS_BAM_H_

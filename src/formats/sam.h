// SAM alignment records, header, and text codec (paper §3.1, Fig. 3).
//
// Positions are 0-based internally and converted to 1-based in SAM text.

#ifndef GESALL_FORMATS_SAM_H_
#define GESALL_FORMATS_SAM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "formats/cigar.h"
#include "util/status.h"

namespace gesall {

/// SAM FLAG bits.
namespace sam_flags {
inline constexpr uint16_t kPaired = 0x1;
inline constexpr uint16_t kProperPair = 0x2;
inline constexpr uint16_t kUnmapped = 0x4;
inline constexpr uint16_t kMateUnmapped = 0x8;
inline constexpr uint16_t kReverse = 0x10;
inline constexpr uint16_t kMateReverse = 0x20;
inline constexpr uint16_t kFirstOfPair = 0x40;
inline constexpr uint16_t kSecondOfPair = 0x80;
inline constexpr uint16_t kSecondary = 0x100;
inline constexpr uint16_t kQcFail = 0x200;
inline constexpr uint16_t kDuplicate = 0x400;
inline constexpr uint16_t kSupplementary = 0x800;
}  // namespace sam_flags

/// \brief Optional typed tag attached to a record ("RG:Z:g1" style).
struct SamTag {
  std::string key;   // two-character tag
  char type = 'Z';   // Z (string), i (int), f (float), A (char)
  std::string value;

  bool operator==(const SamTag&) const = default;
};

/// \brief One alignment record (one mapping of one read).
struct SamRecord {
  std::string qname;        // read name (QNAME)
  uint16_t flag = 0;        // FLAG
  int32_t ref_id = -1;      // reference index; -1 renders as '*'
  int64_t pos = -1;         // 0-based leftmost mapping position (POS)
  int mapq = 0;             // MAPQ
  Cigar cigar;              // CIGAR
  int32_t mate_ref_id = -1; // RNEXT as reference index
  int64_t mate_pos = -1;    // PNEXT, 0-based
  int64_t tlen = 0;         // TLEN (signed template length)
  std::string seq;          // SEQ
  std::string qual;         // QUAL, phred+33 ASCII
  std::vector<SamTag> tags;

  bool operator==(const SamRecord&) const = default;

  bool IsPaired() const { return flag & sam_flags::kPaired; }
  bool IsUnmapped() const { return flag & sam_flags::kUnmapped; }
  bool IsMateUnmapped() const { return flag & sam_flags::kMateUnmapped; }
  bool IsReverse() const { return flag & sam_flags::kReverse; }
  bool IsMateReverse() const { return flag & sam_flags::kMateReverse; }
  bool IsFirstOfPair() const { return flag & sam_flags::kFirstOfPair; }
  bool IsSecondary() const { return flag & sam_flags::kSecondary; }
  bool IsDuplicate() const { return flag & sam_flags::kDuplicate; }
  bool IsSupplementary() const { return flag & sam_flags::kSupplementary; }

  void SetFlag(uint16_t bit, bool on) {
    if (on) {
      flag |= bit;
    } else {
      flag &= static_cast<uint16_t>(~bit);
    }
  }

  /// 0-based position one past the last reference base of the alignment.
  int64_t AlignmentEnd() const { return pos + CigarReferenceLength(cigar); }

  /// 5' unclipped end (paper Fig. 3); meaningful only when mapped.
  int64_t UnclippedFivePrimePos() const {
    return UnclippedFivePrime(pos, cigar, IsReverse());
  }

  /// Returns the value of a tag, if present.
  std::optional<std::string> GetTag(const std::string& key) const;
  /// Sets (or replaces) a tag.
  void SetTag(const std::string& key, char type, std::string value);
  /// Returns an integer tag value, if present and parseable.
  std::optional<int64_t> GetIntTag(const std::string& key) const;

  /// Sum of base qualities >= 15, the PicardTools duplicate-scoring rule.
  int64_t BaseQualityScore() const;
};

/// \brief Read group metadata (@RG line).
struct ReadGroup {
  std::string id;
  std::string sample;
  std::string library;

  bool operator==(const ReadGroup&) const = default;
};

/// \brief SAM header: reference dictionary, sort order, read groups,
/// program chain.
struct SamHeader {
  struct RefSeq {
    std::string name;
    int64_t length = 0;
    bool operator==(const RefSeq&) const = default;
  };

  std::vector<RefSeq> refs;
  std::string sort_order = "unsorted";  // unsorted|queryname|coordinate
  std::vector<ReadGroup> read_groups;
  std::vector<std::string> programs;

  bool operator==(const SamHeader&) const = default;

  int FindRef(const std::string& name) const {
    for (size_t i = 0; i < refs.size(); ++i) {
      if (refs[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Renders the header as @HD/@SQ/@RG/@PG text lines.
std::string WriteSamHeader(const SamHeader& header);

/// Parses @-prefixed header lines.
Result<SamHeader> ParseSamHeader(const std::string& text);

/// Renders one record as a SAM text line (no trailing newline).
std::string WriteSamLine(const SamRecord& rec, const SamHeader& header);

/// Parses one SAM text line.
Result<SamRecord> ParseSamLine(const std::string& line,
                               const SamHeader& header);

/// Renders a full SAM text file (header + records).
std::string WriteSamText(const SamHeader& header,
                         const std::vector<SamRecord>& records);

/// Parses a full SAM text file.
Result<std::pair<SamHeader, std::vector<SamRecord>>> ParseSamText(
    const std::string& text);

}  // namespace gesall

#endif  // GESALL_FORMATS_SAM_H_

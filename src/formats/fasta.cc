#include "formats/fasta.h"

#include <algorithm>

namespace gesall {

namespace {
bool Intersects(const std::vector<ReferenceGenome::Region>& regions,
                int chrom, int64_t pos, int64_t len) {
  for (const auto& r : regions) {
    if (r.chrom == chrom && pos < r.end && pos + len > r.start) return true;
  }
  return false;
}
}  // namespace

int ReferenceGenome::FindChromosome(const std::string& name) const {
  for (size_t i = 0; i < chromosomes.size(); ++i) {
    if (chromosomes[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool ReferenceGenome::InCentromere(int chrom, int64_t pos, int64_t len) const {
  return Intersects(centromeres, chrom, pos, len);
}

bool ReferenceGenome::InBlacklist(int chrom, int64_t pos, int64_t len) const {
  return Intersects(blacklist, chrom, pos, len);
}

std::string WriteFasta(const ReferenceGenome& genome) {
  std::string out;
  for (const auto& c : genome.chromosomes) {
    out += ">";
    out += c.name;
    out += "\n";
    for (size_t i = 0; i < c.sequence.size(); i += 60) {
      out.append(c.sequence, i, std::min<size_t>(60, c.sequence.size() - i));
      out += "\n";
    }
  }
  return out;
}

Result<ReferenceGenome> ParseFasta(const std::string& text) {
  ReferenceGenome genome;
  Chromosome* current = nullptr;
  size_t i = 0;
  while (i < text.size()) {
    size_t eol = text.find('\n', i);
    if (eol == std::string::npos) eol = text.size();
    std::string_view line(text.data() + i, eol - i);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) {
      if (line[0] == '>') {
        genome.chromosomes.emplace_back();
        current = &genome.chromosomes.back();
        // Name is the first whitespace-delimited token after '>'.
        size_t sp = line.find_first_of(" \t", 1);
        current->name = std::string(
            line.substr(1, sp == std::string_view::npos ? line.size() - 1
                                                        : sp - 1));
      } else {
        if (current == nullptr) {
          return Status::Corruption("FASTA sequence data before header");
        }
        for (char c : line) {
          char u = static_cast<char>(std::toupper(c));
          if (u != 'A' && u != 'C' && u != 'G' && u != 'T' && u != 'N') {
            return Status::Corruption("invalid FASTA base");
          }
          current->sequence.push_back(u);
        }
      }
    }
    i = eol + 1;
  }
  return genome;
}

char ComplementBase(char base) {
  switch (base) {
    case 'A':
      return 'T';
    case 'C':
      return 'G';
    case 'G':
      return 'C';
    case 'T':
      return 'A';
    default:
      return 'N';
  }
}

std::string ReverseComplement(const std::string& seq) {
  std::string out(seq.rbegin(), seq.rend());
  for (char& c : out) c = ComplementBase(c);
  return out;
}

void ReverseComplementInto(std::string_view seq, std::string* out) {
  out->resize(seq.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    (*out)[i] = ComplementBase(seq[seq.size() - 1 - i]);
  }
}

}  // namespace gesall

// CIGAR strings: alignment operation runs, plus the derived coordinates the
// pipeline depends on — in particular the 5' unclipped end used as the
// Mark Duplicates partitioning key (paper §3.2, Fig. 3).

#ifndef GESALL_FORMATS_CIGAR_H_
#define GESALL_FORMATS_CIGAR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace gesall {

/// \brief One CIGAR operation run.
struct CigarOp {
  char op = 'M';   // M, I, D, S, H, N, =, X
  int32_t len = 0;

  bool operator==(const CigarOp&) const = default;
};

using Cigar = std::vector<CigarOp>;

/// Renders e.g. {M:50, S:10} as "50M10S"; empty cigar renders as "*".
std::string CigarToString(const Cigar& cigar);

/// Parses "50M10S" style text ("*" yields empty).
Result<Cigar> ParseCigar(const std::string& text);

/// Number of reference bases the alignment spans (M/D/N/=/X).
int64_t CigarReferenceLength(const Cigar& cigar);

/// Number of read bases the alignment consumes (M/I/S/=/X).
int64_t CigarQueryLength(const Cigar& cigar);

/// Soft/hard clip lengths at the left / right end of the CIGAR.
int32_t LeadingClip(const Cigar& cigar);
int32_t TrailingClip(const Cigar& cigar);

/// \brief 5' unclipped position of a read (paper Fig. 3 derived attribute).
///
/// For a forward-strand read this is POS minus the leading clip; for a
/// reverse-strand read it is the alignment end plus the trailing clip
/// (the 5' end of the original fragment is at the right).
int64_t UnclippedFivePrime(int64_t pos, const Cigar& cigar, bool reverse);

}  // namespace gesall

#endif  // GESALL_FORMATS_CIGAR_H_

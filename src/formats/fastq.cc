#include "formats/fastq.h"

namespace gesall {

std::string WriteFastq(const std::vector<FastqRecord>& records) {
  std::string out;
  for (const auto& r : records) {
    out += "@";
    out += r.name;
    out += "\n";
    out += r.sequence;
    out += "\n+\n";
    out += r.quality;
    out += "\n";
  }
  return out;
}

Result<std::vector<FastqRecord>> ParseFastq(const std::string& text) {
  std::vector<FastqRecord> records;
  size_t i = 0;
  auto next_line = [&](std::string_view* line) -> bool {
    if (i >= text.size()) return false;
    size_t eol = text.find('\n', i);
    if (eol == std::string::npos) eol = text.size();
    *line = std::string_view(text.data() + i, eol - i);
    if (!line->empty() && line->back() == '\r') line->remove_suffix(1);
    i = eol + 1;
    return true;
  };
  std::string_view l1, l2, l3, l4;
  while (next_line(&l1)) {
    if (l1.empty()) continue;
    if (l1[0] != '@') return Status::Corruption("FASTQ record missing '@'");
    if (!next_line(&l2) || !next_line(&l3) || !next_line(&l4)) {
      return Status::Corruption("truncated FASTQ record");
    }
    if (l3.empty() || l3[0] != '+') {
      return Status::Corruption("FASTQ record missing '+'");
    }
    if (l2.size() != l4.size()) {
      return Status::Corruption("FASTQ sequence/quality length mismatch");
    }
    FastqRecord r;
    r.name = std::string(l1.substr(1));
    r.sequence = std::string(l2);
    r.quality = std::string(l4);
    records.push_back(std::move(r));
  }
  return records;
}

Result<std::vector<FastqRecord>> InterleavePairs(
    const std::vector<FastqRecord>& mate1,
    const std::vector<FastqRecord>& mate2) {
  if (mate1.size() != mate2.size()) {
    return Status::InvalidArgument("mate file record counts differ");
  }
  std::vector<FastqRecord> out;
  out.reserve(mate1.size() * 2);
  for (size_t i = 0; i < mate1.size(); ++i) {
    if (mate1[i].name != mate2[i].name) {
      return Status::Corruption("read name mismatch between mate files at " +
                                std::to_string(i));
    }
    out.push_back(mate1[i]);
    out.push_back(mate2[i]);
  }
  return out;
}

}  // namespace gesall

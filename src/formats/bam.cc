#include "formats/bam.h"

#include <cstring>

#include "util/io.h"

namespace gesall {

namespace {
constexpr char kBamMagic[4] = {'G', 'B', 'A', 'M'};
}

std::string EncodeBamRecord(const SamRecord& rec) {
  std::string body;
  BufferWriter w(&body);
  w.PutString(rec.qname);
  w.PutU16(rec.flag);
  w.PutI32(rec.ref_id);
  w.PutI64(rec.pos);
  w.PutU8(static_cast<uint8_t>(rec.mapq));
  w.PutU16(static_cast<uint16_t>(rec.cigar.size()));
  for (const auto& c : rec.cigar) {
    w.PutU8(static_cast<uint8_t>(c.op));
    w.PutU32(static_cast<uint32_t>(c.len));
  }
  w.PutI32(rec.mate_ref_id);
  w.PutI64(rec.mate_pos);
  w.PutI64(rec.tlen);
  w.PutString(rec.seq);
  w.PutString(rec.qual);
  w.PutU16(static_cast<uint16_t>(rec.tags.size()));
  for (const auto& t : rec.tags) {
    w.PutBytes(std::string_view(t.key.data(), 2));
    w.PutU8(static_cast<uint8_t>(t.type));
    w.PutString(t.value);
  }
  std::string out;
  BufferWriter lw(&out);
  lw.PutU32(static_cast<uint32_t>(body.size()));
  out += body;
  return out;
}

Result<SamRecord> DecodeBamRecord(std::string_view data, size_t* offset) {
  BufferReader lr(data.substr(*offset));
  uint32_t len;
  GESALL_RETURN_NOT_OK(lr.GetU32(&len));
  if (lr.remaining() < len) return Status::Corruption("truncated BAM record");
  std::string_view body = data.substr(*offset + 4, len);
  BufferReader r(body);
  SamRecord rec;
  GESALL_RETURN_NOT_OK(r.GetString(&rec.qname));
  GESALL_RETURN_NOT_OK(r.GetU16(&rec.flag));
  GESALL_RETURN_NOT_OK(r.GetI32(&rec.ref_id));
  GESALL_RETURN_NOT_OK(r.GetI64(&rec.pos));
  uint8_t mapq;
  GESALL_RETURN_NOT_OK(r.GetU8(&mapq));
  rec.mapq = mapq;
  uint16_t n_ops;
  GESALL_RETURN_NOT_OK(r.GetU16(&n_ops));
  rec.cigar.resize(n_ops);
  for (auto& c : rec.cigar) {
    uint8_t op;
    uint32_t oplen;
    GESALL_RETURN_NOT_OK(r.GetU8(&op));
    GESALL_RETURN_NOT_OK(r.GetU32(&oplen));
    c.op = static_cast<char>(op);
    c.len = static_cast<int32_t>(oplen);
  }
  GESALL_RETURN_NOT_OK(r.GetI32(&rec.mate_ref_id));
  GESALL_RETURN_NOT_OK(r.GetI64(&rec.mate_pos));
  GESALL_RETURN_NOT_OK(r.GetI64(&rec.tlen));
  GESALL_RETURN_NOT_OK(r.GetString(&rec.seq));
  GESALL_RETURN_NOT_OK(r.GetString(&rec.qual));
  uint16_t n_tags;
  GESALL_RETURN_NOT_OK(r.GetU16(&n_tags));
  rec.tags.resize(n_tags);
  for (auto& t : rec.tags) {
    std::string_view key;
    GESALL_RETURN_NOT_OK(r.GetBytes(2, &key));
    t.key.assign(key);
    uint8_t type;
    GESALL_RETURN_NOT_OK(r.GetU8(&type));
    t.type = static_cast<char>(type);
    GESALL_RETURN_NOT_OK(r.GetString(&t.value));
  }
  *offset += 4 + len;
  return rec;
}

Status BamWriter::WriteHeader(const SamHeader& header) {
  if (header_written_) return Status::InvalidArgument("header already written");
  std::string block;
  block.append(kBamMagic, 4);
  BufferWriter w(&block);
  w.PutString(WriteSamHeader(header));
  if (block.size() > kBgzfBlockSize) {
    return Status::InvalidArgument("BAM header exceeds one BGZF block");
  }
  GESALL_RETURN_NOT_OK(bgzf_.Append(block));
  GESALL_RETURN_NOT_OK(bgzf_.Flush());  // header gets its own block
  header_written_ = true;
  return Status::OK();
}

Status BamWriter::WriteRecord(const SamRecord& rec) {
  if (!header_written_) return Status::InvalidArgument("header not written");
  std::string encoded = EncodeBamRecord(rec);
  if (encoded.size() > kBgzfBlockSize) {
    return Status::InvalidArgument("BAM record exceeds one BGZF block");
  }
  // Keep records whole within a chunk so DFS splits decode independently.
  uint64_t intra = bgzf_.Tell() & 0xffff;
  if (intra + encoded.size() > kBgzfBlockSize) {
    GESALL_RETURN_NOT_OK(bgzf_.Flush());
  }
  return bgzf_.Append(encoded);
}

Status BamWriter::Finish() { return bgzf_.Flush(); }

Result<std::string> WriteBam(const SamHeader& header,
                             const std::vector<SamRecord>& records) {
  std::string out;
  BamWriter writer(&out);
  GESALL_RETURN_NOT_OK(writer.WriteHeader(header));
  for (const auto& r : records) {
    GESALL_RETURN_NOT_OK(writer.WriteRecord(r));
  }
  GESALL_RETURN_NOT_OK(writer.Finish());
  return out;
}

Result<SamHeader> ReadBamHeader(std::string_view bam) {
  size_t consumed = 0;
  GESALL_ASSIGN_OR_RETURN(std::string block,
                          BgzfDecompressBlock(bam, &consumed));
  if (block.size() < 4 || std::memcmp(block.data(), kBamMagic, 4) != 0) {
    return Status::Corruption("bad BAM magic");
  }
  BufferReader r(std::string_view(block).substr(4));
  std::string header_text;
  GESALL_RETURN_NOT_OK(r.GetString(&header_text));
  return ParseSamHeader(header_text);
}

Result<size_t> BamRecordsStartOffset(std::string_view bam) {
  // The header always occupies exactly the first BGZF block.
  return BgzfPeekBlockSize(bam);
}

Result<std::string> DecompressBamRecords(std::string_view bam) {
  GESALL_ASSIGN_OR_RETURN(size_t start, BamRecordsStartOffset(bam));
  std::string out;
  size_t off = start;
  while (off < bam.size()) {
    size_t consumed = 0;
    GESALL_ASSIGN_OR_RETURN(std::string block,
                            BgzfDecompressBlock(bam.substr(off), &consumed));
    out += block;
    off += consumed;
  }
  return out;
}

Result<SamRecord> BamRecordIterator::Next() {
  return DecodeBamRecord(data_, &offset_);
}

Result<std::pair<SamHeader, std::vector<SamRecord>>> ReadBam(
    std::string_view bam) {
  GESALL_ASSIGN_OR_RETURN(SamHeader header, ReadBamHeader(bam));
  GESALL_ASSIGN_OR_RETURN(std::string records_bytes,
                          DecompressBamRecords(bam));
  std::vector<SamRecord> records;
  BamRecordIterator it(records_bytes);
  while (!it.Done()) {
    GESALL_ASSIGN_OR_RETURN(SamRecord rec, it.Next());
    records.push_back(std::move(rec));
  }
  return std::make_pair(std::move(header), std::move(records));
}

}  // namespace gesall

// Reference genome container and FASTA text codec.

#ifndef GESALL_FORMATS_FASTA_H_
#define GESALL_FORMATS_FASTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace gesall {

/// \brief One reference sequence (chromosome).
struct Chromosome {
  std::string name;
  std::string sequence;  // upper-case A/C/G/T/N
};

/// \brief A reference genome: ordered chromosomes plus annotation tracks
/// used by the error-diagnosis experiments (centromeres, blacklist).
struct ReferenceGenome {
  std::vector<Chromosome> chromosomes;

  /// Half-open [start, end) intervals per chromosome index.
  struct Region {
    int chrom = 0;
    int64_t start = 0;
    int64_t end = 0;
  };
  std::vector<Region> centromeres;
  std::vector<Region> blacklist;

  int64_t TotalLength() const {
    int64_t n = 0;
    for (const auto& c : chromosomes) {
      n += static_cast<int64_t>(c.sequence.size());
    }
    return n;
  }

  /// Index of a chromosome by name, or -1.
  int FindChromosome(const std::string& name) const;

  /// True if [pos, pos+len) on `chrom` intersects a centromere region.
  bool InCentromere(int chrom, int64_t pos, int64_t len = 1) const;
  /// True if [pos, pos+len) on `chrom` intersects a blacklist region.
  bool InBlacklist(int chrom, int64_t pos, int64_t len = 1) const;
};

/// \brief Serializes a genome to FASTA text (60-column wrapped).
std::string WriteFasta(const ReferenceGenome& genome);

/// \brief Parses FASTA text into a genome (annotations left empty).
Result<ReferenceGenome> ParseFasta(const std::string& text);

/// \brief Complement of one base (N maps to N).
char ComplementBase(char base);

/// \brief Reverse complement of a sequence.
std::string ReverseComplement(const std::string& seq);

/// \brief Reverse complement written into `out` (resized, capacity
/// reused) — allocation-free once `out` has warmed up.
void ReverseComplementInto(std::string_view seq, std::string* out);

}  // namespace gesall

#endif  // GESALL_FORMATS_FASTA_H_

// FASTQ records and text codec, including the interleaved paired layout
// that Gesall uses as alignment input (paper §3.2: the two per-mate FASTQ
// files are merged into a single read-name-sorted file of pairs before
// logical partitioning).

#ifndef GESALL_FORMATS_FASTQ_H_
#define GESALL_FORMATS_FASTQ_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace gesall {

/// \brief One unaligned read: name, bases, phred+33 qualities.
struct FastqRecord {
  std::string name;
  std::string sequence;
  std::string quality;  // ASCII phred+33, same length as sequence

  bool operator==(const FastqRecord&) const = default;
};

/// \brief Serializes records as standard 4-line FASTQ text.
std::string WriteFastq(const std::vector<FastqRecord>& records);

/// \brief Parses 4-line FASTQ text.
Result<std::vector<FastqRecord>> ParseFastq(const std::string& text);

/// \brief Interleaves two mate files (sorted by read name) into one stream
/// of alternating mate1/mate2 records, validating the pairing.
Result<std::vector<FastqRecord>> InterleavePairs(
    const std::vector<FastqRecord>& mate1,
    const std::vector<FastqRecord>& mate2);

}  // namespace gesall

#endif  // GESALL_FORMATS_FASTQ_H_

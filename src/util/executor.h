// Persistent work-stealing executor — the one task engine shared by MR
// jobs, the DFS write/scrub checksum path, the pipeline round DAG, and
// the benchmarks (the paper's "granularity of scheduling" story, §4.1:
// round times are dominated by stragglers at phase barriers, so tasks
// from adjacent phases must be able to fill each other's idle slots).
//
// Design:
//  - One deque per (worker, priority). The owner pops FIFO from the
//    front; an idle worker steals the back HALF of the richest deque of
//    a victim, amortizing steal traffic (steal-half, Cilk-style).
//  - Three priorities: kHigh for coordination tasks that unblock others
//    (the MR job master's verify/fetch phase), kNormal for regular map/
//    reduce tasks, kLow for background work (scrub checksums).
//  - Executor::Shared() is the process-lifetime instance; constructing
//    throwaway pools per phase is exactly the churn this replaces
//    (instances_created() lets tests assert no one regressed into it).
//
// Companions:
//  - TaskGroup: completion token for a batch. Wait() HELPS: it runs the
//    group's still-queued closures inline, so a task already holding a
//    lock or an executor slot can wait on subtasks without deadlocking
//    even when every worker is busy or blocked.
//  - Throttle: admission cap modeling the cluster's task slots
//    (max_parallel_tasks): at most N submitted tasks in flight, the rest
//    queued FIFO. Shareable across jobs so overlapped rounds compete for
//    the same slots instead of multiplying them.
//  - ReadySignal: idempotent latch carrying per-partition readiness
//    edges (e.g. "round-4 partition c is sorted") to gated input splits.

#ifndef GESALL_UTIL_EXECUTOR_H_
#define GESALL_UTIL_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace gesall {

/// \brief Scheduling telemetry (totals since construction).
struct ExecutorStats {
  int64_t tasks_executed = 0;
  /// Steal operations that moved at least one task.
  int64_t steals = 0;
  /// Tasks migrated by those steals.
  int64_t tasks_stolen = 0;
  /// Total submit-to-dequeue latency across tasks.
  int64_t queue_wait_micros = 0;
};

/// \brief Per-tag accounting (see Executor::TagScope): how much executor
/// capacity the tasks carrying one tag have consumed. The service layer
/// tags every job's tasks with the job id and charges busy_micros against
/// the owning tenant's quota for weighted-fair scheduling.
struct TagStats {
  int64_t tasks_executed = 0;
  int64_t busy_micros = 0;
};

/// \brief Fixed-size work-stealing thread pool with task priorities.
/// Submit is thread-safe and may be called from worker threads (the task
/// lands on the submitting worker's own deque, preserving locality).
class Executor {
 public:
  enum class Priority { kHigh = 0, kNormal = 1, kLow = 2 };
  static constexpr int kNumPriorities = 3;

  explicit Executor(int num_threads);
  /// Drains every queued task, then joins the workers.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  void Submit(std::function<void()> fn,
              Priority priority = Priority::kNormal);
  /// Submit with an explicit accounting tag instead of the calling
  /// thread's current one — used by Throttle, whose queued tasks launch
  /// from whichever worker frees a slot, not from the submitter.
  void Submit(std::function<void()> fn, Priority priority, uint64_t tag);

  int num_threads() const { return static_cast<int>(workers_.size()); }
  ExecutorStats stats() const;

  /// Accounting consumed by tasks tagged `tag` on this executor (tag 0,
  /// the default, is not tracked). Tasks submitted while a TagScope is
  /// active inherit its tag, including nested submits from inside a
  /// tagged task — the tag follows the work across workers and steals.
  TagStats tag_stats(uint64_t tag) const;

  /// The calling thread's current accounting tag (0 outside any scope).
  static uint64_t CurrentTag();

  /// \brief RAII accounting scope: tasks submitted (transitively) by
  /// this thread while the scope is live carry `tag`.
  class TagScope {
   public:
    explicit TagScope(uint64_t tag);
    ~TagScope();
    TagScope(const TagScope&) = delete;
    TagScope& operator=(const TagScope&) = delete;

   private:
    uint64_t prev_;
  };

  /// The process-lifetime executor (max(4, hardware_concurrency)
  /// workers), created on first use and intentionally never destroyed.
  static Executor* Shared();

  /// Total Executor constructions in this process — regression guard
  /// against per-phase pool churn (one shared instance per job run).
  static int64_t instances_created();

 private:
  struct Task {
    std::function<void()> fn;
    int64_t enqueue_micros = 0;
    uint64_t tag = 0;
  };
  struct Worker {
    std::mutex mu;
    std::deque<Task> queues[kNumPriorities];  // guarded by mu
    std::thread thread;
  };

  void WorkerLoop(int self);
  bool PopOwn(int self, Task* task);
  bool StealInto(int self, Task* task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<int> next_worker_{0};  // round-robin for external submits
  std::atomic<int64_t> pending_{0};  // queued, not yet dequeued
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  bool stop_ = false;  // guarded by idle_mu_

  std::atomic<int64_t> tasks_executed_{0};
  std::atomic<int64_t> steals_{0};
  std::atomic<int64_t> tasks_stolen_{0};
  std::atomic<int64_t> queue_wait_micros_{0};

  mutable std::mutex tag_mu_;
  std::unordered_map<uint64_t, TagStats> tag_stats_;  // guarded by tag_mu_
};

/// \brief Completion token for a batch of executor tasks.
///
/// Wait() is a HELPING wait: while closures of this group are still
/// queued, the waiter pops and runs them inline. Progress is therefore
/// guaranteed even when the executor is saturated or every worker is
/// blocked — which is what makes it safe to wait on a group from inside
/// an executor task (the MR job master re-executing lost maps) or while
/// holding a lock whose critical sections the closures never enter.
class TaskGroup {
 public:
  explicit TaskGroup(Executor* executor,
                     Executor::Priority priority =
                         Executor::Priority::kNormal);

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Submit(std::function<void()> fn);

  /// Blocks until every submitted closure has finished, running queued
  /// ones inline. All side effects of the closures happen-before Wait()
  /// returns.
  void Wait();

 private:
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> queue;  // not yet started
    int running = 0;                          // started, not finished
  };
  static void RunOne(const std::shared_ptr<State>& state);

  std::shared_ptr<State> state_;
  Executor* executor_;
  Executor::Priority priority_;
};

/// \brief FIFO admission cap over an executor: at most max_in_flight
/// submitted tasks run concurrently; completion launches the next. This
/// is the cluster's "task slots" (mapreduce max_parallel_tasks) on top
/// of a wider shared executor, and can be shared by several jobs so
/// overlapped rounds compete for the same slots.
class Throttle {
 public:
  Throttle(Executor* executor, int max_in_flight,
           Executor::Priority priority = Executor::Priority::kNormal);

  Throttle(const Throttle&) = delete;
  Throttle& operator=(const Throttle&) = delete;

  void Submit(std::function<void()> fn);

  int max_in_flight() const { return max_in_flight_; }

 private:
  // Pending tasks keep the accounting tag captured at Submit() time:
  // a queued task launches from whichever worker frees a slot (possibly
  // running a differently-tagged job), so the submitter's tag must
  // travel with the closure instead of being re-read from the launcher.
  struct PendingTask {
    std::function<void()> fn;
    uint64_t tag = 0;
  };
  struct State {
    std::mutex mu;
    std::deque<PendingTask> pending;
    int in_flight = 0;
  };
  static void Launch(const std::shared_ptr<State>& state,
                     Executor* executor, Executor::Priority priority,
                     std::function<void()> fn, uint64_t tag);

  std::shared_ptr<State> state_;
  Executor* executor_;
  int max_in_flight_;
  Executor::Priority priority_;
};

/// \brief Idempotent readiness latch with callbacks — the per-partition
/// edge of the round DAG ("partition c of round N is on the DFS").
/// Callbacks registered before the signal fire inside Notify(), in
/// registration order; callbacks registered after run inline.
class ReadySignal {
 public:
  void Notify();
  bool ready() const;
  /// `fn` runs exactly once, on whichever thread crosses the edge.
  void OnReady(std::function<void()> fn);

 private:
  mutable std::mutex mu_;
  bool ready_ = false;  // guarded by mu_
  std::vector<std::function<void()>> callbacks_;
};

}  // namespace gesall

#endif  // GESALL_UTIL_EXECUTOR_H_

// Process memory telemetry for the streaming pipeline's bounded-RSS
// story: the OS peak RSS (getrusage high-water mark, never resettable)
// plus an in-process allocation high-water mark fed by operator-new
// hooks.
//
// The allocation counter is deterministic (no page-cache or allocator
// slack), which is what the BENCH_pipeline bounded-memory gate compares;
// ru_maxrss is reported alongside as the ground truth. The operator
// new/delete overrides live in the separate opt-in TU mem_hooks.cc —
// link it into a binary's own sources to activate tracking (it must NOT
// go into a library: several bench binaries define their own global
// operator new, and two definitions in one link is an ODR violation).

#ifndef GESALL_UTIL_MEM_H_
#define GESALL_UTIL_MEM_H_

#include <cstddef>
#include <cstdint>

namespace gesall {

/// \brief Lifetime peak resident set size of this process in bytes
/// (ru_maxrss). Monotone: the OS never lowers it.
int64_t PeakRssBytes();

/// \brief Current resident set size in bytes (/proc/self/statm), or 0
/// when unavailable on this platform.
int64_t CurrentRssBytes();

namespace memhooks {
/// Called by the opt-in operator-new/delete overrides (mem_hooks.cc).
/// Safe to call from any thread; relaxed atomics on the hot path.
void RecordAlloc(size_t bytes);
void RecordFree(size_t bytes);
}  // namespace memhooks

/// \brief Bytes currently allocated through the hooks (0 when the hook
/// TU is not linked).
int64_t LiveAllocBytes();

/// \brief High-water mark of LiveAllocBytes() since the last reset.
int64_t PeakAllocBytes();

/// \brief Restarts the allocation high-water mark from the current live
/// count, so a caller can measure the peak of one phase.
void ResetPeakAllocBytes();

/// \brief True when the operator-new hooks are linked into this binary
/// and have observed at least one allocation.
bool AllocTrackingActive();

/// \brief One point-in-time reading of all memory telemetry.
struct MemorySample {
  int64_t peak_rss_bytes = 0;
  int64_t current_rss_bytes = 0;
  int64_t live_alloc_bytes = 0;   // 0 unless hooks linked
  int64_t peak_alloc_bytes = 0;   // 0 unless hooks linked
};

MemorySample SampleMemory();

}  // namespace gesall

#endif  // GESALL_UTIL_MEM_H_

#include "util/crc32c.h"

#include <cstring>
#include <mutex>

#include "util/cpu.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define GESALL_CRC32C_HAS_SSE42 1
#include <nmmintrin.h>
#endif

namespace gesall {

namespace {

// Reflected Castagnoli polynomial (0x1EDC6F41 bit-reversed).
constexpr uint32_t kPolyReflected = 0x82F63B78u;

// Slice-by-8 lookup tables: table[t][b] advances the CRC by the byte b
// seen t positions ahead, so eight bytes fold in with eight table loads
// and no per-byte dependency chain.
uint32_t g_table[8][256];
std::once_flag g_table_once;

void InitTables() {
  for (int i = 0; i < 256; ++i) {
    uint32_t c = static_cast<uint32_t>(i);
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (c >> 1) ^ kPolyReflected : c >> 1;
    }
    g_table[0][i] = c;
  }
  for (int t = 1; t < 8; ++t) {
    for (int i = 0; i < 256; ++i) {
      g_table[t][i] =
          (g_table[t - 1][i] >> 8) ^ g_table[0][g_table[t - 1][i] & 0xFF];
    }
  }
}

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 |
         static_cast<uint32_t>(p[3]) << 24;
}

#ifdef GESALL_CRC32C_HAS_SSE42
// The single-lane crc32q loop is latency-bound: each step waits ~3
// cycles on the previous CRC. Large buffers instead run three
// independent lanes over adjacent kLaneBytes segments (one crc32q per
// lane per cycle) and recombine with a precomputed "advance the CRC
// register by kLaneBytes zero bytes" linear operator: for the reflected
// CRC register, F(init, A||B) = Shift(F(init, A)) ^ F(0, B).
constexpr size_t kLaneBytes = 4096;

uint32_t g_lane_shift[4][256];
std::once_flag g_lane_shift_once;

void InitLaneShift() {
  std::call_once(g_table_once, InitTables);
  // Columns of the one-zero-byte register step, a GF(2)-linear map.
  uint32_t col[32];
  for (int i = 0; i < 32; ++i) {
    uint32_t l = 1u << i;
    col[i] = (l >> 8) ^ g_table[0][l & 0xFF];
  }
  auto apply = [](const uint32_t c[32], uint32_t x) {
    uint32_t out = 0;
    while (x != 0) {
      out ^= c[__builtin_ctz(x)];
      x &= x - 1;
    }
    return out;
  };
  // Square log2(kLaneBytes) times: one-byte step -> kLaneBytes step.
  for (size_t span = 1; span < kLaneBytes; span *= 2) {
    uint32_t next[32];
    for (int i = 0; i < 32; ++i) next[i] = apply(col, col[i]);
    std::memcpy(col, next, sizeof(col));
  }
  for (int t = 0; t < 4; ++t) {
    for (int b = 0; b < 256; ++b) {
      g_lane_shift[t][b] = apply(col, static_cast<uint32_t>(b) << (8 * t));
    }
  }
}

inline uint32_t LaneShift(uint32_t crc) {
  return g_lane_shift[0][crc & 0xFF] ^ g_lane_shift[1][(crc >> 8) & 0xFF] ^
         g_lane_shift[2][(crc >> 16) & 0xFF] ^ g_lane_shift[3][crc >> 24];
}

__attribute__((target("sse4.2"))) uint32_t ExtendHardware(uint32_t crc,
                                                          const uint8_t* p,
                                                          size_t n) {
  uint64_t l = crc ^ 0xFFFFFFFFu;
  if (n >= 3 * kLaneBytes) {
    std::call_once(g_lane_shift_once, InitLaneShift);
    do {
      uint64_t c0 = l, c1 = 0, c2 = 0;
      const uint8_t* p1 = p + kLaneBytes;
      const uint8_t* p2 = p + 2 * kLaneBytes;
      for (size_t i = 0; i < kLaneBytes; i += 8) {
        uint64_t w0, w1, w2;
        std::memcpy(&w0, p + i, 8);
        std::memcpy(&w1, p1 + i, 8);
        std::memcpy(&w2, p2 + i, 8);
        c0 = _mm_crc32_u64(c0, w0);
        c1 = _mm_crc32_u64(c1, w1);
        c2 = _mm_crc32_u64(c2, w2);
      }
      const uint32_t c01 =
          LaneShift(static_cast<uint32_t>(c0)) ^ static_cast<uint32_t>(c1);
      l = LaneShift(c01) ^ static_cast<uint32_t>(c2);
      p += 3 * kLaneBytes;
      n -= 3 * kLaneBytes;
    } while (n >= 3 * kLaneBytes);
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    l = _mm_crc32_u64(l, word);
    p += 8;
    n -= 8;
  }
  uint32_t l32 = static_cast<uint32_t>(l);
  while (n > 0) {
    l32 = _mm_crc32_u8(l32, *p++);
    --n;
  }
  return l32 ^ 0xFFFFFFFFu;
}
#endif

}  // namespace

uint32_t ExtendCrc32cPortable(uint32_t crc, const void* data, size_t n) {
  std::call_once(g_table_once, InitTables);
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t l = crc ^ 0xFFFFFFFFu;
  while (n >= 8) {
    uint32_t a = l ^ LoadLe32(p);
    uint32_t b = LoadLe32(p + 4);
    l = g_table[7][a & 0xFF] ^ g_table[6][(a >> 8) & 0xFF] ^
        g_table[5][(a >> 16) & 0xFF] ^ g_table[4][a >> 24] ^
        g_table[3][b & 0xFF] ^ g_table[2][(b >> 8) & 0xFF] ^
        g_table[1][(b >> 16) & 0xFF] ^ g_table[0][b >> 24];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    l = (l >> 8) ^ g_table[0][(l ^ *p++) & 0xFF];
    --n;
  }
  return l ^ 0xFFFFFFFFu;
}

bool Crc32cHardwareAvailable() {
#ifdef GESALL_CRC32C_HAS_SSE42
  return CpuHasSse42();
#else
  return false;
#endif
}

uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n) {
#ifdef GESALL_CRC32C_HAS_SSE42
  if (Crc32cHardwareAvailable()) {
    return ExtendHardware(crc, static_cast<const uint8_t*>(data), n);
  }
#endif
  return ExtendCrc32cPortable(crc, data, n);
}

}  // namespace gesall

// Statistical utilities used by the variant callers and the error
// diagnosis toolkit: Fisher's exact test (strand bias, FS metric),
// the generalized logistic weighting function (weighted D_count/D_impact,
// paper §4.5.2), and phred-scale conversions.

#ifndef GESALL_UTIL_STATS_H_
#define GESALL_UTIL_STATS_H_

#include <cmath>
#include <cstdint>

namespace gesall {

/// \brief Converts an error probability to a phred quality (capped).
inline int PhredFromErrorProb(double p, int cap = 60) {
  if (p <= 0) return cap;
  int q = static_cast<int>(-10.0 * std::log10(p) + 0.5);
  return q < 0 ? 0 : (q > cap ? cap : q);
}

/// \brief Converts a phred quality to an error probability.
inline double ErrorProbFromPhred(int q) { return std::pow(10.0, -q / 10.0); }

/// \brief Two-sided Fisher's exact test p-value for a 2x2 table
/// [[a, b], [c, d]]. Used for the FS (Fisher strand) variant metric,
/// reported as -10*log10(p) like GATK.
double FisherExactTwoSided(int a, int b, int c, int d);

/// \brief FS metric: phred-scaled Fisher strand-bias p-value.
double FisherStrandPhred(int ref_fwd, int ref_rev, int alt_fwd, int alt_rev);

/// \brief Generalized logistic weighting of quality scores (paper §4.5.2).
///
/// Maps a quality score to a weight in [0,1]: ~0 below `lo`, ~1 above `hi`,
/// following a logistic curve in between. The paper uses lo=30, hi=55 for
/// mapping quality, reflecting the filtering behavior of analysis programs.
class LogisticWeight {
 public:
  LogisticWeight(double lo, double hi) : mid_((lo + hi) / 2.0) {
    // Choose steepness so that weight(lo) ~ 0.02 and weight(hi) ~ 0.98.
    steepness_ = 2.0 * std::log(49.0) / (hi - lo);
  }

  double operator()(double quality) const {
    return 1.0 / (1.0 + std::exp(-steepness_ * (quality - mid_)));
  }

 private:
  double mid_;
  double steepness_;
};

/// \brief Welford-style running mean / variance accumulator.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
  }
  int64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace gesall

#endif  // GESALL_UTIL_STATS_H_

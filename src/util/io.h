// Little-endian byte buffer encoding/decoding and whole-file helpers.
//
// BAM-style binary records are built and parsed through these primitives.

#ifndef GESALL_UTIL_IO_H_
#define GESALL_UTIL_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace gesall {

/// \brief Appends little-endian fixed-width integers and byte strings to a
/// growable buffer.
class BufferWriter {
 public:
  explicit BufferWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v) { PutFixed(v); }
  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }
  void PutI32(int32_t v) { PutFixed(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutFixed(static_cast<uint64_t>(v)); }
  void PutF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutFixed(bits);
  }
  void PutBytes(std::string_view bytes) { out_->append(bytes); }
  /// Length-prefixed (u32) byte string.
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutBytes(s);
  }

 private:
  template <typename T>
  void PutFixed(T v) {
    char buf[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    out_->append(buf, sizeof(T));
  }

  std::string* out_;
};

/// \brief Reads little-endian fixed-width integers and byte strings from a
/// byte view, with bounds checking.
class BufferReader {
 public:
  explicit BufferReader(std::string_view data) : data_(data) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ >= data_.size(); }

  Status GetU8(uint8_t* v) { return GetFixed(v); }
  Status GetU16(uint16_t* v) { return GetFixed(v); }
  Status GetU32(uint32_t* v) { return GetFixed(v); }
  Status GetU64(uint64_t* v) { return GetFixed(v); }
  Status GetI32(int32_t* v) {
    uint32_t u = 0;
    GESALL_RETURN_NOT_OK(GetFixed(&u));
    *v = static_cast<int32_t>(u);
    return Status::OK();
  }
  Status GetI64(int64_t* v) {
    uint64_t u = 0;
    GESALL_RETURN_NOT_OK(GetFixed(&u));
    *v = static_cast<int64_t>(u);
    return Status::OK();
  }
  Status GetF64(double* v) {
    uint64_t bits;
    GESALL_RETURN_NOT_OK(GetFixed(&bits));
    std::memcpy(v, &bits, sizeof(bits));
    return Status::OK();
  }
  Status GetBytes(size_t n, std::string_view* out) {
    if (remaining() < n) return Status::OutOfRange("buffer underflow");
    *out = data_.substr(pos_, n);
    pos_ += n;
    return Status::OK();
  }
  Status GetString(std::string* out) {
    uint32_t n;
    GESALL_RETURN_NOT_OK(GetU32(&n));
    std::string_view sv;
    GESALL_RETURN_NOT_OK(GetBytes(n, &sv));
    out->assign(sv);
    return Status::OK();
  }

 private:
  template <typename T>
  Status GetFixed(T* v) {
    if (remaining() < sizeof(T)) return Status::OutOfRange("buffer underflow");
    T r = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      r |= static_cast<T>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    *v = r;
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

/// Reads an entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes (replacing) a file from a string.
Status WriteStringToFile(const std::string& path, std::string_view data);

}  // namespace gesall

#endif  // GESALL_UTIL_IO_H_

// Minimal leveled logging for library and harness code.

#ifndef GESALL_UTIL_LOGGING_H_
#define GESALL_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace gesall {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void EmitLog(LogLevel level, const std::string& msg);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { EmitLog(level_, stream_.str()); }
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define GESALL_LOG(level)                                        \
  if (::gesall::LogLevel::level < ::gesall::GetLogLevel()) {     \
  } else                                                         \
    ::gesall::internal::LogMessage(::gesall::LogLevel::level).stream()

#define GESALL_CHECK(cond)                                                  \
  if (cond) {                                                               \
  } else                                                                    \
    ::gesall::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

namespace internal {

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* cond);
  [[noreturn]] ~FatalMessage();
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace gesall

#endif  // GESALL_UTIL_LOGGING_H_

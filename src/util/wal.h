// Durable state substrate: a CRC-framed, fsync-batched write-ahead
// journal plus an atomic snapshot codec, composed into a JournaledStore
// that follows the HDFS namenode's fsimage/editlog protocol (the
// mechanism GESALL inherits for namenode survival — §2.1 of the paper
// assumes it; this reproduction had nothing under it until now).
//
// Journal framing, per record:
//
//   [u32 payload_len][u32 crc32c(payload)][payload bytes]
//
// Replay is torn-tail tolerant: it stops at the first short or
// CRC-mismatched frame and reports the valid prefix length, so a crash
// mid-append loses at most the record being written — never yields a
// partial record to the application. A writer opened on a torn journal
// truncates the tail first, keeping the "journal = valid frames only"
// invariant for subsequent appends.
//
// Snapshots are written atomically: CRC-framed payload to a temp file,
// fsync, then rename over the target. A crash at any point leaves either
// the old snapshot or the new one, never a hybrid.
//
// JournaledStore composes the two exactly like fsimage + edits_NNN:
// snapshot.img carries an epoch number E and the journal lives in
// journal-E.log. Checkpoint(state) writes snapshot(E+1), opens
// journal-(E+1).log, then deletes journal-E.log — crash-safe in every
// window because recovery prefers the snapshot's epoch and replays only
// that epoch's journal.

#ifndef GESALL_UTIL_WAL_H_
#define GESALL_UTIL_WAL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "util/status.h"

namespace gesall {

class FaultInjector;

/// \brief Knobs of the durability layer, validated like DfsOptions.
/// An empty root_dir disables durability entirely (the historical
/// in-memory behavior); every durable component embeds one of these.
struct DurabilityOptions {
  /// Filesystem directory holding journal, snapshots, and payloads.
  /// Empty = durability off.
  std::string root_dir;
  /// Checkpoint (snapshot + journal reset) after this many journal
  /// records since the last snapshot. 0 = never snapshot (journal grows
  /// without bound; replay cost is linear in total mutations).
  int snapshot_every_records = 1024;
  /// fsync the journal after every N appended records (1 = every record,
  /// the HDFS editlog default; larger batches trade the durability
  /// window for throughput).
  int fsync_every_records = 1;
  /// Additionally fsync once this many bytes are pending, regardless of
  /// record count. 0 = no byte-based trigger.
  int64_t fsync_every_bytes = 0;

  bool enabled() const { return !root_dir.empty(); }
};

/// \brief Range/consistency validation; call before constructing any
/// durable component. OK when disabled (root_dir empty).
Status ValidateDurabilityOptions(const DurabilityOptions& options);

/// \brief Outcome of replaying one journal file.
struct JournalReplayStats {
  /// Valid records applied.
  int64_t records = 0;
  /// Byte length of the valid prefix (where the next append would go).
  int64_t valid_bytes = 0;
  /// True when trailing bytes past the valid prefix were discarded (a
  /// torn append from a crash mid-write).
  bool torn_tail = false;
};

/// \brief Replays every valid record of `path` through `apply`, in
/// order. A missing file is an empty journal (0 records, OK). Stops
/// cleanly at the first torn or corrupt frame; an `apply` error aborts
/// the replay with that error.
Result<JournalReplayStats> ReplayJournal(
    const std::string& path,
    const std::function<Status(std::string_view payload)>& apply);

/// \brief Appends CRC-framed records to one journal file with batched
/// fsync. Not thread-safe; callers serialize (JournaledStore does).
class JournalWriter {
 public:
  /// Opens `path` for appending, truncating any torn tail left by a
  /// prior crash so new frames always follow valid ones. `injector`
  /// (optional, not owned) arms the fs.short_write / fs.sync_fail
  /// fault points.
  static Result<std::unique_ptr<JournalWriter>> Open(
      const std::string& path, const DurabilityOptions& options,
      FaultInjector* injector = nullptr);

  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Frames and appends one record, fsyncing when the batch thresholds
  /// are reached. Under an armed fs.short_write point the frame is cut
  /// short on disk (simulating a crash mid-write) and IOError returns.
  Status Append(std::string_view payload);

  /// Forces any pending bytes to disk (fsync). Under an armed
  /// fs.sync_fail point the sync is skipped and IOError returns.
  Status Sync();

  int64_t records_appended() const { return records_appended_; }
  const std::string& path() const { return path_; }

 private:
  JournalWriter(std::string path, const DurabilityOptions& options,
                FaultInjector* injector, std::FILE* file);

  std::string path_;
  DurabilityOptions options_;
  FaultInjector* injector_;
  std::FILE* file_;
  int64_t records_appended_ = 0;
  int pending_records_ = 0;
  int64_t pending_bytes_ = 0;
};

/// \brief Writes `payload` CRC-framed to `path` atomically (temp file +
/// fsync + rename). Surfaces IOError on any filesystem failure.
Status WriteSnapshotFile(const std::string& path, std::string_view payload,
                         FaultInjector* injector = nullptr);

/// \brief Plain durable write: `data` to `path` (replacing), fsync'd
/// before returning. Not framed and not atomic — used for bulk payloads
/// (DFS block files) whose existence is gated by a journal record.
Status WriteDurableFile(const std::string& path, std::string_view data);

/// \brief Reads and verifies a snapshot written by WriteSnapshotFile.
/// NotFound when the file does not exist; Corruption on CRC mismatch.
Result<std::string> ReadSnapshotFile(const std::string& path);

/// \brief fsimage/editlog-style durable store: one snapshot file plus an
/// epoch-numbered journal, with crash-safe checkpointing. Thread-safe.
class JournaledStore {
 public:
  /// `dir` is created on Recover. `injector` is optional, not owned.
  JournaledStore(std::string dir, DurabilityOptions options,
                 FaultInjector* injector = nullptr);
  ~JournaledStore();

  /// Loads the snapshot (if any) through `load_snapshot`, replays the
  /// current epoch's journal through `apply`, and opens the journal for
  /// appending. Must be called (successfully) before Append/Checkpoint.
  Status Recover(const std::function<Status(std::string_view)>& load_snapshot,
                 const std::function<Status(std::string_view)>& apply);

  /// Appends one journal record (fsync-batched per options).
  Status Append(std::string_view record);

  /// True once snapshot_every_records journal records accumulated since
  /// the last snapshot — the caller should serialize its state and call
  /// Checkpoint soon.
  bool ShouldCheckpoint() const;

  /// Writes `snapshot_payload` as the new snapshot (epoch+1), switches
  /// to a fresh journal for that epoch, and removes the old journal.
  Status Checkpoint(std::string_view snapshot_payload);

  /// Forces pending journal bytes to disk.
  Status Sync();

  /// True when the last Recover loaded a snapshot file.
  bool snapshot_loaded() const { return snapshot_loaded_; }
  /// Journal replay outcome of the last Recover.
  const JournalReplayStats& replay_stats() const { return replay_stats_; }
  int64_t epoch() const;
  int64_t records_since_snapshot() const;
  int64_t snapshots_written() const;
  const std::string& dir() const { return dir_; }

 private:
  std::string SnapshotPath() const;
  std::string JournalPath(int64_t epoch) const;

  const std::string dir_;
  const DurabilityOptions options_;
  FaultInjector* const injector_;

  mutable std::mutex mu_;
  bool recovered_ = false;
  int64_t epoch_ = 0;
  int64_t records_since_snapshot_ = 0;
  int64_t snapshots_written_ = 0;
  bool snapshot_loaded_ = false;
  JournalReplayStats replay_stats_;
  std::unique_ptr<JournalWriter> journal_;
};

}  // namespace gesall

#endif  // GESALL_UTIL_WAL_H_

// CRC32C (Castagnoli polynomial 0x1EDC6F41), the checksum HDFS stores
// per 512-byte (here: per-chunk) slice of every block and verifies on
// each read. Hardware-accelerated via the SSE4.2 crc32 instruction when
// the CPU supports it (runtime-dispatched, no build flags required),
// with a portable slice-by-8 table fallback producing identical values.

#ifndef GESALL_UTIL_CRC32C_H_
#define GESALL_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gesall {

/// \brief Extends a running CRC32C with `n` more bytes. Start from 0;
/// ExtendCrc32c(ExtendCrc32c(0, a), b) == Crc32c(a + b).
uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n);

/// \brief One-shot CRC32C of a byte range.
inline uint32_t Crc32c(std::string_view data) {
  return ExtendCrc32c(0, data.data(), data.size());
}

/// \brief Portable table implementation, bypassing the hardware
/// dispatch. Exposed so tests and benchmarks can pin the software path;
/// always returns the same value as ExtendCrc32c.
uint32_t ExtendCrc32cPortable(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32cPortable(std::string_view data) {
  return ExtendCrc32cPortable(0, data.data(), data.size());
}

/// \brief True when this process dispatches to the SSE4.2 instruction.
bool Crc32cHardwareAvailable();

}  // namespace gesall

#endif  // GESALL_UTIL_CRC32C_H_

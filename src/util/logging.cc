#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace gesall {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

void EmitLog(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
}

FatalMessage::FatalMessage(const char* file, int line, const char* cond) {
  stream_ << file << ":" << line << " check failed: " << cond << " ";
}

FatalMessage::~FatalMessage() {
  EmitLog(LogLevel::kError, stream_.str());
  std::abort();
}

}  // namespace internal
}  // namespace gesall

// BGZF-style blocked compression.
//
// BAM files are a series of independently-deflated blocks so that a reader
// can start decompressing at any block boundary — the property Gesall's
// storage substrate relies on to split BAM files into DFS blocks (paper
// §3.1). This implementation mirrors the real BGZF container: each block is
//
//   magic "GBZ1" | u32 compressed_size | u32 uncompressed_size | payload
//
// with payload deflated via zlib (raw deflate). Virtual offsets pack
// (block file offset << 16 | intra-block offset) exactly like samtools.

#ifndef GESALL_UTIL_BGZF_H_
#define GESALL_UTIL_BGZF_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace gesall {

/// Maximum uncompressed payload per BGZF block (64 KiB, as in samtools).
inline constexpr size_t kBgzfBlockSize = 64 * 1024;

/// Byte size of the per-block header (magic + two u32 sizes).
inline constexpr size_t kBgzfHeaderSize = 12;

/// \brief Compresses `data` into one BGZF block (must fit kBgzfBlockSize).
Result<std::string> BgzfCompressBlock(std::string_view data);

/// \brief Decompresses exactly one block starting at `data`.
/// On success sets `*consumed` to the block's total on-disk size.
Result<std::string> BgzfDecompressBlock(std::string_view data,
                                        size_t* consumed);

/// \brief Returns the total on-disk size of the block starting at `data`,
/// without decompressing. Fails if `data` is shorter than a header.
Result<size_t> BgzfPeekBlockSize(std::string_view data);

/// \brief Streaming writer that packs appended bytes into BGZF blocks.
class BgzfWriter {
 public:
  /// Appended bytes never straddle a block if `Flush()` is called between
  /// logical chunks; otherwise blocks are cut at kBgzfBlockSize.
  explicit BgzfWriter(std::string* out) : out_(out) {}

  /// Returns the virtual offset (coffset<<16 | uoffset) of the next byte.
  uint64_t Tell() const;

  Status Append(std::string_view data);

  /// Compresses and emits the pending partial block, if any.
  Status Flush();

 private:
  std::string* out_;
  std::string pending_;
};

/// \brief Reader over a concatenation of BGZF blocks.
///
/// Supports starting mid-file at a block boundary (as the DFS record
/// reader does) and reading across block boundaries.
class BgzfReader {
 public:
  explicit BgzfReader(std::string_view compressed) : data_(compressed) {}

  /// Positions the reader at a virtual offset.
  Status Seek(uint64_t virtual_offset);

  /// Current virtual offset.
  uint64_t Tell() const;

  bool AtEnd();

  /// Reads exactly n bytes (failing with OutOfRange at true EOF).
  Status Read(size_t n, std::string* out);

 private:
  Status EnsureBlock();

  std::string_view data_;
  size_t block_offset_ = 0;   // file offset of current block
  size_t next_offset_ = 0;    // file offset of next block
  std::string block_;         // decompressed current block
  size_t intra_ = 0;          // position within block_
  bool loaded_ = false;
};

/// \brief Splits a compressed stream into per-block (offset, size) spans.
/// Used by the storage layer to align DFS blocks with BGZF chunks.
Result<std::vector<std::pair<size_t, size_t>>> BgzfListBlocks(
    std::string_view compressed);

}  // namespace gesall

#endif  // GESALL_UTIL_BGZF_H_

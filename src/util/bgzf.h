// BGZF-style blocked compression.
//
// BAM files are a series of independently-deflated blocks so that a reader
// can start decompressing at any block boundary — the property Gesall's
// storage substrate relies on to split BAM files into DFS blocks (paper
// §3.1). This implementation mirrors the real BGZF container: each block is
//
//   magic "GBZ" | method | u32 compressed_size | u32 uncompressed_size | payload
//
// where method '1' deflates the payload via zlib and method '0' stores it
// verbatim — the incompressible-block fallback, chosen automatically when
// deflate would not shrink the payload (real BGZF burns cycles on such
// blocks; we skip them and keep decode a memcpy). Virtual offsets pack
// (block file offset << 16 | intra-block offset) exactly like samtools.
//
// The codec is the storage substrate for every compressed byte path:
// DFS intermediate parts (DfsOptions::compress_parts), shuffle spill runs
// (JobConfig::compress_shuffle), and the BAM container itself. All of
// them share the zlib-level knob and the per-writer BgzfCodecStats that
// feed the raw-vs-compressed disk-byte counters.

#ifndef GESALL_UTIL_BGZF_H_
#define GESALL_UTIL_BGZF_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace gesall {

/// Maximum uncompressed payload per BGZF block (64 KiB, as in samtools).
inline constexpr size_t kBgzfBlockSize = 64 * 1024;

/// Byte size of the per-block header (magic + method + two u32 sizes).
inline constexpr size_t kBgzfHeaderSize = 12;

/// Default zlib level (Z_DEFAULT_COMPRESSION). Valid levels are -1 and
/// 0..9; every entry point below rejects anything else.
inline constexpr int kBgzfDefaultLevel = -1;

/// \brief Header fields of one block, readable without decompressing.
struct BgzfBlockInfo {
  size_t block_size = 0;  // total on-disk size (header + payload)
  size_t raw_size = 0;    // uncompressed payload size
  bool stored = false;    // method '0': payload stored verbatim
};

/// \brief Cumulative codec accounting of one writer (or one range read).
struct BgzfCodecStats {
  int64_t raw_bytes = 0;       // payload bytes in
  int64_t stored_bytes = 0;    // on-disk bytes out, headers included
  int64_t blocks = 0;          // blocks emitted
  int64_t stored_blocks = 0;   // blocks that took the verbatim fallback
  int64_t compress_micros = 0; // cpu time spent in deflate
};

/// \brief Compresses `data` into one BGZF block (must fit kBgzfBlockSize).
/// Falls back to a stored (method '0') block when deflate does not shrink
/// the payload.
Result<std::string> BgzfCompressBlock(std::string_view data,
                                      int level = kBgzfDefaultLevel);

/// \brief Decompresses exactly one block starting at `data`.
/// On success sets `*consumed` to the block's total on-disk size.
Result<std::string> BgzfDecompressBlock(std::string_view data,
                                        size_t* consumed);

/// \brief Scratch-reuse decode: decompresses the block starting at `data`
/// into `*out` (replacing its contents, keeping its capacity).
/// `file_offset` is the block's position in the enclosing stream, used
/// only for error context; zlib failures surface as Corruption naming it.
Status BgzfDecompressBlockInto(std::string_view data, size_t file_offset,
                               std::string* out, size_t* consumed);

/// \brief Returns the total on-disk size of the block starting at `data`,
/// without decompressing. Fails if `data` is shorter than a header.
Result<size_t> BgzfPeekBlockSize(std::string_view data);

/// \brief Reads all header fields of the block starting at `data` without
/// decompressing — the skip primitive of lazy range reads.
Result<BgzfBlockInfo> BgzfPeekBlock(std::string_view data);

/// \brief Lazy range decode over a concatenation of BGZF blocks:
/// appends uncompressed bytes [offset, offset+length) to `*out`,
/// decompressing only the blocks that cover the range (blocks before it
/// are skipped by header walk, blocks after it are never touched).
/// `decompress_micros`, when non-null, accumulates inflate cpu time.
Status BgzfReadRange(std::string_view compressed, size_t offset,
                     size_t length, std::string* out,
                     int64_t* decompress_micros = nullptr);

/// \brief Streaming writer that packs appended bytes into BGZF blocks.
class BgzfWriter {
 public:
  /// Appended bytes never straddle a block if `Flush()` is called between
  /// logical chunks; otherwise blocks are cut at kBgzfBlockSize.
  /// `level` is the zlib level (kBgzfDefaultLevel = zlib's default).
  explicit BgzfWriter(std::string* out, int level = kBgzfDefaultLevel)
      : out_(out), level_(level) {}

  /// Returns the virtual offset (coffset<<16 | uoffset) of the next byte.
  uint64_t Tell() const;

  /// Appending nothing is a no-op (no empty block is ever emitted).
  Status Append(std::string_view data);

  /// Compresses and emits the pending partial block, if any. Idempotent:
  /// a second Flush with nothing pending emits nothing.
  Status Flush();

  /// Cumulative raw/stored byte and deflate-time accounting.
  const BgzfCodecStats& stats() const { return stats_; }

 private:
  std::string* out_;
  int level_;
  std::string pending_;
  BgzfCodecStats stats_;
};

/// \brief Reader over a concatenation of BGZF blocks.
///
/// Supports starting mid-file at a block boundary (as the DFS record
/// reader does) and reading across block boundaries.
class BgzfReader {
 public:
  explicit BgzfReader(std::string_view compressed) : data_(compressed) {}

  /// Positions the reader at a virtual offset.
  Status Seek(uint64_t virtual_offset);

  /// Current virtual offset.
  uint64_t Tell() const;

  bool AtEnd();

  /// Reads exactly n bytes (failing with OutOfRange at true EOF).
  Status Read(size_t n, std::string* out);

 private:
  Status EnsureBlock();

  std::string_view data_;
  size_t block_offset_ = 0;   // file offset of current block
  size_t next_offset_ = 0;    // file offset of next block
  std::string block_;         // decompressed current block
  size_t intra_ = 0;          // position within block_
  bool loaded_ = false;
};

/// \brief Splits a compressed stream into per-block (offset, size) spans.
/// Used by the storage layer to align DFS blocks with BGZF chunks.
Result<std::vector<std::pair<size_t, size_t>>> BgzfListBlocks(
    std::string_view compressed);

}  // namespace gesall

#endif  // GESALL_UTIL_BGZF_H_

// Wall-clock stopwatch for harness-side measurements.

#ifndef GESALL_UTIL_STOPWATCH_H_
#define GESALL_UTIL_STOPWATCH_H_

#include <chrono>

namespace gesall {

/// \brief Measures elapsed wall time in seconds.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gesall

#endif  // GESALL_UTIL_STOPWATCH_H_

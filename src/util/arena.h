// Append-only byte arena with stable addresses.
//
// The shuffle data path copies every emitted key/value into an arena
// exactly once and then refers to the bytes through std::string_view for
// the rest of the round (sort, spill, merge, reduce) — one heap
// allocation per arena block instead of one per record. Blocks are never
// reallocated, so views handed out by Append stay valid until Clear()
// or destruction, including across moves of the Arena itself.

#ifndef GESALL_UTIL_ARENA_H_
#define GESALL_UTIL_ARENA_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace gesall {

class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 1 << 20;

  /// One stored byte range: a block's used prefix. Appends never span
  /// blocks, so the extent list tiles exactly the stored payload.
  struct Extent {
    const char* data;
    size_t size;
  };

  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Copies `bytes` into the arena and returns a stable view of the copy.
  std::string_view Append(std::string_view bytes) {
    if (bytes.empty()) return std::string_view();
    if (bytes.size() > remaining_) {
      // Oversized payloads get a dedicated block so the partially-filled
      // current block keeps accepting small appends.
      if (bytes.size() >= block_bytes_ / 2) {
        char* block = NewBlock(bytes.size());
        used_.back() = bytes.size();
        std::memcpy(block, bytes.data(), bytes.size());
        bytes_used_ += bytes.size();
        return std::string_view(block, bytes.size());
      }
      SealOpenBlock();
      head_ = NewBlock(block_bytes_);
      open_block_ = blocks_.size() - 1;
      remaining_ = block_bytes_;
    }
    char* dst = head_;
    std::memcpy(dst, bytes.data(), bytes.size());
    head_ += bytes.size();
    remaining_ -= bytes.size();
    bytes_used_ += bytes.size();
    return std::string_view(dst, bytes.size());
  }

  /// Payload bytes stored (not block capacity).
  int64_t bytes_used() const { return bytes_used_; }

  /// Heap allocations performed so far (one per block).
  int64_t block_allocations() const {
    return static_cast<int64_t>(blocks_.size());
  }

  /// The stored byte ranges, in block-creation order. Views returned by
  /// Append alias these ranges; together the extents cover every stored
  /// payload byte exactly once (a block's unused tail is excluded).
  std::vector<Extent> extents() const {
    std::vector<Extent> out;
    out.reserve(blocks_.size());
    for (size_t i = 0; i < blocks_.size(); ++i) {
      size_t used = i == open_block_
                        ? static_cast<size_t>(head_ - blocks_[i].get())
                        : used_[i];
      if (used > 0) out.push_back({blocks_[i].get(), used});
    }
    return out;
  }

  /// Releases every block. Invalidates all previously returned views.
  void Clear() {
    blocks_.clear();
    used_.clear();
    open_block_ = SIZE_MAX;
    head_ = nullptr;
    remaining_ = 0;
    bytes_used_ = 0;
  }

 private:
  char* NewBlock(size_t size) {
    blocks_.push_back(std::make_unique<char[]>(size));
    used_.push_back(0);
    return blocks_.back().get();
  }

  void SealOpenBlock() {
    if (open_block_ != SIZE_MAX) {
      used_[open_block_] =
          static_cast<size_t>(head_ - blocks_[open_block_].get());
    }
  }

  size_t block_bytes_;
  char* head_ = nullptr;
  size_t remaining_ = 0;
  size_t open_block_ = SIZE_MAX;
  int64_t bytes_used_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::vector<size_t> used_;  // used bytes per block; open block tracked
                              // via head_ until the next block opens
};

}  // namespace gesall

#endif  // GESALL_UTIL_ARENA_H_

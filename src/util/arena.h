// Append-only byte arena with stable addresses.
//
// The shuffle data path copies every emitted key/value into an arena
// exactly once and then refers to the bytes through std::string_view for
// the rest of the round (sort, spill, merge, reduce) — one heap
// allocation per arena block instead of one per record. Blocks are never
// reallocated, so views handed out by Append stay valid until Clear()
// or destruction, including across moves of the Arena itself.

#ifndef GESALL_UTIL_ARENA_H_
#define GESALL_UTIL_ARENA_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace gesall {

class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 1 << 20;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Copies `bytes` into the arena and returns a stable view of the copy.
  std::string_view Append(std::string_view bytes) {
    if (bytes.empty()) return std::string_view();
    if (bytes.size() > remaining_) {
      // Oversized payloads get a dedicated block so the partially-filled
      // current block keeps accepting small appends.
      if (bytes.size() >= block_bytes_ / 2) {
        char* block = NewBlock(bytes.size());
        std::memcpy(block, bytes.data(), bytes.size());
        bytes_used_ += bytes.size();
        return std::string_view(block, bytes.size());
      }
      head_ = NewBlock(block_bytes_);
      remaining_ = block_bytes_;
    }
    char* dst = head_;
    std::memcpy(dst, bytes.data(), bytes.size());
    head_ += bytes.size();
    remaining_ -= bytes.size();
    bytes_used_ += bytes.size();
    return std::string_view(dst, bytes.size());
  }

  /// Payload bytes stored (not block capacity).
  int64_t bytes_used() const { return bytes_used_; }

  /// Heap allocations performed so far (one per block).
  int64_t block_allocations() const {
    return static_cast<int64_t>(blocks_.size());
  }

  /// Releases every block. Invalidates all previously returned views.
  void Clear() {
    blocks_.clear();
    head_ = nullptr;
    remaining_ = 0;
    bytes_used_ = 0;
  }

 private:
  char* NewBlock(size_t size) {
    blocks_.push_back(std::make_unique<char[]>(size));
    return blocks_.back().get();
  }

  size_t block_bytes_;
  char* head_ = nullptr;
  size_t remaining_ = 0;
  int64_t bytes_used_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
};

}  // namespace gesall

#endif  // GESALL_UTIL_ARENA_H_

#include "util/fault_injection.h"

#include "util/rng.h"

namespace gesall {

Status FaultInjector::ArmProbability(const std::string& point, double p) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("fault probability must be in [0, 1]");
  }
  std::lock_guard<std::mutex> lock(mu_);
  points_[point].fail_probability = p;
  return Status::OK();
}

Status FaultInjector::ArmFirstAttempts(const std::string& point, int n) {
  if (n < 0) {
    return Status::InvalidArgument("attempt count must be non-negative");
  }
  std::lock_guard<std::mutex> lock(mu_);
  points_[point].fail_first_attempts = n;
  return Status::OK();
}

void FaultInjector::ArmSchedule(const std::string& point, int64_t key,
                                std::vector<int> attempts) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& scheduled = points_[point].schedule[key];
  scheduled.insert(attempts.begin(), attempts.end());
}

Status FaultInjector::ArmLatency(const std::string& point, double p,
                                 int millis, int only_attempts_below) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("latency probability must be in [0, 1]");
  }
  if (millis < 0) {
    return Status::InvalidArgument("latency must be non-negative");
  }
  std::lock_guard<std::mutex> lock(mu_);
  PointConfig& cfg = points_[point];
  cfg.latency_probability = p;
  cfg.latency_ms = millis;
  cfg.latency_only_attempts_below = only_attempts_below;
  return Status::OK();
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.erase(point);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
}

double FaultInjector::Draw(const std::string& point, int64_t key,
                           int attempt, uint64_t salt) const {
  uint64_t h = MixSeeds(seed_, Fnv1a64(point));
  h = MixSeeds(h, static_cast<uint64_t>(key));
  h = MixSeeds(h, MixSeeds(static_cast<uint64_t>(attempt), salt));
  return (h >> 11) * 0x1.0p-53;
}

bool FaultInjector::ShouldFail(const std::string& point, int64_t key,
                               int attempt) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return false;
  PointConfig& cfg = it->second;
  bool fail = attempt < cfg.fail_first_attempts;
  if (!fail) {
    auto sched = cfg.schedule.find(key);
    fail = sched != cfg.schedule.end() && sched->second.count(attempt) > 0;
  }
  if (!fail && cfg.fail_probability > 0.0) {
    fail = Draw(point, key, attempt, /*salt=*/0x0fau) <
           cfg.fail_probability;
  }
  if (fail) ++cfg.fires;
  return fail;
}

Status FaultInjector::MaybeFail(const std::string& point, int64_t key,
                                int attempt) {
  if (ShouldFail(point, key, attempt)) {
    return Status::IOError("injected fault at " + point + " (key " +
                           std::to_string(key) + ", attempt " +
                           std::to_string(attempt) + ")");
  }
  return Status::OK();
}

int FaultInjector::LatencyMs(const std::string& point, int64_t key,
                             int attempt) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return 0;
  PointConfig& cfg = it->second;
  if (cfg.latency_ms <= 0 || cfg.latency_probability <= 0.0 ||
      attempt >= cfg.latency_only_attempts_below) {
    return 0;
  }
  if (Draw(point, key, attempt, /*salt=*/0x1a7u) >=
      cfg.latency_probability) {
    return 0;
  }
  ++cfg.latency_fires;
  return cfg.latency_ms;
}

int64_t FaultInjector::fires(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

int64_t FaultInjector::latency_fires(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.latency_fires;
}

}  // namespace gesall

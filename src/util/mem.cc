#include "util/mem.h"

#include <atomic>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace gesall {

namespace {
std::atomic<int64_t> g_live_bytes{0};
std::atomic<int64_t> g_peak_bytes{0};
std::atomic<bool> g_tracking_active{false};
}  // namespace

int64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<int64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<int64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

int64_t CurrentRssBytes() {
#if defined(__linux__)
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long total = 0, resident = 0;
  int n = std::fscanf(f, "%lld %lld", &total, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  return static_cast<int64_t>(resident) *
         static_cast<int64_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

namespace memhooks {

void RecordAlloc(size_t bytes) {
  g_tracking_active.store(true, std::memory_order_relaxed);
  int64_t live = g_live_bytes.fetch_add(static_cast<int64_t>(bytes),
                                        std::memory_order_relaxed) +
                 static_cast<int64_t>(bytes);
  int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak_bytes.compare_exchange_weak(peak, live,
                                             std::memory_order_relaxed)) {
  }
}

void RecordFree(size_t bytes) {
  g_live_bytes.fetch_sub(static_cast<int64_t>(bytes),
                         std::memory_order_relaxed);
}

}  // namespace memhooks

int64_t LiveAllocBytes() {
  return g_live_bytes.load(std::memory_order_relaxed);
}

int64_t PeakAllocBytes() {
  return g_peak_bytes.load(std::memory_order_relaxed);
}

void ResetPeakAllocBytes() {
  g_peak_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

bool AllocTrackingActive() {
  return g_tracking_active.load(std::memory_order_relaxed);
}

MemorySample SampleMemory() {
  MemorySample s;
  s.peak_rss_bytes = PeakRssBytes();
  s.current_rss_bytes = CurrentRssBytes();
  s.live_alloc_bytes = LiveAllocBytes();
  s.peak_alloc_bytes = PeakAllocBytes();
  return s;
}

}  // namespace gesall

// Opt-in global operator new/delete overrides feeding the util/mem
// allocation high-water mark. Add this FILE to a binary's own source
// list to activate tracking there — never to a library target: several
// bench binaries define their own global operator new, and linking two
// definitions into one executable is an ODR violation.
//
// Accounting invariant: whatever size a block records at allocation it
// records again at free, so LiveAllocBytes is exact and PeakAllocBytes
// meaningful. With malloc_usable_size that size is the usable block
// size read from the allocator; without it, every block carries a
// small header storing the size (unsized deletes would otherwise free
// 0 bytes and the live counter would drift upward forever).
// Over-aligned (align_val_t) allocations always use a headered shim so
// they are tracked too.

#include <cstdint>
#include <cstdlib>
#include <new>

#include "util/mem.h"

#if defined(__GLIBC__) || __has_include(<malloc.h>)
#include <malloc.h>
#define GESALL_MEM_USABLE_SIZE 1
#endif

namespace {

// malloc that honors the std::new_handler protocol required of a
// conforming operator-new replacement: on failure, invoke the handler
// (which may free memory) and retry; only throw once no handler is set.
void* MallocOrHandler(size_t size) {
  for (;;) {
    void* p = std::malloc(size);
    if (p != nullptr) return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

#if defined(GESALL_MEM_USABLE_SIZE)

void* TrackedAlloc(size_t size) {
  void* p = MallocOrHandler(size);
  gesall::memhooks::RecordAlloc(malloc_usable_size(p));
  return p;
}

void TrackedFree(void* p) noexcept {
  if (p == nullptr) return;
  gesall::memhooks::RecordFree(malloc_usable_size(p));
  std::free(p);
}

#else  // no malloc_usable_size: prefix every block with its size

struct alignas(alignof(std::max_align_t)) SizeHeader {
  size_t size;
};

void* TrackedAlloc(size_t size) {
  auto* h = static_cast<SizeHeader*>(MallocOrHandler(sizeof(SizeHeader) + size));
  h->size = size;
  gesall::memhooks::RecordAlloc(size);
  return h + 1;
}

void TrackedFree(void* p) noexcept {
  if (p == nullptr) return;
  SizeHeader* h = static_cast<SizeHeader*>(p) - 1;
  gesall::memhooks::RecordFree(h->size);
  std::free(h);
}

#endif  // GESALL_MEM_USABLE_SIZE

// Over-aligned allocations: malloc a padded block and place the user
// pointer at the requested alignment, with {raw, size} stored directly
// below it so free can recover both without malloc_usable_size.
struct AlignedHeader {
  void* raw;
  size_t size;
};

void* TrackedAllocAligned(size_t size, size_t align) {
  if (align < alignof(std::max_align_t)) align = alignof(std::max_align_t);
  void* raw = MallocOrHandler(sizeof(AlignedHeader) + align + size);
  uintptr_t user =
      (reinterpret_cast<uintptr_t>(raw) + sizeof(AlignedHeader) + align - 1) &
      ~(static_cast<uintptr_t>(align) - 1);
  auto* h = reinterpret_cast<AlignedHeader*>(user) - 1;
  h->raw = raw;
  h->size = size;
  gesall::memhooks::RecordAlloc(size);
  return reinterpret_cast<void*>(user);
}

void TrackedFreeAligned(void* p) noexcept {
  if (p == nullptr) return;
  AlignedHeader* h = static_cast<AlignedHeader*>(p) - 1;
  gesall::memhooks::RecordFree(h->size);
  std::free(h->raw);
}

}  // namespace

void* operator new(size_t size) { return TrackedAlloc(size); }
void* operator new[](size_t size) { return TrackedAlloc(size); }
void operator delete(void* p) noexcept { TrackedFree(p); }
void operator delete[](void* p) noexcept { TrackedFree(p); }
void operator delete(void* p, size_t) noexcept { TrackedFree(p); }
void operator delete[](void* p, size_t) noexcept { TrackedFree(p); }

void* operator new(size_t size, std::align_val_t align) {
  return TrackedAllocAligned(size, static_cast<size_t>(align));
}
void* operator new[](size_t size, std::align_val_t align) {
  return TrackedAllocAligned(size, static_cast<size_t>(align));
}
void operator delete(void* p, std::align_val_t) noexcept {
  TrackedFreeAligned(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  TrackedFreeAligned(p);
}
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  TrackedFreeAligned(p);
}
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  TrackedFreeAligned(p);
}

// Opt-in global operator new/delete overrides feeding the util/mem
// allocation high-water mark. Add this FILE to a binary's own source
// list to activate tracking there — never to a library target: several
// bench binaries define their own global operator new, and linking two
// definitions into one executable is an ODR violation.

#include <cstdlib>
#include <new>

#include "util/mem.h"

#if defined(__GLIBC__) || __has_include(<malloc.h>)
#include <malloc.h>
#define GESALL_MEM_USABLE_SIZE 1
#endif

namespace {

inline size_t BlockSize(void* p, size_t requested) {
#if defined(GESALL_MEM_USABLE_SIZE)
  (void)requested;
  return malloc_usable_size(p);
#else
  (void)p;
  return requested;
#endif
}

void* TrackedAlloc(size_t size) {
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  gesall::memhooks::RecordAlloc(BlockSize(p, size));
  return p;
}

void TrackedFree(void* p, size_t requested) noexcept {
  if (p == nullptr) return;
  gesall::memhooks::RecordFree(BlockSize(p, requested));
  std::free(p);
}

}  // namespace

void* operator new(size_t size) { return TrackedAlloc(size); }
void* operator new[](size_t size) { return TrackedAlloc(size); }
void operator delete(void* p) noexcept { TrackedFree(p, 0); }
void operator delete[](void* p) noexcept { TrackedFree(p, 0); }
void operator delete(void* p, size_t size) noexcept { TrackedFree(p, size); }
void operator delete[](void* p, size_t size) noexcept {
  TrackedFree(p, size);
}

// Runtime CPU feature detection, shared by every kernel that dispatches
// between a portable implementation and a vectorized one (util/crc32c,
// align/smith_waterman). Detection runs once per process; no build flags
// are required, so a single binary adapts to the host it lands on — the
// property that lets heterogeneous cluster nodes run one artifact.

#ifndef GESALL_UTIL_CPU_H_
#define GESALL_UTIL_CPU_H_

namespace gesall {

/// \brief True when the host CPU executes SSE4.1 (pmaxsw/pblendvb era
/// vector ops used by the banded alignment kernel).
bool CpuHasSse41();

/// \brief True when the host CPU executes SSE4.2 (crc32 instruction).
bool CpuHasSse42();

/// \brief True when the host CPU executes AVX2 (256-bit integer lanes).
bool CpuHasAvx2();

}  // namespace gesall

#endif  // GESALL_UTIL_CPU_H_

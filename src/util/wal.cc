#include "util/wal.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "util/crc32c.h"
#include "util/fault_injection.h"
#include "util/io.h"

namespace gesall {

namespace fs = std::filesystem;

namespace {

constexpr size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc

Status IOErrorFromErrno(const std::string& op, const std::string& path) {
  return Status::IOError(op + " failed for '" + path +
                         "': " + std::strerror(errno));
}

// fflush + fsync of a stdio stream; every durable write funnels through
// here so the fs.sync_fail point covers them all.
Status FlushAndSync(std::FILE* f, const std::string& path) {
  if (std::fflush(f) != 0) return IOErrorFromErrno("fflush", path);
  if (::fsync(fileno(f)) != 0) return IOErrorFromErrno("fsync", path);
  return Status::OK();
}

std::string FrameRecord(std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  BufferWriter w(&frame);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(Crc32c(payload));
  w.PutBytes(payload);
  return frame;
}

}  // namespace

Status ValidateDurabilityOptions(const DurabilityOptions& options) {
  if (!options.enabled()) return Status::OK();
  if (options.snapshot_every_records < 0) {
    return Status::InvalidArgument(
        "DurabilityOptions: snapshot_every_records must be >= 0 (0 = never)");
  }
  if (options.fsync_every_records < 1) {
    return Status::InvalidArgument(
        "DurabilityOptions: fsync_every_records must be >= 1");
  }
  if (options.fsync_every_bytes < 0) {
    return Status::InvalidArgument(
        "DurabilityOptions: fsync_every_bytes must be >= 0 (0 = off)");
  }
  return Status::OK();
}

Result<JournalReplayStats> ReplayJournal(
    const std::string& path,
    const std::function<Status(std::string_view payload)>& apply) {
  JournalReplayStats stats;
  std::error_code ec;
  if (!fs::exists(path, ec)) return stats;  // missing journal = empty
  GESALL_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  BufferReader r(data);
  while (r.remaining() >= kFrameHeaderBytes) {
    uint32_t len = 0;
    uint32_t crc = 0;
    GESALL_RETURN_NOT_OK(r.GetU32(&len));
    GESALL_RETURN_NOT_OK(r.GetU32(&crc));
    if (len > r.remaining()) break;  // torn: frame extends past the file
    std::string_view payload;
    GESALL_RETURN_NOT_OK(r.GetBytes(len, &payload));
    if (Crc32c(payload) != crc) break;  // torn or bit-rotted tail
    GESALL_RETURN_NOT_OK(apply(payload));
    ++stats.records;
    stats.valid_bytes = static_cast<int64_t>(r.position());
  }
  stats.torn_tail = stats.valid_bytes < static_cast<int64_t>(data.size());
  return stats;
}

JournalWriter::JournalWriter(std::string path,
                             const DurabilityOptions& options,
                             FaultInjector* injector, std::FILE* file)
    : path_(std::move(path)),
      options_(options),
      injector_(injector),
      file_(file) {}

JournalWriter::~JournalWriter() {
  if (file_ != nullptr) {
    if (pending_records_ > 0) (void)FlushAndSync(file_, path_);
    std::fclose(file_);
  }
}

Result<std::unique_ptr<JournalWriter>> JournalWriter::Open(
    const std::string& path, const DurabilityOptions& options,
    FaultInjector* injector) {
  // Truncate any torn tail left by a prior crash, so appended frames
  // always follow valid ones and replay sees one contiguous valid run.
  GESALL_ASSIGN_OR_RETURN(
      JournalReplayStats scan,
      ReplayJournal(path, [](std::string_view) { return Status::OK(); }));
  std::error_code ec;
  if (scan.torn_tail) {
    fs::resize_file(path, static_cast<uint64_t>(scan.valid_bytes), ec);
    if (ec) {
      return Status::IOError("truncating torn journal tail of '" + path +
                             "': " + ec.message());
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return IOErrorFromErrno("open", path);
  return std::unique_ptr<JournalWriter>(
      new JournalWriter(path, options, injector, f));
}

Status JournalWriter::Append(std::string_view payload) {
  std::string frame = FrameRecord(payload);
  if (injector_ != nullptr &&
      injector_->ShouldFail(kFaultFsShortWrite, records_appended_,
                            /*attempt=*/0)) {
    // Simulated crash mid-write: only a prefix of the frame reaches the
    // file (header plus half the payload), then the write "fails". The
    // file now ends in a torn frame; replay must stop before it.
    size_t cut = kFrameHeaderBytes + payload.size() / 2;
    std::fwrite(frame.data(), 1, cut, file_);
    std::fflush(file_);
    return Status::IOError("injected fault at " +
                           std::string(kFaultFsShortWrite) + " for '" + path_ +
                           "' (frame cut to " + std::to_string(cut) +
                           " bytes)");
  }
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return IOErrorFromErrno("write", path_);
  }
  ++records_appended_;
  ++pending_records_;
  pending_bytes_ += static_cast<int64_t>(frame.size());
  if (pending_records_ >= options_.fsync_every_records ||
      (options_.fsync_every_bytes > 0 &&
       pending_bytes_ >= options_.fsync_every_bytes)) {
    return Sync();
  }
  return Status::OK();
}

Status JournalWriter::Sync() {
  if (pending_records_ == 0 && pending_bytes_ == 0) return Status::OK();
  if (injector_ != nullptr &&
      injector_->ShouldFail(kFaultFsSyncFail, records_appended_,
                            /*attempt=*/0)) {
    return Status::IOError("injected fault at " +
                           std::string(kFaultFsSyncFail) + " for '" + path_ +
                           "'");
  }
  GESALL_RETURN_NOT_OK(FlushAndSync(file_, path_));
  pending_records_ = 0;
  pending_bytes_ = 0;
  return Status::OK();
}

Status WriteDurableFile(const std::string& path, std::string_view data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return IOErrorFromErrno("open", path);
  if (!data.empty() &&
      std::fwrite(data.data(), 1, data.size(), f) != data.size()) {
    Status s = IOErrorFromErrno("write", path);
    std::fclose(f);
    return s;
  }
  Status synced = FlushAndSync(f, path);
  std::fclose(f);
  return synced;
}

Status WriteSnapshotFile(const std::string& path, std::string_view payload,
                         FaultInjector* injector) {
  const std::string tmp = path + ".tmp";
  std::string frame = FrameRecord(payload);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return IOErrorFromErrno("open", tmp);
  if (std::fwrite(frame.data(), 1, frame.size(), f) != frame.size()) {
    Status s = IOErrorFromErrno("write", tmp);
    std::fclose(f);
    return s;
  }
  if (injector != nullptr &&
      injector->ShouldFail(kFaultFsSyncFail,
                           /*key=*/static_cast<int64_t>(payload.size()),
                           /*attempt=*/0)) {
    std::fclose(f);
    return Status::IOError("injected fault at " +
                           std::string(kFaultFsSyncFail) + " for '" + tmp +
                           "'");
  }
  Status synced = FlushAndSync(f, tmp);
  std::fclose(f);
  GESALL_RETURN_NOT_OK(synced);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("renaming snapshot '" + tmp + "' -> '" + path +
                           "': " + ec.message());
  }
  return Status::OK();
}

Result<std::string> ReadSnapshotFile(const std::string& path) {
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    return Status::NotFound("no snapshot at '" + path + "'");
  }
  GESALL_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  BufferReader r(data);
  uint32_t len = 0;
  uint32_t crc = 0;
  if (!r.GetU32(&len).ok() || !r.GetU32(&crc).ok() || len != r.remaining()) {
    return Status::Corruption("snapshot '" + path + "' is malformed");
  }
  std::string_view payload;
  GESALL_RETURN_NOT_OK(r.GetBytes(len, &payload));
  if (Crc32c(payload) != crc) {
    return Status::Corruption("snapshot '" + path + "' fails its checksum");
  }
  return std::string(payload);
}

JournaledStore::JournaledStore(std::string dir, DurabilityOptions options,
                               FaultInjector* injector)
    : dir_(std::move(dir)), options_(std::move(options)), injector_(injector) {}

JournaledStore::~JournaledStore() = default;

std::string JournaledStore::SnapshotPath() const {
  return dir_ + "/snapshot.img";
}

std::string JournaledStore::JournalPath(int64_t epoch) const {
  return dir_ + "/journal-" + std::to_string(epoch) + ".log";
}

Status JournaledStore::Recover(
    const std::function<Status(std::string_view)>& load_snapshot,
    const std::function<Status(std::string_view)>& apply) {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::IOError("creating store directory '" + dir_ +
                           "': " + ec.message());
  }
  epoch_ = 0;
  snapshot_loaded_ = false;
  Result<std::string> snap = ReadSnapshotFile(SnapshotPath());
  if (snap.ok()) {
    BufferReader r(snap.ValueOrDie());
    int64_t epoch = 0;
    std::string state;
    if (!r.GetI64(&epoch).ok() || !r.GetString(&state).ok() || !r.AtEnd()) {
      return Status::Corruption("snapshot in '" + dir_ +
                                "' has a malformed envelope");
    }
    GESALL_RETURN_NOT_OK(load_snapshot(state));
    epoch_ = epoch;
    snapshot_loaded_ = true;
  } else if (!snap.status().IsNotFound()) {
    return snap.status();
  }
  GESALL_ASSIGN_OR_RETURN(replay_stats_,
                          ReplayJournal(JournalPath(epoch_), apply));
  GESALL_ASSIGN_OR_RETURN(
      journal_, JournalWriter::Open(JournalPath(epoch_), options_, injector_));
  records_since_snapshot_ = replay_stats_.records;
  // A crash between "snapshot(E+1) written" and "journal-E deleted"
  // leaves a stale journal from the prior epoch; sweep it now.
  const std::string current = JournalPath(epoch_);
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string p = entry.path().string();
    const std::string name = entry.path().filename().string();
    if (name.rfind("journal-", 0) == 0 && p != current) {
      fs::remove(entry.path(), ec);
    }
  }
  recovered_ = true;
  return Status::OK();
}

Status JournaledStore::Append(std::string_view record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!recovered_) {
    return Status::Internal("JournaledStore: Append before Recover");
  }
  GESALL_RETURN_NOT_OK(journal_->Append(record));
  ++records_since_snapshot_;
  return Status::OK();
}

bool JournaledStore::ShouldCheckpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recovered_ && options_.snapshot_every_records > 0 &&
         records_since_snapshot_ >= options_.snapshot_every_records;
}

Status JournaledStore::Checkpoint(std::string_view snapshot_payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!recovered_) {
    return Status::Internal("JournaledStore: Checkpoint before Recover");
  }
  const int64_t new_epoch = epoch_ + 1;
  std::string envelope;
  BufferWriter w(&envelope);
  w.PutI64(new_epoch);
  w.PutString(snapshot_payload);
  // Order matters: the snapshot lands (atomically, carrying the new
  // epoch) before the journal switches. A crash before the rename keeps
  // the old snapshot + old journal; after it, recovery replays the new
  // epoch's (possibly absent = empty) journal.
  GESALL_RETURN_NOT_OK(WriteSnapshotFile(SnapshotPath(), envelope, injector_));
  GESALL_ASSIGN_OR_RETURN(
      std::unique_ptr<JournalWriter> fresh,
      JournalWriter::Open(JournalPath(new_epoch), options_, injector_));
  const std::string old_journal = JournalPath(epoch_);
  journal_ = std::move(fresh);
  epoch_ = new_epoch;
  records_since_snapshot_ = 0;
  ++snapshots_written_;
  std::error_code ec;
  fs::remove(old_journal, ec);  // best-effort; recovery sweeps stragglers
  return Status::OK();
}

Status JournaledStore::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!recovered_) return Status::OK();
  return journal_->Sync();
}

int64_t JournaledStore::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

int64_t JournaledStore::records_since_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_since_snapshot_;
}

int64_t JournaledStore::snapshots_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_written_;
}

}  // namespace gesall

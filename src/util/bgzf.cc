#include "util/bgzf.h"

#include <zlib.h>

#include <chrono>
#include <cstring>

#include "util/io.h"

namespace gesall {

namespace {

// First three magic bytes; the fourth is the method byte.
constexpr char kMagic[3] = {'G', 'B', 'Z'};
constexpr char kMethodDeflate = '1';
constexpr char kMethodStored = '0';

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status CheckLevel(int level) {
  if (level < -1 || level > 9) {
    return Status::InvalidArgument("BGZF compression level must be -1..9, got " +
                                   std::to_string(level));
  }
  return Status::OK();
}

// Validates magic + method of the block header at `data` (which must be
// at least kBgzfHeaderSize long — callers check length first so truncated
// headers get their own message).
Status CheckMagic(std::string_view data, size_t file_offset) {
  if (data.size() < kBgzfHeaderSize) {
    return Status::Corruption("truncated BGZF block header at offset " +
                              std::to_string(file_offset) + ": " +
                              std::to_string(data.size()) + " of " +
                              std::to_string(kBgzfHeaderSize) + " bytes");
  }
  if (std::memcmp(data.data(), kMagic, 3) != 0 ||
      (data[3] != kMethodDeflate && data[3] != kMethodStored)) {
    return Status::Corruption("bad BGZF magic at offset " +
                              std::to_string(file_offset));
  }
  return Status::OK();
}

Result<BgzfBlockInfo> PeekBlockAt(std::string_view data, size_t file_offset) {
  GESALL_RETURN_NOT_OK(CheckMagic(data, file_offset));
  BufferReader r(data.substr(4));
  uint32_t csize = 0, usize = 0;
  GESALL_RETURN_NOT_OK(r.GetU32(&csize));
  GESALL_RETURN_NOT_OK(r.GetU32(&usize));
  BgzfBlockInfo info;
  info.block_size = kBgzfHeaderSize + static_cast<size_t>(csize);
  info.raw_size = static_cast<size_t>(usize);
  info.stored = data[3] == kMethodStored;
  if (info.raw_size > kBgzfBlockSize) {
    return Status::Corruption(
        "BGZF block at offset " + std::to_string(file_offset) +
        " declares uncompressed size " + std::to_string(usize) +
        " > block limit " + std::to_string(kBgzfBlockSize));
  }
  if (info.stored && csize != usize) {
    return Status::Corruption(
        "stored BGZF block at offset " + std::to_string(file_offset) +
        " has mismatched sizes (" + std::to_string(csize) + " vs " +
        std::to_string(usize) + ")");
  }
  return info;
}

}  // namespace

Result<std::string> BgzfCompressBlock(std::string_view data, int level) {
  GESALL_RETURN_NOT_OK(CheckLevel(level));
  if (data.size() > kBgzfBlockSize) {
    return Status::InvalidArgument("BGZF block payload too large");
  }
  uLongf bound = compressBound(static_cast<uLong>(data.size()));
  std::string payload(bound, '\0');
  int rc = compress2(reinterpret_cast<Bytef*>(payload.data()), &bound,
                     reinterpret_cast<const Bytef*>(data.data()),
                     static_cast<uLong>(data.size()), level);
  if (rc != Z_OK) {
    return Status::Internal("zlib compress failed (rc=" + std::to_string(rc) +
                            ") on " + std::to_string(data.size()) +
                            "-byte BGZF block");
  }
  payload.resize(bound);

  // Incompressible fallback: when deflate does not shrink the payload,
  // store it verbatim so decode is a memcpy and the frame never grows
  // past raw size + header.
  const bool stored = payload.size() >= data.size();
  std::string block;
  const std::string_view out_payload = stored ? data : std::string_view(payload);
  block.reserve(kBgzfHeaderSize + out_payload.size());
  block.append(kMagic, 3);
  block.push_back(stored ? kMethodStored : kMethodDeflate);
  BufferWriter w(&block);
  w.PutU32(static_cast<uint32_t>(out_payload.size()));
  w.PutU32(static_cast<uint32_t>(data.size()));
  block.append(out_payload);
  return block;
}

Result<size_t> BgzfPeekBlockSize(std::string_view data) {
  GESALL_ASSIGN_OR_RETURN(BgzfBlockInfo info, PeekBlockAt(data, 0));
  return info.block_size;
}

Result<BgzfBlockInfo> BgzfPeekBlock(std::string_view data) {
  return PeekBlockAt(data, 0);
}

Status BgzfDecompressBlockInto(std::string_view data, size_t file_offset,
                               std::string* out, size_t* consumed) {
  GESALL_ASSIGN_OR_RETURN(BgzfBlockInfo info, PeekBlockAt(data, file_offset));
  const size_t csize = info.block_size - kBgzfHeaderSize;
  if (data.size() < info.block_size) {
    return Status::Corruption("truncated BGZF block payload at offset " +
                              std::to_string(file_offset) + ": " +
                              std::to_string(data.size() - kBgzfHeaderSize) +
                              " of " + std::to_string(csize) + " bytes");
  }
  if (info.stored) {
    out->assign(data.data() + kBgzfHeaderSize, csize);
  } else {
    out->resize(info.raw_size);
    uLongf out_len = static_cast<uLongf>(info.raw_size);
    int rc = uncompress(
        reinterpret_cast<Bytef*>(out->data()), &out_len,
        reinterpret_cast<const Bytef*>(data.data() + kBgzfHeaderSize),
        static_cast<uLong>(csize));
    if (rc != Z_OK || out_len != info.raw_size) {
      return Status::Corruption(
          "zlib uncompress failed (rc=" + std::to_string(rc) +
          ") in BGZF block at offset " + std::to_string(file_offset));
    }
  }
  if (consumed != nullptr) *consumed = info.block_size;
  return Status::OK();
}

Result<std::string> BgzfDecompressBlock(std::string_view data,
                                        size_t* consumed) {
  std::string out;
  GESALL_RETURN_NOT_OK(BgzfDecompressBlockInto(data, 0, &out, consumed));
  return out;
}

Status BgzfReadRange(std::string_view compressed, size_t offset,
                     size_t length, std::string* out,
                     int64_t* decompress_micros) {
  size_t off = 0;       // file offset of the next block header
  size_t raw_pos = 0;   // uncompressed position of that block's first byte
  std::string scratch;
  while (length > 0 && off < compressed.size()) {
    GESALL_ASSIGN_OR_RETURN(BgzfBlockInfo info,
                            PeekBlockAt(compressed.substr(off), off));
    if (off + info.block_size > compressed.size()) {
      return Status::Corruption("truncated BGZF block payload at offset " +
                                std::to_string(off));
    }
    if (raw_pos + info.raw_size > offset) {
      // Covering block: this is the only case that pays for inflate.
      const int64_t t0 = NowMicros();
      GESALL_RETURN_NOT_OK(BgzfDecompressBlockInto(compressed.substr(off),
                                                   off, &scratch, nullptr));
      if (decompress_micros != nullptr) {
        *decompress_micros += NowMicros() - t0;
      }
      if (scratch.size() != info.raw_size) {
        return Status::Corruption(
            "BGZF block at offset " + std::to_string(off) + " inflated to " +
            std::to_string(scratch.size()) + " bytes, header declared " +
            std::to_string(info.raw_size));
      }
      const size_t intra = offset > raw_pos ? offset - raw_pos : 0;
      const size_t take = std::min(length, scratch.size() - intra);
      out->append(scratch, intra, take);
      offset += take;
      length -= take;
    }
    raw_pos += info.raw_size;
    off += info.block_size;
  }
  if (length > 0) {
    return Status::OutOfRange("BGZF range read past end of stream");
  }
  return Status::OK();
}

uint64_t BgzfWriter::Tell() const {
  return (static_cast<uint64_t>(out_->size()) << 16) |
         (pending_.size() & 0xffff);
}

Status BgzfWriter::Append(std::string_view data) {
  while (!data.empty()) {
    size_t room = kBgzfBlockSize - pending_.size();
    size_t take = std::min(room, data.size());
    pending_.append(data.substr(0, take));
    data.remove_prefix(take);
    if (pending_.size() == kBgzfBlockSize) {
      GESALL_RETURN_NOT_OK(Flush());
    }
  }
  return Status::OK();
}

Status BgzfWriter::Flush() {
  if (pending_.empty()) return Status::OK();
  const int64_t t0 = NowMicros();
  GESALL_ASSIGN_OR_RETURN(std::string block,
                          BgzfCompressBlock(pending_, level_));
  stats_.compress_micros += NowMicros() - t0;
  stats_.raw_bytes += static_cast<int64_t>(pending_.size());
  stats_.stored_bytes += static_cast<int64_t>(block.size());
  ++stats_.blocks;
  if (block.size() >= 4 && block[3] == kMethodStored) ++stats_.stored_blocks;
  out_->append(block);
  pending_.clear();
  return Status::OK();
}

Status BgzfReader::Seek(uint64_t virtual_offset) {
  block_offset_ = static_cast<size_t>(virtual_offset >> 16);
  intra_ = static_cast<size_t>(virtual_offset & 0xffff);
  loaded_ = false;
  if (block_offset_ > data_.size()) {
    return Status::OutOfRange("seek past end of BGZF stream");
  }
  if (block_offset_ < data_.size()) {
    GESALL_RETURN_NOT_OK(EnsureBlock());
    if (intra_ > block_.size()) {
      return Status::OutOfRange("intra-block offset past block end");
    }
  } else if (intra_ != 0) {
    return Status::OutOfRange("seek past end of BGZF stream");
  }
  return Status::OK();
}

uint64_t BgzfReader::Tell() const {
  return (static_cast<uint64_t>(block_offset_) << 16) | (intra_ & 0xffff);
}

Status BgzfReader::EnsureBlock() {
  if (loaded_) return Status::OK();
  size_t consumed = 0;
  GESALL_RETURN_NOT_OK(BgzfDecompressBlockInto(
      data_.substr(block_offset_), block_offset_, &block_, &consumed));
  next_offset_ = block_offset_ + consumed;
  loaded_ = true;
  return Status::OK();
}

bool BgzfReader::AtEnd() {
  if (loaded_ && intra_ < block_.size()) return false;
  if (!loaded_) return block_offset_ >= data_.size();
  // Current block exhausted; at end iff no further block.
  return next_offset_ >= data_.size();
}

Status BgzfReader::Read(size_t n, std::string* out) {
  out->clear();
  out->reserve(n);
  while (n > 0) {
    if (block_offset_ >= data_.size()) {
      return Status::OutOfRange("read past end of BGZF stream");
    }
    GESALL_RETURN_NOT_OK(EnsureBlock());
    if (intra_ >= block_.size()) {
      block_offset_ = next_offset_;
      intra_ = 0;
      loaded_ = false;
      continue;
    }
    size_t take = std::min(n, block_.size() - intra_);
    out->append(block_, intra_, take);
    intra_ += take;
    n -= take;
  }
  return Status::OK();
}

Result<std::vector<std::pair<size_t, size_t>>> BgzfListBlocks(
    std::string_view compressed) {
  std::vector<std::pair<size_t, size_t>> spans;
  size_t off = 0;
  while (off < compressed.size()) {
    GESALL_ASSIGN_OR_RETURN(BgzfBlockInfo info,
                            PeekBlockAt(compressed.substr(off), off));
    if (off + info.block_size > compressed.size()) {
      return Status::Corruption("truncated trailing BGZF block");
    }
    spans.emplace_back(off, info.block_size);
    off += info.block_size;
  }
  return spans;
}

}  // namespace gesall

#include "util/bgzf.h"

#include <zlib.h>

#include <cstring>

#include "util/io.h"

namespace gesall {

namespace {
constexpr char kMagic[4] = {'G', 'B', 'Z', '1'};

Status CheckMagic(std::string_view data) {
  if (data.size() < kBgzfHeaderSize) {
    return Status::Corruption("truncated BGZF block header");
  }
  if (std::memcmp(data.data(), kMagic, 4) != 0) {
    return Status::Corruption("bad BGZF magic");
  }
  return Status::OK();
}
}  // namespace

Result<std::string> BgzfCompressBlock(std::string_view data) {
  if (data.size() > kBgzfBlockSize) {
    return Status::InvalidArgument("BGZF block payload too large");
  }
  uLongf bound = compressBound(static_cast<uLong>(data.size()));
  std::string payload(bound, '\0');
  int rc = compress2(reinterpret_cast<Bytef*>(payload.data()), &bound,
                     reinterpret_cast<const Bytef*>(data.data()),
                     static_cast<uLong>(data.size()), Z_DEFAULT_COMPRESSION);
  if (rc != Z_OK) return Status::Internal("zlib compress failed");
  payload.resize(bound);

  std::string block;
  block.reserve(kBgzfHeaderSize + payload.size());
  block.append(kMagic, 4);
  BufferWriter w(&block);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(static_cast<uint32_t>(data.size()));
  block.append(payload);
  return block;
}

Result<size_t> BgzfPeekBlockSize(std::string_view data) {
  GESALL_RETURN_NOT_OK(CheckMagic(data));
  BufferReader r(data.substr(4));
  uint32_t csize;
  GESALL_RETURN_NOT_OK(r.GetU32(&csize));
  return kBgzfHeaderSize + static_cast<size_t>(csize);
}

Result<std::string> BgzfDecompressBlock(std::string_view data,
                                        size_t* consumed) {
  GESALL_RETURN_NOT_OK(CheckMagic(data));
  BufferReader r(data.substr(4));
  uint32_t csize, usize;
  GESALL_RETURN_NOT_OK(r.GetU32(&csize));
  GESALL_RETURN_NOT_OK(r.GetU32(&usize));
  if (data.size() < kBgzfHeaderSize + csize) {
    return Status::Corruption("truncated BGZF block payload");
  }
  if (usize > kBgzfBlockSize) {
    return Status::Corruption("BGZF block uncompressed size too large");
  }
  std::string out(usize, '\0');
  uLongf out_len = usize;
  int rc = uncompress(
      reinterpret_cast<Bytef*>(out.data()), &out_len,
      reinterpret_cast<const Bytef*>(data.data() + kBgzfHeaderSize), csize);
  if (rc != Z_OK || out_len != usize) {
    return Status::Corruption("zlib uncompress failed");
  }
  if (consumed != nullptr) *consumed = kBgzfHeaderSize + csize;
  return out;
}

uint64_t BgzfWriter::Tell() const {
  return (static_cast<uint64_t>(out_->size()) << 16) |
         (pending_.size() & 0xffff);
}

Status BgzfWriter::Append(std::string_view data) {
  while (!data.empty()) {
    size_t room = kBgzfBlockSize - pending_.size();
    size_t take = std::min(room, data.size());
    pending_.append(data.substr(0, take));
    data.remove_prefix(take);
    if (pending_.size() == kBgzfBlockSize) {
      GESALL_RETURN_NOT_OK(Flush());
    }
  }
  return Status::OK();
}

Status BgzfWriter::Flush() {
  if (pending_.empty()) return Status::OK();
  GESALL_ASSIGN_OR_RETURN(std::string block, BgzfCompressBlock(pending_));
  out_->append(block);
  pending_.clear();
  return Status::OK();
}

Status BgzfReader::Seek(uint64_t virtual_offset) {
  block_offset_ = static_cast<size_t>(virtual_offset >> 16);
  intra_ = static_cast<size_t>(virtual_offset & 0xffff);
  loaded_ = false;
  if (block_offset_ > data_.size()) {
    return Status::OutOfRange("seek past end of BGZF stream");
  }
  if (block_offset_ < data_.size()) {
    GESALL_RETURN_NOT_OK(EnsureBlock());
    if (intra_ > block_.size()) {
      return Status::OutOfRange("intra-block offset past block end");
    }
  } else if (intra_ != 0) {
    return Status::OutOfRange("seek past end of BGZF stream");
  }
  return Status::OK();
}

uint64_t BgzfReader::Tell() const {
  return (static_cast<uint64_t>(block_offset_) << 16) | (intra_ & 0xffff);
}

Status BgzfReader::EnsureBlock() {
  if (loaded_) return Status::OK();
  size_t consumed = 0;
  GESALL_ASSIGN_OR_RETURN(
      block_, BgzfDecompressBlock(data_.substr(block_offset_), &consumed));
  next_offset_ = block_offset_ + consumed;
  loaded_ = true;
  return Status::OK();
}

bool BgzfReader::AtEnd() {
  if (loaded_ && intra_ < block_.size()) return false;
  if (!loaded_) return block_offset_ >= data_.size();
  // Current block exhausted; at end iff no further block.
  return next_offset_ >= data_.size();
}

Status BgzfReader::Read(size_t n, std::string* out) {
  out->clear();
  out->reserve(n);
  while (n > 0) {
    if (block_offset_ >= data_.size()) {
      return Status::OutOfRange("read past end of BGZF stream");
    }
    GESALL_RETURN_NOT_OK(EnsureBlock());
    if (intra_ >= block_.size()) {
      block_offset_ = next_offset_;
      intra_ = 0;
      loaded_ = false;
      continue;
    }
    size_t take = std::min(n, block_.size() - intra_);
    out->append(block_, intra_, take);
    intra_ += take;
    n -= take;
  }
  return Status::OK();
}

Result<std::vector<std::pair<size_t, size_t>>> BgzfListBlocks(
    std::string_view compressed) {
  std::vector<std::pair<size_t, size_t>> spans;
  size_t off = 0;
  while (off < compressed.size()) {
    GESALL_ASSIGN_OR_RETURN(size_t sz,
                            BgzfPeekBlockSize(compressed.substr(off)));
    if (off + sz > compressed.size()) {
      return Status::Corruption("truncated trailing BGZF block");
    }
    spans.emplace_back(off, sz);
    off += sz;
  }
  return spans;
}

}  // namespace gesall

// Fixed-size thread pool used by the functional MapReduce engine to run
// map/reduce tasks concurrently (the paper's "process-thread hierarchy"
// is modeled by the simulator; the functional engine just needs workers).

#ifndef GESALL_UTIL_THREAD_POOL_H_
#define GESALL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gesall {

/// \brief Simple FIFO thread pool. Submit returns immediately; Wait blocks
/// until all submitted tasks have completed.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  /// Blocks until the queue is drained and all workers are idle.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  int active_ = 0;
  bool stop_ = false;
};

}  // namespace gesall

#endif  // GESALL_UTIL_THREAD_POOL_H_

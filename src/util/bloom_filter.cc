#include "util/bloom_filter.h"

#include <algorithm>
#include <cmath>

#include "util/io.h"
#include "util/rng.h"

namespace gesall {

BloomFilter::BloomFilter(size_t expected_items, double target_fpr) {
  expected_items = std::max<size_t>(expected_items, 1);
  target_fpr = std::clamp(target_fpr, 1e-9, 0.5);
  const double ln2 = 0.6931471805599453;
  double bits = -static_cast<double>(expected_items) * std::log(target_fpr) /
                (ln2 * ln2);
  bit_count_ = std::max<size_t>(static_cast<size_t>(bits) + 1, 64);
  hash_count_ = std::max(
      1, static_cast<int>(std::lround(ln2 * bits / expected_items)));
  bits_.assign((bit_count_ + 63) / 64, 0);
}

void BloomFilter::IndexesFor(uint64_t key, std::vector<size_t>* idx) const {
  // Kirsch-Mitzenmacher double hashing: g_i(x) = h1(x) + i*h2(x).
  uint64_t s = key;
  uint64_t h1 = SplitMix64(s);
  uint64_t h2 = SplitMix64(s) | 1;
  idx->clear();
  for (int i = 0; i < hash_count_; ++i) {
    idx->push_back((h1 + static_cast<uint64_t>(i) * h2) % bit_count_);
  }
}

void BloomFilter::Insert(uint64_t key) {
  std::vector<size_t> idx;
  IndexesFor(key, &idx);
  for (size_t b : idx) bits_[b / 64] |= (1ULL << (b % 64));
}

bool BloomFilter::MayContain(uint64_t key) const {
  std::vector<size_t> idx;
  IndexesFor(key, &idx);
  for (size_t b : idx) {
    if ((bits_[b / 64] & (1ULL << (b % 64))) == 0) return false;
  }
  return true;
}

Status BloomFilter::Union(const BloomFilter& other) {
  if (other.bit_count_ != bit_count_ || other.hash_count_ != hash_count_) {
    return Status::InvalidArgument("bloom filter geometry mismatch");
  }
  for (size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
  return Status::OK();
}

std::string BloomFilter::Serialize() const {
  std::string out;
  BufferWriter w(&out);
  w.PutU64(bit_count_);
  w.PutU32(static_cast<uint32_t>(hash_count_));
  w.PutU64(bits_.size());
  for (uint64_t word : bits_) w.PutU64(word);
  return out;
}

Result<BloomFilter> BloomFilter::Deserialize(const std::string& data) {
  BufferReader r(data);
  BloomFilter f;
  uint64_t bit_count, words;
  uint32_t hashes;
  GESALL_RETURN_NOT_OK(r.GetU64(&bit_count));
  GESALL_RETURN_NOT_OK(r.GetU32(&hashes));
  GESALL_RETURN_NOT_OK(r.GetU64(&words));
  f.bit_count_ = static_cast<size_t>(bit_count);
  f.hash_count_ = static_cast<int>(hashes);
  f.bits_.resize(static_cast<size_t>(words));
  for (auto& word : f.bits_) GESALL_RETURN_NOT_OK(r.GetU64(&word));
  return f;
}

}  // namespace gesall

#include "util/io.h"

#include <cstdio>

namespace gesall {

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::IOError("read failed on " + path);
  return data;
}

Status WriteStringToFile(const std::string& path, std::string_view data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  size_t n = std::fwrite(data.data(), 1, data.size(), f);
  bool bad = n != data.size();
  if (std::fclose(f) != 0) bad = true;
  if (bad) return Status::IOError("write failed on " + path);
  return Status::OK();
}

}  // namespace gesall

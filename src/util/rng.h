// Deterministic pseudo-random number generation.
//
// Every stochastic component in Gesall (read simulation, aligner
// tie-breaking, duplicate tie-breaking) draws from a seeded Rng so that
// experiments are exactly reproducible. The aligner additionally derives
// per-batch seeds from batch content — the mechanism behind the paper's
// serial-vs-parallel discordance (Appendix B.2).

#ifndef GESALL_UTIL_RNG_H_
#define GESALL_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <string_view>

namespace gesall {

/// \brief SplitMix64 step; used for seeding and cheap hashing.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief 64-bit FNV-1a hash of a byte string.
inline uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// \brief Mixes two 64-bit values into one (for composing seeds).
inline uint64_t MixSeeds(uint64_t a, uint64_t b) {
  uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return SplitMix64(s);
}

/// \brief xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& w : s_) w = SplitMix64(sm);
    have_gauss_ = false;
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling (biased tail rejected).
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = -n % n;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Returns true with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller (cached pair).
  double Gaussian() {
    if (have_gauss_) {
      have_gauss_ = false;
      return cached_gauss_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = NextDouble();
    double u2 = NextDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_gauss_ = r * std::sin(theta);
    have_gauss_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double sd) { return mean + sd * Gaussian(); }

  /// Geometric-ish small count: number of successes before failure.
  int GeometricCount(double p_continue, int max_count) {
    int n = 0;
    while (n < max_count && Bernoulli(p_continue)) ++n;
    return n;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  bool have_gauss_ = false;
  double cached_gauss_ = 0.0;
};

}  // namespace gesall

#endif  // GESALL_UTIL_RNG_H_

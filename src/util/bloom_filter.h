// Bloom filter used by the MarkDup_opt optimization (paper §3.2):
// a map-side precomputation records the 5' unclipped positions of reads in
// partial matching pairs, so the compound partitioning scheme can avoid
// emitting a second copy of complete-pair reads whose positions never need
// partial-duplicate checks.

#ifndef GESALL_UTIL_BLOOM_FILTER_H_
#define GESALL_UTIL_BLOOM_FILTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace gesall {

/// \brief Standard k-hash Bloom filter over 64-bit keys.
class BloomFilter {
 public:
  /// Sizes the filter for `expected_items` at the given false-positive rate.
  BloomFilter(size_t expected_items, double target_fpr);

  void Insert(uint64_t key);
  bool MayContain(uint64_t key) const;

  /// Merges another filter with identical geometry (bitwise OR).
  Status Union(const BloomFilter& other);

  size_t bit_count() const { return bit_count_; }
  int hash_count() const { return hash_count_; }
  size_t byte_size() const { return bits_.size() * sizeof(uint64_t); }

  /// Serialization for shipping the filter between MapReduce rounds.
  std::string Serialize() const;
  static Result<BloomFilter> Deserialize(const std::string& data);

 private:
  BloomFilter() = default;

  void IndexesFor(uint64_t key, std::vector<size_t>* idx) const;

  size_t bit_count_ = 0;
  int hash_count_ = 0;
  std::vector<uint64_t> bits_;
};

}  // namespace gesall

#endif  // GESALL_UTIL_BLOOM_FILTER_H_

// Capacity-bounded MPMC queue: the backpressure edge of the streaming
// pipeline node graph (gesall/pipeline_node.h).
//
// Two usage styles share one queue:
//
//   * Blocking Push/Pop for dedicated producer/consumer threads. A full
//     queue blocks the producer (backpressure); an empty queue blocks
//     the consumer. Close() lets consumers drain what remains and then
//     fail; a CancelToken unblocks BOTH ends immediately.
//   * Non-blocking TryPush/TryPop plus one-shot OnSpace/OnItem parking
//     callbacks for cooperative pumps that must never block an executor
//     worker. A pump that fails TryPush registers OnSpace and yields;
//     the callback fires exactly once when space appears (or the queue
//     closes/cancels), mirroring ReadySignal's exactly-once contract.
//
// Every stall (blocked wait or parked callback) is timed into the stats
// so the pipeline can report where the streaming path waits.

#ifndef GESALL_UTIL_BOUNDED_QUEUE_H_
#define GESALL_UTIL_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>

#include "util/cancel.h"

namespace gesall {

/// \brief Occupancy and stall telemetry of one BoundedQueue.
struct BoundedQueueStats {
  int64_t pushed = 0;
  int64_t popped = 0;
  int64_t max_depth = 0;          // high-water occupancy
  int64_t push_stalls = 0;        // producer found the queue full
  int64_t pop_stalls = 0;         // consumer found the queue empty
  int64_t push_stall_micros = 0;  // producer time blocked or parked
  int64_t pop_stall_micros = 0;   // consumer time blocked or parked
};

/// \brief Outcome of BoundedQueue::TryPopState. Unlike TryPop's bool,
/// it distinguishes — atomically, under the queue mutex — an empty
/// queue that may still receive items (kEmpty) from one that never
/// will (kDrained). Consumers that check closed() *after* a failed
/// TryPop race with a producer pushing a final item and closing in the
/// gap, silently dropping the tail; TryPopState has no such window.
enum class QueuePopState {
  kItem,       // *out holds the popped item
  kEmpty,      // empty but open: park on OnItem
  kDrained,    // closed and empty: no item will ever arrive
  kCancelled,  // aborted: any queued items were discarded
};

template <typename T>
class BoundedQueue {
 public:
  /// `cancel` (optional) must outlive the queue's shared state; a flip
  /// unblocks every waiter and fires any parked callbacks.
  explicit BoundedQueue(size_t capacity,
                        std::shared_ptr<CancelToken> cancel = nullptr)
      : state_(std::make_shared<State>()) {
    state_->capacity = capacity == 0 ? 1 : capacity;
    if (cancel != nullptr) {
      // The token may outlive this queue: the callback holds only a
      // weak_ptr to the shared state, so a late Cancel() is a no-op.
      std::weak_ptr<State> weak = state_;
      cancel->OnCancel([weak] {
        if (auto s = weak.lock()) CancelState(s.get());
      });
    }
  }

  /// Blocks while full. Returns false (item dropped) once closed or
  /// cancelled.
  bool Push(T item) {
    State* s = state_.get();
    std::function<void()> cb;
    {
      std::unique_lock<std::mutex> lock(s->mu);
      if (s->queue.size() >= s->capacity && !s->closed && !s->cancelled) {
        ++s->stats.push_stalls;
        auto t0 = std::chrono::steady_clock::now();
        s->not_full.wait(lock, [s] {
          return s->queue.size() < s->capacity || s->closed || s->cancelled;
        });
        s->stats.push_stall_micros += MicrosSince(t0);
      }
      if (s->closed || s->cancelled) return false;
      s->queue.push_back(std::move(item));
      ++s->stats.pushed;
      s->stats.max_depth = std::max<int64_t>(
          s->stats.max_depth, static_cast<int64_t>(s->queue.size()));
      cb = std::move(s->on_item);
      s->on_item = nullptr;
    }
    s->not_empty.notify_one();
    if (cb) cb();
    return true;
  }

  /// Blocks while empty and open. Returns false once closed-and-drained
  /// or cancelled.
  bool Pop(T* out) {
    State* s = state_.get();
    std::function<void()> cb;
    {
      std::unique_lock<std::mutex> lock(s->mu);
      if (s->queue.empty() && !s->closed && !s->cancelled) {
        ++s->stats.pop_stalls;
        auto t0 = std::chrono::steady_clock::now();
        s->not_empty.wait(lock, [s] {
          return !s->queue.empty() || s->closed || s->cancelled;
        });
        s->stats.pop_stall_micros += MicrosSince(t0);
      }
      if (s->cancelled || s->queue.empty()) return false;
      *out = std::move(s->queue.front());
      s->queue.pop_front();
      ++s->stats.popped;
      cb = std::move(s->on_space);
      s->on_space = nullptr;
    }
    s->not_full.notify_one();
    if (cb) cb();
    return true;
  }

  /// Non-blocking push; false when full, closed or cancelled. Use
  /// closed()/cancelled() to tell backpressure from shutdown.
  bool TryPush(T&& item) {
    State* s = state_.get();
    std::function<void()> cb;
    {
      std::lock_guard<std::mutex> lock(s->mu);
      if (s->closed || s->cancelled || s->queue.size() >= s->capacity) {
        return false;
      }
      s->queue.push_back(std::move(item));
      ++s->stats.pushed;
      s->stats.max_depth = std::max<int64_t>(
          s->stats.max_depth, static_cast<int64_t>(s->queue.size()));
      cb = std::move(s->on_item);
      s->on_item = nullptr;
    }
    s->not_empty.notify_one();
    if (cb) cb();
    return true;
  }

  /// Non-blocking pop; false when empty (even if more items are coming),
  /// closed-and-drained, or cancelled.
  bool TryPop(T* out) {
    State* s = state_.get();
    std::function<void()> cb;
    {
      std::lock_guard<std::mutex> lock(s->mu);
      if (s->cancelled || s->queue.empty()) return false;
      *out = std::move(s->queue.front());
      s->queue.pop_front();
      ++s->stats.popped;
      cb = std::move(s->on_space);
      s->on_space = nullptr;
    }
    s->not_full.notify_one();
    if (cb) cb();
    return true;
  }

  /// Non-blocking pop that reports, under one lock acquisition, why no
  /// item was returned. This is the only race-free way for a pump to
  /// decide between parking (kEmpty) and terminating (kDrained): the
  /// closed flag and the emptiness are read atomically together.
  QueuePopState TryPopState(T* out) {
    State* s = state_.get();
    std::function<void()> cb;
    {
      std::lock_guard<std::mutex> lock(s->mu);
      if (s->cancelled) return QueuePopState::kCancelled;
      if (s->queue.empty()) {
        return s->closed ? QueuePopState::kDrained : QueuePopState::kEmpty;
      }
      *out = std::move(s->queue.front());
      s->queue.pop_front();
      ++s->stats.popped;
      cb = std::move(s->on_space);
      s->on_space = nullptr;
    }
    s->not_full.notify_one();
    if (cb) cb();
    return QueuePopState::kItem;
  }

  /// Parks `fn` until the queue has space; runs inline when it already
  /// does (or is closed/cancelled — shutdown must unpark pumps). At most
  /// one parked producer callback at a time; a new registration replaces
  /// the old one. Fires exactly once per registration.
  void OnSpace(std::function<void()> fn) {
    State* s = state_.get();
    {
      std::lock_guard<std::mutex> lock(s->mu);
      if (s->queue.size() >= s->capacity && !s->closed && !s->cancelled) {
        ++s->stats.push_stalls;
        s->push_parked_at = std::chrono::steady_clock::now();
        s->on_space = WrapTimed(s, &s->stats.push_stall_micros,
                                &s->push_parked_at, std::move(fn));
        return;
      }
    }
    fn();
  }

  /// Parks `fn` until an item is available; runs inline when one already
  /// is (or the queue is closed/cancelled).
  void OnItem(std::function<void()> fn) {
    State* s = state_.get();
    {
      std::lock_guard<std::mutex> lock(s->mu);
      if (s->queue.empty() && !s->closed && !s->cancelled) {
        ++s->stats.pop_stalls;
        s->pop_parked_at = std::chrono::steady_clock::now();
        s->on_item = WrapTimed(s, &s->stats.pop_stall_micros,
                               &s->pop_parked_at, std::move(fn));
        return;
      }
    }
    fn();
  }

  /// No more pushes; pops drain what remains. Idempotent.
  void Close() {
    State* s = state_.get();
    std::function<void()> item_cb, space_cb;
    {
      std::lock_guard<std::mutex> lock(s->mu);
      if (s->closed) return;
      s->closed = true;
      item_cb = std::move(s->on_item);
      space_cb = std::move(s->on_space);
      s->on_item = nullptr;
      s->on_space = nullptr;
    }
    s->not_full.notify_all();
    s->not_empty.notify_all();
    if (item_cb) item_cb();
    if (space_cb) space_cb();
  }

  /// Abort: drops queued items and unblocks both ends (used when a
  /// downstream node fails — draining would be wasted work).
  void CloseAbort() {
    State* s = state_.get();
    std::function<void()> item_cb, space_cb;
    {
      std::lock_guard<std::mutex> lock(s->mu);
      s->closed = true;
      s->cancelled = true;
      s->queue.clear();
      item_cb = std::move(s->on_item);
      space_cb = std::move(s->on_space);
      s->on_item = nullptr;
      s->on_space = nullptr;
    }
    s->not_full.notify_all();
    s->not_empty.notify_all();
    if (item_cb) item_cb();
    if (space_cb) space_cb();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->closed;
  }
  bool cancelled() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->cancelled;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->queue.size();
  }
  size_t capacity() const { return state_->capacity; }

  BoundedQueueStats stats() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->stats;
  }

 private:
  struct State {
    mutable std::mutex mu;
    std::condition_variable not_full, not_empty;
    std::deque<T> queue;
    size_t capacity = 1;
    bool closed = false;
    bool cancelled = false;
    std::function<void()> on_item;   // parked consumer (at most one)
    std::function<void()> on_space;  // parked producer (at most one)
    std::chrono::steady_clock::time_point push_parked_at, pop_parked_at;
    BoundedQueueStats stats;
  };

  static int64_t MicrosSince(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  }

  // Wraps a parked callback so the parked duration is charged to the
  // right stall counter when it finally fires. The duration is read
  // under the lock right before the wrapper is invoked (all invocation
  // sites move the callback out under s->mu, then call it outside).
  static std::function<void()> WrapTimed(
      State* s, int64_t* micros,
      std::chrono::steady_clock::time_point* parked_at,
      std::function<void()> fn) {
    auto t0 = *parked_at;
    return [s, micros, t0, fn = std::move(fn)] {
      {
        std::lock_guard<std::mutex> lock(s->mu);
        *micros += MicrosSince(t0);
      }
      fn();
    };
  }

  static void CancelState(State* s) {
    std::function<void()> item_cb, space_cb;
    {
      std::lock_guard<std::mutex> lock(s->mu);
      s->cancelled = true;
      item_cb = std::move(s->on_item);
      space_cb = std::move(s->on_space);
      s->on_item = nullptr;
      s->on_space = nullptr;
    }
    s->not_full.notify_all();
    s->not_empty.notify_all();
    if (item_cb) item_cb();
    if (space_cb) space_cb();
  }

  // shared_ptr so a CancelToken callback can outlive the queue object.
  std::shared_ptr<State> state_;
};

}  // namespace gesall

#endif  // GESALL_UTIL_BOUNDED_QUEUE_H_

#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace gesall {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeToString(code());
  s += ": ";
  s += message();
  return s;
}

void AbortOnBadResult(const Status& st) {
  std::fprintf(stderr, "Fatal: ValueOrDie on error result: %s\n",
               st.ToString().c_str());
  std::abort();
}

}  // namespace gesall

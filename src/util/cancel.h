// Cooperative cancellation token shared by a job's tasks.
//
// A CancelToken is the one-way edge "this job must stop": the service
// layer (timeouts, client aborts, drain) flips it once, and every layer
// underneath — MR task attempts, RoundDag nodes, gated splits — polls it
// at its next safe point and unwinds with StatusCode::kCancelled carrying
// the recorded cause. Callbacks registered with OnCancel run exactly
// once, on whichever thread flips the token (or inline when already
// cancelled), mirroring ReadySignal's contract; they are how gated work
// that would otherwise wait forever (a ReadySignal that will never fire
// because the upstream round was cancelled) gets released.

#ifndef GESALL_UTIL_CANCEL_H_
#define GESALL_UTIL_CANCEL_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace gesall {

/// \brief One-shot cooperative cancellation flag with a cause and
/// exactly-once callbacks. Thread-safe; typically held by shared_ptr.
class CancelToken {
 public:
  /// Flips the token. The first call wins: its cause is recorded and the
  /// registered callbacks run (on this thread, outside the lock); later
  /// calls are no-ops.
  void Cancel(std::string cause) {
    std::vector<std::function<void()>> callbacks;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (cancelled_.load(std::memory_order_relaxed)) return;
      cause_ = std::move(cause);
      cancelled_.store(true, std::memory_order_release);
      callbacks = std::move(callbacks_);
      callbacks_.clear();
    }
    for (auto& cb : callbacks) cb();
  }

  /// Cheap poll — safe on hot paths (single acquire load).
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// The first Cancel()'s cause; empty while not cancelled.
  std::string cause() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cause_;
  }

  /// OK while live, Status::Cancelled(cause) once cancelled.
  Status status() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (!cancelled_.load(std::memory_order_relaxed)) return Status::OK();
    return Status::Cancelled(cause_);
  }

  /// `fn` runs exactly once: inside the winning Cancel() in registration
  /// order, or inline right here when the token is already cancelled.
  void OnCancel(std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!cancelled_.load(std::memory_order_relaxed)) {
        callbacks_.push_back(std::move(fn));
        return;
      }
    }
    fn();
  }

 private:
  mutable std::mutex mu_;
  std::atomic<bool> cancelled_{false};
  std::string cause_;                             // guarded by mu_
  std::vector<std::function<void()>> callbacks_;  // guarded by mu_
};

}  // namespace gesall

#endif  // GESALL_UTIL_CANCEL_H_

// Deterministic, seeded fault injection (the chaos layer behind the
// paper's fault-tolerance story: Hadoop retries failed task attempts,
// speculatively re-executes stragglers, and HDFS reads fail over across
// replicas — §3, §3.4).
//
// Components expose named fault points ("dfs.read_replica",
// "mr.map_attempt", ...). A FaultInjector armed on a point decides, for
// each (key, attempt) the component passes in, whether that attempt fails
// or how much straggler latency it suffers. Decisions are pure functions
// of (seed, point, key, attempt) — independent of thread interleaving —
// so the same seed over the same input reproduces the exact same fault
// sequence, retry counters, and byte-identical job output.

#ifndef GESALL_UTIL_FAULT_INJECTION_H_
#define GESALL_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "util/status.h"

namespace gesall {

// Well-known fault point names. Components pass these; tests arm them.
inline constexpr char kFaultDfsReadReplica[] = "dfs.read_replica";
inline constexpr char kFaultSplitLoad[] = "split.load";
inline constexpr char kFaultMapAttempt[] = "mr.map_attempt";
inline constexpr char kFaultReduceAttempt[] = "mr.reduce_attempt";
/// Rots one byte of a stored DFS replica at read time (key = block id,
/// attempt = write-time replica ordinal).
inline constexpr char kFaultDfsBlockCorrupt[] = "dfs.block_corrupt";
/// Whole-node crash/restart, consulted once per heartbeat interval by
/// Dfs::Tick (key = node id, attempt = tick) and by the MR job master's
/// shuffle with attempt = 0 (a node crashed at the start of the
/// heartbeat epoch is dead for the job's fetch phase).
inline constexpr char kFaultNodeCrash[] = "node.crash";
inline constexpr char kFaultNodeRestart[] = "node.restart";
/// Corrupts the reduce-side fetch of one map task's output (key = map
/// task index, attempt = fetch epoch), forcing a map re-execution.
inline constexpr char kFaultShuffleFetch[] = "mr.shuffle_fetch";
/// Cuts a write-ahead-journal frame short on disk (key = records already
/// appended to that journal, attempt = 0), simulating a crash mid-write:
/// the append fails with IOError and the file ends in a torn frame that
/// replay must discard.
inline constexpr char kFaultFsShortWrite[] = "fs.short_write";
/// Fails the fsync of a journal batch or snapshot with IOError (key =
/// records appended / snapshot payload size, attempt = 0).
inline constexpr char kFaultFsSyncFail[] = "fs.sync_fail";

/// \brief Seeded injector of failures and latency at named fault points.
///
/// Keys identify the unit of work at a point (map task index, reduce
/// partition, DFS block id); attempts number retries of that unit (for
/// "dfs.read_replica" the attempt is the replica position, so "fail the
/// first replica of every block" is ArmFirstAttempts(point, 1)).
/// Thread-safe; a disarmed injector answers "no fault" cheaply.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0) : seed_(seed) {}

  /// Each (key, attempt) at `point` fails independently with probability
  /// `p`, derived deterministically from the seed.
  Status ArmProbability(const std::string& point, double p);

  /// Attempts with index < n fail for every key at `point` ("fail the
  /// first n attempts of every task" / "the first n replicas of every
  /// block").
  Status ArmFirstAttempts(const std::string& point, int n);

  /// The listed attempt indices of one specific key fail ("fail attempt
  /// 0 and 1 of map task 3").
  void ArmSchedule(const std::string& point, int64_t key,
                   std::vector<int> attempts);

  /// Each (key, attempt) at `point` suffers `millis` of extra latency
  /// with probability `p` (straggler simulation). Only attempts with
  /// index < only_attempts_below are affected, so speculative and retry
  /// attempts can be modeled as landing on a healthy node.
  Status ArmLatency(const std::string& point, double p, int millis,
                    int only_attempts_below = 1 << 30);

  void Disarm(const std::string& point);
  void DisarmAll();

  /// True (and counts one fire) when the attempt should fail.
  bool ShouldFail(const std::string& point, int64_t key, int attempt);

  /// Status form: IOError("injected fault at <point>...") when failing.
  Status MaybeFail(const std::string& point, int64_t key, int attempt);

  /// Injected latency in milliseconds for this attempt (0 = none; counts
  /// one latency fire when nonzero).
  int LatencyMs(const std::string& point, int64_t key, int attempt);

  /// Total failures fired at a point so far.
  int64_t fires(const std::string& point) const;
  /// Total latency injections fired at a point so far.
  int64_t latency_fires(const std::string& point) const;

  uint64_t seed() const { return seed_; }

 private:
  struct PointConfig {
    double fail_probability = 0.0;
    int fail_first_attempts = 0;
    // key -> attempt indices scheduled to fail.
    std::map<int64_t, std::set<int>> schedule;
    double latency_probability = 0.0;
    int latency_ms = 0;
    int latency_only_attempts_below = 1 << 30;
    int64_t fires = 0;
    int64_t latency_fires = 0;
  };

  // Uniform [0, 1) draw, pure in (seed, point, key, attempt, salt).
  double Draw(const std::string& point, int64_t key, int attempt,
              uint64_t salt) const;

  const uint64_t seed_;
  mutable std::mutex mu_;
  std::map<std::string, PointConfig> points_;
};

}  // namespace gesall

#endif  // GESALL_UTIL_FAULT_INJECTION_H_

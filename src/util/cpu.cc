#include "util/cpu.h"

namespace gesall {

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

bool CpuHasSse41() {
  static const bool available = __builtin_cpu_supports("sse4.1");
  return available;
}

bool CpuHasSse42() {
  static const bool available = __builtin_cpu_supports("sse4.2");
  return available;
}

bool CpuHasAvx2() {
  static const bool available = __builtin_cpu_supports("avx2");
  return available;
}

#else

bool CpuHasSse41() { return false; }
bool CpuHasSse42() { return false; }
bool CpuHasAvx2() { return false; }

#endif

}  // namespace gesall

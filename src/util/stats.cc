#include "util/stats.h"

#include <algorithm>
#include <vector>

namespace gesall {

namespace {

// log(n!) with memoized table for small n and Stirling fallback.
double LogFactorial(int n) {
  static std::vector<double> table = [] {
    std::vector<double> t(4096);
    t[0] = 0.0;
    for (size_t i = 1; i < t.size(); ++i) {
      t[i] = t[i - 1] + std::log(static_cast<double>(i));
    }
    return t;
  }();
  if (n < 0) return 0.0;
  if (static_cast<size_t>(n) < table.size()) return table[n];
  double x = n;
  return x * std::log(x) - x + 0.5 * std::log(2.0 * 3.141592653589793 * x) +
         1.0 / (12.0 * x);
}

// log of the hypergeometric probability of table [[a,b],[c,d]].
double LogHypergeom(int a, int b, int c, int d) {
  return LogFactorial(a + b) + LogFactorial(c + d) + LogFactorial(a + c) +
         LogFactorial(b + d) - LogFactorial(a) - LogFactorial(b) -
         LogFactorial(c) - LogFactorial(d) - LogFactorial(a + b + c + d);
}

}  // namespace

double FisherExactTwoSided(int a, int b, int c, int d) {
  if (a < 0 || b < 0 || c < 0 || d < 0) return 1.0;
  int row1 = a + b, col1 = a + c, n = a + b + c + d;
  if (n == 0) return 1.0;
  double log_p_obs = LogHypergeom(a, b, c, d);
  // Sum over all tables with the same margins whose probability does not
  // exceed the observed one (two-sided definition used by R / GATK).
  int lo = std::max(0, row1 + col1 - n);
  int hi = std::min(row1, col1);
  double p = 0.0;
  const double kEps = 1e-7;
  for (int x = lo; x <= hi; ++x) {
    double lp = LogHypergeom(x, row1 - x, col1 - x, n - row1 - col1 + x);
    if (lp <= log_p_obs + kEps) p += std::exp(lp);
  }
  return std::min(p, 1.0);
}

double FisherStrandPhred(int ref_fwd, int ref_rev, int alt_fwd, int alt_rev) {
  double p = FisherExactTwoSided(ref_fwd, ref_rev, alt_fwd, alt_rev);
  if (p <= 0) return 600.0;
  double fs = -10.0 * std::log10(p);
  return fs < 0 ? 0.0 : fs;
}

}  // namespace gesall

#include "util/executor.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace gesall {
namespace {

std::atomic<int64_t> g_instances_created{0};

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Worker threads submit to their own deque; external threads round-robin.
thread_local Executor* tls_executor = nullptr;
thread_local int tls_worker_index = -1;
// Accounting tag inherited by every Submit from this thread. Workers set
// it to the running task's tag so nested submits charge the same job.
thread_local uint64_t tls_tag = 0;

}  // namespace

Executor::TagScope::TagScope(uint64_t tag) : prev_(tls_tag) {
  tls_tag = tag;
}

Executor::TagScope::~TagScope() { tls_tag = prev_; }

uint64_t Executor::CurrentTag() { return tls_tag; }

Executor::Executor(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  g_instances_created.fetch_add(1, std::memory_order_relaxed);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (int i = 0; i < num_threads; ++i) {
    workers_[static_cast<size_t>(i)]->thread =
        std::thread([this, i] { WorkerLoop(i); });
  }
}

Executor::~Executor() {
  // Drain: workers keep running until nothing is queued, then stop.
  {
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void Executor::Submit(std::function<void()> fn, Priority priority) {
  Submit(std::move(fn), priority, tls_tag);
}

void Executor::Submit(std::function<void()> fn, Priority priority,
                      uint64_t tag) {
  Task task;
  task.fn = std::move(fn);
  task.enqueue_micros = NowMicros();
  task.tag = tag;
  int target;
  if (tls_executor == this && tls_worker_index >= 0) {
    target = tls_worker_index;
  } else {
    target = next_worker_.fetch_add(1, std::memory_order_relaxed) %
             static_cast<int>(workers_.size());
  }
  Worker& w = *workers_[static_cast<size_t>(target)];
  {
    std::lock_guard<std::mutex> lock(w.mu);
    w.queues[static_cast<int>(priority)].push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  // Waiters evaluate their predicate on pending_ while holding idle_mu_
  // and only then block. pending_ was bumped outside the mutex, so a
  // bare notify could land in the window between a waiter's predicate
  // check (saw the old count) and its block — a lost wakeup that leaves
  // a worker (or the destructor's drain wait) asleep with work queued.
  // Passing through the mutex, even empty-handed, closes the window: the
  // waiter either already blocked (the notify reaches it) or has not yet
  // locked and will re-read the new count.
  { std::lock_guard<std::mutex> lock(idle_mu_); }
  idle_cv_.notify_all();
}

bool Executor::PopOwn(int self, Task* task) {
  Worker& w = *workers_[static_cast<size_t>(self)];
  std::lock_guard<std::mutex> lock(w.mu);
  for (auto& queue : w.queues) {
    if (!queue.empty()) {
      *task = std::move(queue.front());
      queue.pop_front();
      return true;
    }
  }
  return false;
}

bool Executor::StealInto(int self, Task* task) {
  const int n = static_cast<int>(workers_.size());
  Worker& me = *workers_[static_cast<size_t>(self)];
  for (int off = 1; off < n; ++off) {
    const int victim_index = (self + off) % n;
    Worker& victim = *workers_[static_cast<size_t>(victim_index)];
    // Never hold two worker locks at once (two mutual thieves would
    // deadlock): move the stolen run into a local buffer under the
    // victim's lock, then transfer the surplus under our own.
    std::deque<Task> stolen;
    int priority = -1;
    {
      std::lock_guard<std::mutex> victim_lock(victim.mu);
      for (int p = 0; p < kNumPriorities; ++p) {
        auto& queue = victim.queues[p];
        if (queue.empty()) continue;
        // Steal the back half (rounded up), preserving relative order
        // so the migrated run still executes FIFO on the thief.
        const size_t count = (queue.size() + 1) / 2;
        const size_t split = queue.size() - count;
        for (size_t i = split; i < queue.size(); ++i) {
          stolen.push_back(std::move(queue[i]));
        }
        queue.erase(queue.begin() + static_cast<ptrdiff_t>(split),
                    queue.end());
        priority = p;
        break;
      }
    }
    if (stolen.empty()) continue;
    steals_.fetch_add(1, std::memory_order_relaxed);
    tasks_stolen_.fetch_add(static_cast<int64_t>(stolen.size()),
                            std::memory_order_relaxed);
    *task = std::move(stolen.front());
    stolen.pop_front();
    if (!stolen.empty()) {
      std::lock_guard<std::mutex> my_lock(me.mu);
      auto& mine = me.queues[priority];
      for (auto& t : stolen) mine.push_back(std::move(t));
    }
    return true;
  }
  return false;
}

void Executor::WorkerLoop(int self) {
  tls_executor = this;
  tls_worker_index = self;
  Task task;
  for (;;) {
    bool have = PopOwn(self, &task);
    if (!have) have = StealInto(self, &task);
    if (have) {
      queue_wait_micros_.fetch_add(NowMicros() - task.enqueue_micros,
                                   std::memory_order_relaxed);
      // pending_ counts queued-not-dequeued; decrement before running so
      // the destructor's drain wait can't return while a task is queued.
      const int64_t left =
          pending_.fetch_sub(1, std::memory_order_acq_rel) - 1;
      {
        TagScope scope(task.tag);
        if (task.tag != 0) {
          const int64_t begin = NowMicros();
          task.fn();
          const int64_t busy = NowMicros() - begin;
          std::lock_guard<std::mutex> lock(tag_mu_);
          TagStats& ts = tag_stats_[task.tag];
          ++ts.tasks_executed;
          ts.busy_micros += busy;
        } else {
          task.fn();
        }
      }
      task.fn = nullptr;
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      if (left == 0) {
        // Same lost-wakeup hazard as Submit, mirrored: the destructor's
        // drain predicate reads pending_ under idle_mu_; pass through
        // the mutex so this notify can't slip into its check-then-block
        // window.
        { std::lock_guard<std::mutex> lock(idle_mu_); }
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mu_);
    if (stop_ && pending_.load(std::memory_order_acquire) == 0) return;
    idle_cv_.wait(lock, [this] {
      return stop_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_ && pending_.load(std::memory_order_acquire) == 0) return;
  }
}

TagStats Executor::tag_stats(uint64_t tag) const {
  std::lock_guard<std::mutex> lock(tag_mu_);
  auto it = tag_stats_.find(tag);
  return it == tag_stats_.end() ? TagStats{} : it->second;
}

ExecutorStats Executor::stats() const {
  ExecutorStats s;
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.tasks_stolen = tasks_stolen_.load(std::memory_order_relaxed);
  s.queue_wait_micros =
      queue_wait_micros_.load(std::memory_order_relaxed);
  return s;
}

Executor* Executor::Shared() {
  // Leaked on purpose: worker threads must never race static
  // destruction, and the executor is meant to live as long as the
  // process anyway.
  static Executor* shared = new Executor(std::max(
      4, static_cast<int>(std::thread::hardware_concurrency())));
  return shared;
}

int64_t Executor::instances_created() {
  return g_instances_created.load(std::memory_order_relaxed);
}

TaskGroup::TaskGroup(Executor* executor, Executor::Priority priority)
    : state_(std::make_shared<State>()),
      executor_(executor),
      priority_(priority) {}

void TaskGroup::RunOne(const std::shared_ptr<State>& state) {
  // Each executor thunk drains greedily: the group's queue is the source
  // of truth, so a Wait()er helping inline and a worker thunk can both
  // pull from it without double-running anything.
  for (;;) {
    std::function<void()> fn;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->queue.empty()) return;
      fn = std::move(state->queue.front());
      state->queue.pop_front();
      ++state->running;
    }
    fn();
    {
      std::lock_guard<std::mutex> lock(state->mu);
      --state->running;
      if (state->queue.empty() && state->running == 0) {
        state->cv.notify_all();
      }
    }
  }
}

void TaskGroup::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->queue.push_back(std::move(fn));
  }
  // The thunk holds the state alive even if it runs after Wait()
  // returned (a helper may have emptied the queue before the thunk ran).
  std::shared_ptr<State> state = state_;
  executor_->Submit([state] { RunOne(state); }, priority_);
}

void TaskGroup::Wait() {
  RunOne(state_);  // help: run everything still queued, inline
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] {
    return state_->queue.empty() && state_->running == 0;
  });
}

Throttle::Throttle(Executor* executor, int max_in_flight,
                   Executor::Priority priority)
    : state_(std::make_shared<State>()),
      executor_(executor),
      max_in_flight_(max_in_flight < 1 ? 1 : max_in_flight),
      priority_(priority) {}

void Throttle::Launch(const std::shared_ptr<State>& state,
                      Executor* executor, Executor::Priority priority,
                      std::function<void()> fn, uint64_t tag) {
  executor->Submit(
      [state, executor, priority, fn = std::move(fn)]() mutable {
        fn();
        fn = nullptr;
        // Keep the slot if work is pending: chain straight into the
        // next task rather than releasing and re-acquiring.
        PendingTask next;
        {
          std::lock_guard<std::mutex> lock(state->mu);
          if (state->pending.empty()) {
            --state->in_flight;
            return;
          }
          next = std::move(state->pending.front());
          state->pending.pop_front();
        }
        Launch(state, executor, priority, std::move(next.fn), next.tag);
      },
      priority, tag);
}

void Throttle::Submit(std::function<void()> fn) {
  const uint64_t tag = Executor::CurrentTag();
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->in_flight >= max_in_flight_) {
      state_->pending.push_back(PendingTask{std::move(fn), tag});
      return;
    }
    ++state_->in_flight;
  }
  Launch(state_, executor_, priority_, std::move(fn), tag);
}

void ReadySignal::Notify() {
  std::vector<std::function<void()>> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ready_) return;
    ready_ = true;
    callbacks = std::move(callbacks_);
    callbacks_.clear();
  }
  for (auto& cb : callbacks) cb();
}

bool ReadySignal::ready() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ready_;
}

void ReadySignal::OnReady(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!ready_) {
      callbacks_.push_back(std::move(fn));
      return;
    }
  }
  fn();
}

}  // namespace gesall

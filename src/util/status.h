// Status / Result error model for Gesall.
//
// Follows the Arrow/RocksDB idiom: no exceptions cross public API
// boundaries; fallible functions return Status (or Result<T> for a value).

#ifndef GESALL_UTIL_STATUS_H_
#define GESALL_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace gesall {

/// \brief Machine-readable classification of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kIOError,
  kCorruption,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kInternal,
  kCancelled,
  kUnavailable,
};

/// \brief Returns a human-readable name for a StatusCode ("IOError", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: OK, or a code plus message.
///
/// The OK state carries no allocation; error states allocate a small
/// state object so that Status stays one pointer wide.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// Transient overload shed: the caller should back off and retry
  /// (the service layer's admission-control rejection).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// Renders like "IOError: disk unreachable" (or "OK").
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // shared_ptr keeps Status cheaply copyable; error paths are cold.
  std::shared_ptr<State> state_;
};

/// \brief Either a value of type T or an error Status.
///
/// Modeled after arrow::Result. Access the value only after checking ok().
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status st) : v_(std::move(st)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(v_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(v_);
  }

  const T& ValueOrDie() const& {
    CheckOk();
    return std::get<T>(v_);
  }
  T& ValueOrDie() & {
    CheckOk();
    return std::get<T>(v_);
  }
  T&& ValueOrDie() && {
    CheckOk();
    return std::move(std::get<T>(v_));
  }

  /// Moves the value out; valid only when ok().
  T MoveValueUnsafe() { return std::move(std::get<T>(v_)); }

 private:
  void CheckOk() const;

  std::variant<T, Status> v_;
};

[[noreturn]] void AbortOnBadResult(const Status& st);

template <typename T>
void Result<T>::CheckOk() const {
  if (!ok()) AbortOnBadResult(status());
}

/// Propagates a non-OK Status out of the enclosing function.
#define GESALL_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::gesall::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (false)

#define GESALL_CONCAT_IMPL(a, b) a##b
#define GESALL_CONCAT(a, b) GESALL_CONCAT_IMPL(a, b)

/// Evaluates a Result-returning expression; on success binds the value to
/// `lhs`, on failure returns the error Status from the enclosing function.
#define GESALL_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  GESALL_ASSIGN_OR_RETURN_IMPL(                                    \
      GESALL_CONCAT(_gesall_result_, __LINE__), lhs, rexpr)

#define GESALL_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                 \
  if (!result_name.ok()) return result_name.status();         \
  lhs = result_name.MoveValueUnsafe()

}  // namespace gesall

#endif  // GESALL_UTIL_STATUS_H_

#include "service/service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>

#include "util/io.h"

namespace gesall {
namespace {

constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

// Job-log opcodes (on-disk format; never renumber).
constexpr uint8_t kOpSubmit = 1;
constexpr uint8_t kOpStart = 2;
constexpr uint8_t kOpRound = 3;
constexpr uint8_t kOpFinish = 4;

void EncodeFastq(BufferWriter* w, const std::vector<FastqRecord>& reads) {
  w->PutU32(static_cast<uint32_t>(reads.size()));
  for (const FastqRecord& r : reads) {
    w->PutString(r.name);
    w->PutString(r.sequence);
    w->PutString(r.quality);
  }
}

Status DecodeFastq(BufferReader* r, std::vector<FastqRecord>* out) {
  uint32_t n = 0;
  GESALL_RETURN_NOT_OK(r->GetU32(&n));
  out->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    GESALL_RETURN_NOT_OK(r->GetString(&(*out)[i].name));
    GESALL_RETURN_NOT_OK(r->GetString(&(*out)[i].sequence));
    GESALL_RETURN_NOT_OK(r->GetString(&(*out)[i].quality));
  }
  return Status::OK();
}

// The durable subset of a job: identity, service-level requirements, the
// sample itself, and the pipeline knobs that change outputs. The
// aligner/caller option structs are not persisted — a recovered job runs
// them at their defaults.
void EncodeJobPayload(BufferWriter* w, JobId id, const JobSpec& spec) {
  w->PutU64(id);
  w->PutString(spec.tenant);
  w->PutI64(spec.priority);
  w->PutF64(spec.deadline_seconds);
  w->PutF64(spec.timeout_seconds);
  EncodeFastq(w, spec.mate1);
  EncodeFastq(w, spec.mate2);
  const PipelineConfig& p = spec.pipeline;
  w->PutI64(p.alignment_partitions);
  w->PutI64(p.cleaning_reducers);
  w->PutI64(p.markdup_reducers);
  w->PutU8(p.markdup_use_bloom ? 1 : 0);
  w->PutI64(p.max_parallel_tasks);
  w->PutU8(p.use_combiners ? 1 : 0);
  w->PutString(p.read_group.id);
  w->PutString(p.read_group.sample);
  w->PutString(p.read_group.library);
  w->PutU8(p.use_streaming_alignment ? 1 : 0);
  w->PutU8(static_cast<uint8_t>(p.hc_partitioning));
  w->PutI64(p.hc_segments_per_chromosome);
  w->PutU8(static_cast<uint8_t>(p.variant_caller));
  w->PutU8(p.run_recalibration ? 1 : 0);
  w->PutU64(p.bloom_expected_items);
  w->PutF64(p.bloom_fpr);
  w->PutU8(p.pipelined ? 1 : 0);
}

Status DecodeJobPayload(BufferReader* r, JobId* id, JobSpec* spec) {
  uint64_t raw_id = 0;
  GESALL_RETURN_NOT_OK(r->GetU64(&raw_id));
  *id = raw_id;
  GESALL_RETURN_NOT_OK(r->GetString(&spec->tenant));
  int64_t priority = 0;
  GESALL_RETURN_NOT_OK(r->GetI64(&priority));
  spec->priority = static_cast<int>(priority);
  GESALL_RETURN_NOT_OK(r->GetF64(&spec->deadline_seconds));
  GESALL_RETURN_NOT_OK(r->GetF64(&spec->timeout_seconds));
  GESALL_RETURN_NOT_OK(DecodeFastq(r, &spec->mate1));
  GESALL_RETURN_NOT_OK(DecodeFastq(r, &spec->mate2));
  PipelineConfig& p = spec->pipeline;
  int64_t i64 = 0;
  uint64_t u64 = 0;
  uint8_t u8 = 0;
  GESALL_RETURN_NOT_OK(r->GetI64(&i64));
  p.alignment_partitions = static_cast<int>(i64);
  GESALL_RETURN_NOT_OK(r->GetI64(&i64));
  p.cleaning_reducers = static_cast<int>(i64);
  GESALL_RETURN_NOT_OK(r->GetI64(&i64));
  p.markdup_reducers = static_cast<int>(i64);
  GESALL_RETURN_NOT_OK(r->GetU8(&u8));
  p.markdup_use_bloom = u8 != 0;
  GESALL_RETURN_NOT_OK(r->GetI64(&i64));
  p.max_parallel_tasks = static_cast<int>(i64);
  GESALL_RETURN_NOT_OK(r->GetU8(&u8));
  p.use_combiners = u8 != 0;
  GESALL_RETURN_NOT_OK(r->GetString(&p.read_group.id));
  GESALL_RETURN_NOT_OK(r->GetString(&p.read_group.sample));
  GESALL_RETURN_NOT_OK(r->GetString(&p.read_group.library));
  GESALL_RETURN_NOT_OK(r->GetU8(&u8));
  p.use_streaming_alignment = u8 != 0;
  GESALL_RETURN_NOT_OK(r->GetU8(&u8));
  p.hc_partitioning = static_cast<PipelineConfig::HcPartitioning>(u8);
  GESALL_RETURN_NOT_OK(r->GetI64(&i64));
  p.hc_segments_per_chromosome = static_cast<int>(i64);
  GESALL_RETURN_NOT_OK(r->GetU8(&u8));
  p.variant_caller = static_cast<PipelineConfig::VariantCaller>(u8);
  GESALL_RETURN_NOT_OK(r->GetU8(&u8));
  p.run_recalibration = u8 != 0;
  GESALL_RETURN_NOT_OK(r->GetU64(&u64));
  p.bloom_expected_items = static_cast<size_t>(u64);
  GESALL_RETURN_NOT_OK(r->GetF64(&p.bloom_fpr));
  GESALL_RETURN_NOT_OK(r->GetU8(&u8));
  p.pipelined = u8 != 0;
  return Status::OK();
}

/// Job ids double as executor tags, and tag statistics live for the
/// process (Executor::Shared()): each service instance takes a disjoint
/// id range so a fresh service never inherits a previous instance's
/// accumulated busy time.
std::atomic<uint64_t> g_next_id_base{1};

/// Synthetic executor-time charge for a job that is running but has not
/// reported usage yet, so a burst of submissions from one tenant cannot
/// claim every runner slot while all consumed_micros are still zero.
constexpr int64_t kRunningChargeMicros = 50'000;

int64_t EstimateInputBytes(const JobSpec& spec) {
  int64_t bytes = 0;
  for (const auto* mate : {&spec.mate1, &spec.mate2}) {
    for (const FastqRecord& r : *mate) {
      bytes += static_cast<int64_t>(r.name.size() + r.sequence.size() +
                                    r.quality.size() + 3);
    }
  }
  return bytes;
}

/// Did any recovery machinery fire inside this job? Judged from the
/// job's own merged round counters, never cluster-wide DFS stats (those
/// mix in other tenants' history).
bool CountersIndicateRecovery(const JobCounters& c) {
  static const char* const kRecoveryCounters[] = {
      "map_task_retries",     "reduce_task_retries",
      "map_tasks_reexecuted", "map_outputs_lost_to_dead_nodes",
      "shuffle_fetch_corruptions", "map_splits_skipped",
      "speculative_wins"};
  for (const char* name : kRecoveryCounters) {
    if (c.Get(name) > 0) return true;
  }
  return false;
}

}  // namespace

GesallService::GesallService(const ReferenceGenome& reference,
                             const GenomeIndex& index, Dfs* dfs,
                             ServiceConfig config)
    : reference_(&reference),
      index_(&index),
      dfs_(dfs),
      config_(std::move(config)),
      executor_(config_.executor != nullptr ? config_.executor
                                            : Executor::Shared()),
      heartbeat_(dfs) {
  next_id_ = g_next_id_base.fetch_add(uint64_t{1} << 20);
  if (config_.durability.enabled()) RecoverJobs();
  if (config_.heartbeat_interval_ms > 0) {
    heartbeat_.Start(config_.heartbeat_interval_ms);
  }
  const int runners = std::max(1, config_.max_running_jobs);
  runners_.reserve(runners);
  for (int i = 0; i < runners; ++i) {
    runners_.emplace_back([this] { RunnerLoop(); });
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

GesallService::~GesallService() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
    // Fail still-queued jobs so their waiters unblock; running jobs are
    // left to finish (the runner loop exits once they do).
    std::vector<JobId> queued(queue_.begin(), queue_.end());
    for (JobId id : queued) {
      auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;
      JobOutput out;
      out.id = id;
      out.tenant = it->second->spec.tenant;
      out.status = Status::Cancelled("service shutdown");
      out.queue_seconds = clock_.ElapsedSeconds() - it->second->submitted_at;
      out.total_seconds = out.queue_seconds;
      // journal=false: a durable log keeps queued jobs across a graceful
      // shutdown so the next incarnation requeues them.
      FinishJobLocked(it->second, std::move(out), /*journal=*/false);
    }
    cv_sched_.notify_all();
    cv_done_.notify_all();
    // Drain Wait() callers: waiters on running jobs unblock when the
    // still-alive runners finish those jobs below; waiters on queued
    // jobs were just unblocked by the shutdown failures.
    cv_waiters_.wait(lock, [&] { return waiters_ == 0; });
  }
  for (std::thread& t : runners_) t.join();
  if (watchdog_.joinable()) watchdog_.join();
  heartbeat_.Stop();
}

Result<JobId> GesallService::Submit(JobSpec spec) {
  const int64_t bytes = EstimateInputBytes(spec);
  std::lock_guard<std::mutex> lock(mu_);
  stats_.submitted++;
  if (!recovery_status_.ok()) {
    // A broken durable log fails loudly rather than accepting work it
    // cannot journal.
    stats_.shed++;
    return recovery_status_;
  }
  const std::string retry =
      "; retry after " + std::to_string(config_.retry_after_ms) + "ms";
  if (state_ != State::kAccepting || stop_) {
    stats_.shed++;
    stats_.shed_draining++;
    return Status::Unavailable("service draining" + retry);
  }
  if (static_cast<int>(queue_.size()) >= config_.max_queue_depth) {
    stats_.shed++;
    stats_.shed_queue_depth++;
    return Status::Unavailable(
        "job queue full (" + std::to_string(queue_.size()) + ")" + retry);
  }
  if (in_flight_bytes_ + bytes > config_.max_in_flight_bytes) {
    stats_.shed++;
    stats_.shed_bytes++;
    return Status::Unavailable("in-flight byte budget exceeded" + retry);
  }
  Tenant& tenant = TenantEntryLocked(spec.tenant);
  if (tenant.queued >= tenant.quota.max_queued_jobs) {
    stats_.shed++;
    stats_.shed_tenant_quota++;
    return Status::Unavailable("tenant '" + spec.tenant +
                               "' queue quota exhausted" + retry);
  }

  const JobId id = next_id_++;
  auto job = std::make_shared<Job>();
  job->id = id;
  job->spec = std::move(spec);
  job->cancel = std::make_shared<CancelToken>();
  job->input_bytes = bytes;
  job->submitted_at = clock_.ElapsedSeconds();
  job->deadline_at = job->spec.deadline_seconds > 0
                         ? job->submitted_at + job->spec.deadline_seconds
                         : kNoDeadline;
  double timeout = job->spec.timeout_seconds > 0
                       ? job->spec.timeout_seconds
                       : config_.default_timeout_seconds;
  job->timeout_at = timeout > 0 ? job->submitted_at + timeout : 0;
  jobs_[id] = job;
  queue_.push_back(id);
  tenant.queued++;
  in_flight_bytes_ += bytes;
  stats_.admitted++;
  if (config_.durability.enabled()) {
    // The submit record is the admission commit point: if it cannot be
    // made durable the admission rolls back and the caller sees the
    // IOError (an accepted-but-forgettable job would violate the
    // recovery contract).
    std::string record;
    BufferWriter writer(&record);
    writer.PutU8(kOpSubmit);
    EncodeJobPayload(&writer, id, job->spec);
    Status journaled;
    {
      std::lock_guard<std::mutex> jlock(journal_mu_);
      journaled = store_ != nullptr ? store_->Append(record)
                                    : Status::Internal("job log missing");
    }
    if (!journaled.ok()) {
      journal_failures_++;
      jobs_.erase(id);
      queue_.pop_back();
      tenant.queued--;
      in_flight_bytes_ -= bytes;
      stats_.admitted--;
      return journaled;
    }
    journal_appends_++;
    MaybeCheckpointLocked();
  }
  cv_sched_.notify_all();
  return id;
}

Result<JobOutput> GesallService::Wait(JobId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown job id " + std::to_string(id));
  }
  std::shared_ptr<Job> job = it->second;
  // Counted so the destructor can drain waiters before tearing down the
  // mutex and condition variables they sleep on.
  waiters_++;
  cv_done_.wait(lock, [&] { return job->done; });
  JobOutput output = job->output;
  if (--waiters_ == 0) cv_waiters_.notify_all();
  return output;
}

Status GesallService::Cancel(JobId id, std::string cause) {
  std::shared_ptr<CancelToken> token;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return Status::NotFound("unknown job id " + std::to_string(id));
    }
    std::shared_ptr<Job> job = it->second;
    if (job->done) return Status::OK();
    if (!job->running) {
      JobOutput out;
      out.id = id;
      out.tenant = job->spec.tenant;
      out.status = Status::Cancelled(cause);
      out.queue_seconds = clock_.ElapsedSeconds() - job->submitted_at;
      out.total_seconds = out.queue_seconds;
      FinishJobLocked(job, std::move(out));
      return Status::OK();
    }
    token = job->cancel;
  }
  // Flip outside mu_: cancel callbacks (e.g. gated-split releases) run
  // inline and must not observe service locks.
  token->Cancel(std::move(cause));
  return Status::OK();
}

void GesallService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  if (state_ == State::kAccepting) {
    state_ = State::kDraining;
    stats_.drains++;
  }
  cv_sched_.notify_all();
  cv_done_.wait(lock, [&] { return running_count_ == 0; });
  if (state_ == State::kDraining) state_ = State::kDrained;
}

void GesallService::Restart() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kAccepting || stop_) return;
  state_ = State::kAccepting;
  stats_.restarts++;
  cv_sched_.notify_all();
}

GesallService::State GesallService::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

ServiceStats GesallService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats out = stats_;
  out.journal_records_appended = journal_appends_.load();
  out.journal_append_failures = journal_failures_.load();
  return out;
}

Status GesallService::recovery_status() const { return recovery_status_; }

ServiceRecoveryStats GesallService::recovery_stats() const {
  return recovery_;
}

int GesallService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

int GesallService::running_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_count_;
}

GesallService::Tenant& GesallService::TenantEntryLocked(
    const std::string& name) {
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return it->second;
  Tenant tenant;
  auto q = config_.tenants.find(name);
  tenant.quota = q != config_.tenants.end() ? q->second : config_.default_quota;
  if (tenant.quota.weight <= 0) tenant.quota.weight = 1.0;
  return tenants_.emplace(name, tenant).first->second;
}

JobId GesallService::PickNextJobLocked() {
  // Stage 1: the eligible tenant with the least consumed executor time
  // per unit weight (running jobs carry a synthetic charge until their
  // real usage lands). Ties break on tenant name for determinism.
  const std::string* best_tenant = nullptr;
  double best_score = 0;
  for (JobId id : queue_) {
    const std::string& name = jobs_.at(id)->spec.tenant;
    if (best_tenant != nullptr && name == *best_tenant) continue;
    const Tenant& t = tenants_.at(name);
    double score =
        static_cast<double>(t.consumed_micros +
                            t.running * kRunningChargeMicros) /
        t.quota.weight;
    if (best_tenant == nullptr || score < best_score ||
        (score == best_score && name < *best_tenant)) {
      best_tenant = &name;
      best_score = score;
    }
  }
  if (best_tenant == nullptr) return 0;
  // Stage 2: within the tenant, earliest deadline, then highest
  // priority, then FIFO.
  JobId best = 0;
  const Job* best_job = nullptr;
  for (JobId id : queue_) {
    const Job& job = *jobs_.at(id);
    if (job.spec.tenant != *best_tenant) continue;
    if (best_job == nullptr ||
        job.deadline_at < best_job->deadline_at ||
        (job.deadline_at == best_job->deadline_at &&
         (job.spec.priority > best_job->spec.priority ||
          (job.spec.priority == best_job->spec.priority && id < best)))) {
      best = id;
      best_job = &job;
    }
  }
  return best;
}

void GesallService::RunnerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_sched_.wait(lock, [&] {
      return stop_ ||
             (state_ == State::kAccepting && PickNextJobLocked() != 0);
    });
    if (stop_) return;
    const JobId id = PickNextJobLocked();
    if (id == 0) continue;
    std::shared_ptr<Job> job = jobs_.at(id);
    queue_.erase(std::find(queue_.begin(), queue_.end(), id));
    Tenant& tenant = TenantEntryLocked(job->spec.tenant);
    tenant.queued--;
    tenant.running++;
    job->running = true;
    running_count_++;
    lock.unlock();
    {
      std::string record;
      BufferWriter writer(&record);
      writer.PutU8(kOpStart);
      writer.PutU64(job->id);
      JournalBestEffort(record);
    }
    RunJob(job);
    lock.lock();
  }
}

void GesallService::PlanJob(Job* job, PipelineConfig* cfg,
                            JobOutput* out) const {
  // Online planning: describe this job's sample and the service's DFS
  // as a (tiny) cluster, and let the paper's enumerative optimizer pick
  // the cheapest plan meeting the deadline. The plan's knobs map onto
  // the functional pipeline's tunables.
  ClusterSpec cluster;
  cluster.name = "service";
  cluster.num_data_nodes = std::max(1, dfs_->num_data_nodes());
  WorkloadSpec workload;
  workload.read_pairs = static_cast<int64_t>(
      std::max<size_t>(1, job->spec.mate1.size()));
  if (!job->spec.mate1.empty()) {
    workload.read_length =
        std::max<int>(1, static_cast<int>(job->spec.mate1[0].sequence.size()));
  }
  PipelineOptimizer optimizer(cluster, workload, GenomicsRates{});
  OptimizerObjective objective;
  objective.deadline_seconds = job->spec.deadline_seconds;
  PipelinePlan plan = optimizer.Optimize(objective);
  cfg->alignment_partitions =
      std::max(1, plan.align_maps_per_node * plan.align_waves);
  cfg->max_parallel_tasks = std::max(1, plan.shuffle_slots_per_node);
  cfg->markdup_use_bloom = plan.markdup_optimized;
  out->planned = true;
  out->plan = plan;
}

void GesallService::RunJob(const std::shared_ptr<Job>& job) {
  JobOutput out;
  out.id = job->id;
  out.tenant = job->spec.tenant;
  const double run_start = clock_.ElapsedSeconds();

  PipelineConfig cfg = job->spec.pipeline;
  cfg.dfs_root = config_.dfs_root_prefix + "/" + job->spec.tenant + "/job-" +
                 std::to_string(job->id);
  cfg.auto_tick = false;  // the HeartbeatDriver owns the DFS clock
  cfg.cancel = job->cancel;
  if (cfg.executor == nullptr) cfg.executor = executor_;
  if (job->spec.deadline_seconds > 0) PlanJob(job.get(), &cfg, &out);
  const bool durable = config_.durability.enabled();
  if (durable) {
    // Rounds seal manifests in the job's DFS namespace, completed rounds
    // are skipped on a post-crash re-run, and a crash-cancelled job
    // keeps its sealed outputs for that resume.
    cfg.write_manifests = true;
    cfg.resume = true;
    cfg.preserve_outputs_on_cancel = true;
  }
  if (durable || config_.round_complete_hook) {
    const JobId id = job->id;
    cfg.on_round_complete = [this, id](int round_index,
                                       const std::string& round_name) {
      std::string record;
      BufferWriter writer(&record);
      writer.PutU8(kOpRound);
      writer.PutU64(id);
      writer.PutI64(round_index);
      writer.PutString(round_name);
      JournalBestEffort(record);
      if (config_.round_complete_hook) {
        config_.round_complete_hook(id, round_index, round_name);
      }
    };
  }

  {
    // Every task this pipeline submits inherits the job id as its
    // executor tag; usage lands in tag_stats for fair-share accounting.
    Executor::TagScope tag_scope(job->id);
    GesallPipeline pipeline(*reference_, *index_, dfs_, cfg);
    Status load = pipeline.LoadSample(job->spec.mate1, job->spec.mate2);
    if (!load.ok()) {
      out.status = load;
    } else {
      Result<std::vector<VariantRecord>> result = pipeline.RunAll();
      out.status = result.status();
      if (result.ok()) out.variants = result.MoveValueUnsafe();
    }
    for (const RoundStats& round : pipeline.stats()) {
      out.counters.Merge(round.counters);
    }
  }
  out.recovered = CountersIndicateRecovery(out.counters);
  out.busy_micros = executor_->tag_stats(job->id).busy_micros;
  const double end = clock_.ElapsedSeconds();
  out.queue_seconds = run_start - job->submitted_at;
  out.run_seconds = end - run_start;
  out.total_seconds = end - job->submitted_at;

  std::lock_guard<std::mutex> lock(mu_);
  FinishJobLocked(job, std::move(out));
}

void GesallService::FinishJobLocked(const std::shared_ptr<Job>& job,
                                    JobOutput output, bool journal) {
  Tenant& tenant = TenantEntryLocked(job->spec.tenant);
  if (job->running) {
    tenant.running--;
    tenant.consumed_micros += output.busy_micros;
    running_count_--;
    job->running = false;
  } else {
    auto it = std::find(queue_.begin(), queue_.end(), job->id);
    if (it != queue_.end()) queue_.erase(it);
    tenant.queued--;
  }
  in_flight_bytes_ -= job->input_bytes;
  if (output.status.ok()) {
    stats_.completed++;
    stats_.completed_by_tenant[job->spec.tenant]++;
    if (output.recovered) stats_.recovered_jobs++;
  } else if (output.status.IsCancelled()) {
    stats_.cancelled++;
  } else {
    stats_.failed++;
  }
  if (journal && !crashed_) {
    std::string record;
    BufferWriter writer(&record);
    writer.PutU8(kOpFinish);
    writer.PutU64(job->id);
    writer.PutI64(static_cast<int64_t>(output.status.code()));
    JournalBestEffort(record);
    MaybeCheckpointLocked();
  }
  job->output = std::move(output);
  job->done = true;
  cv_done_.notify_all();
  cv_sched_.notify_all();
}

// ---------------------------------------------------------------------
// Durable job log.

void GesallService::RecoverJobs() {
  recovery_status_ = ValidateDurabilityOptions(config_.durability);
  if (!recovery_status_.ok()) return;

  struct Pending {
    JobId id = 0;
    JobSpec spec;
  };
  std::vector<Pending> pending;  // original submit order (id order)
  JobId max_id = 0;
  auto add = [&](BufferReader* reader) -> Status {
    Pending p;
    GESALL_RETURN_NOT_OK(DecodeJobPayload(reader, &p.id, &p.spec));
    max_id = std::max(max_id, p.id);
    pending.push_back(std::move(p));
    return Status::OK();
  };
  auto load_snapshot = [&](std::string_view snapshot) -> Status {
    BufferReader reader(snapshot);
    uint32_t n = 0;
    GESALL_RETURN_NOT_OK(reader.GetU32(&n));
    for (uint32_t i = 0; i < n; ++i) GESALL_RETURN_NOT_OK(add(&reader));
    return Status::OK();
  };
  auto apply = [&](std::string_view record) -> Status {
    BufferReader reader(record);
    uint8_t op = 0;
    GESALL_RETURN_NOT_OK(reader.GetU8(&op));
    switch (op) {
      case kOpSubmit:
        return add(&reader);
      case kOpStart:
      case kOpRound:
        // Round-level progress is recovered from the DFS manifests, not
        // the job log; these records exist for observability.
        return Status::OK();
      case kOpFinish: {
        uint64_t id = 0;
        GESALL_RETURN_NOT_OK(reader.GetU64(&id));
        for (auto it = pending.begin(); it != pending.end(); ++it) {
          if (it->id == id) {
            pending.erase(it);
            break;
          }
        }
        return Status::OK();
      }
      default:
        return Status::Corruption("unknown job-log opcode " +
                                  std::to_string(op));
    }
  };
  auto store = std::make_unique<JournaledStore>(
      config_.durability.root_dir + "/service", config_.durability);
  recovery_status_ = store->Recover(load_snapshot, apply);
  if (!recovery_status_.ok()) return;

  // Requeue every unfinished job, bypassing admission control: recovered
  // work was already admitted once and is never shed, even if quotas
  // shrank meanwhile. Submit order (= id order) is preserved, and the
  // per-tenant queued counts plus the in-flight byte ledger are rebuilt
  // from the requeued set. Fairness state (consumed_micros) restarts at
  // zero — a deliberate reset, matching the process the crash killed.
  std::lock_guard<std::mutex> lock(mu_);
  const double now = clock_.ElapsedSeconds();
  for (Pending& p : pending) {
    auto job = std::make_shared<Job>();
    job->id = p.id;
    job->spec = std::move(p.spec);
    job->cancel = std::make_shared<CancelToken>();
    job->input_bytes = EstimateInputBytes(job->spec);
    job->submitted_at = now;  // service clocks restart with the process
    job->deadline_at = job->spec.deadline_seconds > 0
                           ? now + job->spec.deadline_seconds
                           : kNoDeadline;
    const double timeout = job->spec.timeout_seconds > 0
                               ? job->spec.timeout_seconds
                               : config_.default_timeout_seconds;
    job->timeout_at = timeout > 0 ? now + timeout : 0;
    jobs_[job->id] = job;
    queue_.push_back(job->id);
    TenantEntryLocked(job->spec.tenant).queued++;
    in_flight_bytes_ += job->input_bytes;
  }
  if (max_id >= next_id_) next_id_ = max_id + 1;
  recovery_.recovered = true;
  recovery_.snapshot_loaded = store->snapshot_loaded();
  recovery_.journal_records_replayed = store->replay_stats().records;
  recovery_.torn_tail = store->replay_stats().torn_tail;
  recovery_.jobs_recovered = static_cast<int64_t>(pending.size());
  std::lock_guard<std::mutex> jlock(journal_mu_);
  store_ = std::move(store);
}

void GesallService::JournalBestEffort(std::string_view record) {
  std::lock_guard<std::mutex> lock(journal_mu_);
  if (store_ == nullptr) return;
  if (store_->Append(record).ok()) {
    journal_appends_++;
  } else {
    journal_failures_++;
  }
}

void GesallService::MaybeCheckpointLocked() {
  std::lock_guard<std::mutex> jlock(journal_mu_);
  if (store_ == nullptr || !store_->ShouldCheckpoint()) return;
  // A failed checkpoint is not fatal: the journal stays authoritative
  // and recovery simply replays more records.
  if (store_->Checkpoint(EncodeSnapshotLocked()).ok()) {
    stats_.snapshots_written++;
  }
}

std::string GesallService::EncodeSnapshotLocked() const {
  std::string snapshot;
  BufferWriter writer(&snapshot);
  uint32_t live = 0;
  for (const auto& [id, job] : jobs_) {
    if (!job->done) live++;
  }
  writer.PutU32(live);
  // Running jobs are still unfinished — a crash loses their in-memory
  // progress, so the snapshot carries them for requeue exactly like
  // queued ones (their sealed rounds skip on resume).
  for (const auto& [id, job] : jobs_) {
    if (job->done) continue;
    EncodeJobPayload(&writer, id, job->spec);
  }
  return snapshot;
}

Status GesallService::SimulateCrash() {
  if (!config_.durability.enabled()) {
    return Status::InvalidArgument(
        "SimulateCrash requires ServiceConfig::durability");
  }
  std::vector<std::shared_ptr<CancelToken>> to_cancel;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) return Status::OK();
    crashed_ = true;
    stop_ = true;
    // Queued jobs die with the process. Their waiters unblock with
    // Unavailable, but nothing is journaled: the log still names them
    // unfinished, which is exactly what the next incarnation recovers.
    std::vector<JobId> queued(queue_.begin(), queue_.end());
    const double now = clock_.ElapsedSeconds();
    for (JobId id : queued) {
      auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;
      JobOutput out;
      out.id = id;
      out.tenant = it->second->spec.tenant;
      out.status = Status::Unavailable("simulated crash");
      out.queue_seconds = now - it->second->submitted_at;
      out.total_seconds = out.queue_seconds;
      FinishJobLocked(it->second, std::move(out), /*journal=*/false);
    }
    for (const auto& [id, job] : jobs_) {
      if (job->running && !job->done) to_cancel.push_back(job->cancel);
    }
    cv_sched_.notify_all();
  }
  // Flip outside mu_ (cancel callbacks run inline) and wait for the
  // runners to unwind their pipelines cooperatively.
  for (auto& token : to_cancel) token->Cancel("simulated crash");
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return running_count_ == 0; });
  }
  for (std::thread& t : runners_) t.join();
  runners_.clear();
  if (watchdog_.joinable()) watchdog_.join();
  heartbeat_.Stop();
  // Drop the log handle with no checkpoint and no farewell record: the
  // on-disk state is exactly what a power loss leaves behind.
  std::lock_guard<std::mutex> jlock(journal_mu_);
  store_.reset();
  return Status::OK();
}

void GesallService::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_sched_.wait_for(
        lock, std::chrono::milliseconds(std::max(1, config_.watchdog_interval_ms)));
    if (stop_) break;
    const double now = clock_.ElapsedSeconds();
    // Queued jobs past their budget are failed in place.
    std::vector<JobId> queued(queue_.begin(), queue_.end());
    for (JobId id : queued) {
      std::shared_ptr<Job> job = jobs_.at(id);
      if (job->timeout_at <= 0 || now < job->timeout_at) continue;
      stats_.timed_out++;
      JobOutput out;
      out.id = id;
      out.tenant = job->spec.tenant;
      out.status = Status::Cancelled("job timed out in queue");
      out.queue_seconds = now - job->submitted_at;
      out.total_seconds = out.queue_seconds;
      FinishJobLocked(job, std::move(out));
    }
    // Running jobs past their budget get their token flipped; the
    // pipeline unwinds cooperatively and the runner records the result.
    std::vector<std::shared_ptr<CancelToken>> to_cancel;
    for (const auto& [id, job] : jobs_) {
      if (job->running && !job->done && job->timeout_at > 0 &&
          now >= job->timeout_at && !job->cancel->cancelled()) {
        stats_.timed_out++;
        to_cancel.push_back(job->cancel);
      }
    }
    if (!to_cancel.empty()) {
      lock.unlock();
      for (auto& token : to_cancel) token->Cancel("job timeout exceeded");
      lock.lock();
    }
  }
}

}  // namespace gesall

// gesalld: the long-lived multi-tenant pipeline service (ROADMAP item 1).
//
// The paper's evaluation assumes one batch job owning the whole cluster;
// a genome center runs the opposite: many concurrent samples from many
// tenants flowing through one shared executor and one DFS, where one
// tenant's crash, corruption, or overload must not take down the rest.
// GesallService composes the existing machinery into that service:
//
//  - Admission control: a bounded job queue (depth + in-flight input
//    bytes + per-tenant quota). Over-limit submissions are shed with
//    Status::Unavailable carrying a retry-after hint instead of queueing
//    without bound — overload degrades into explicit rejections, not
//    collapse.
//  - Weighted-fair scheduling: runners pick the eligible tenant with the
//    least consumed executor time per unit weight (measured via per-job
//    task tags, Executor::TagScope), then the earliest deadline /
//    highest priority / oldest job within that tenant.
//  - Online planning: a job with a deadline is passed through
//    PipelineOptimizer::Optimize at admission, and the chosen plan's
//    knobs (partition counts, MarkDup variant, slot budget) configure
//    that job's pipeline.
//  - Isolation: every job runs in its own DFS namespace
//    ("<prefix>/<tenant>/job-<id>") with its own CancelToken; timeouts
//    and client cancellation propagate through the MR state machine so a
//    stuck or unwanted job releases its slots.
//  - Continuous heartbeats: a HeartbeatDriver ticks the DFS clock
//    independently of pipeline rounds, so dead-node detection and
//    re-replication keep running while the service sits idle.
//  - Graceful drain: Drain() stops admission and returns once in-flight
//    jobs finished; queued jobs stay checkpointed in the queue and
//    resume — against the same Dfs — after Restart().
//
// State machine: kAccepting --Drain()--> kDraining --last job-->
// kDrained --Restart()--> kAccepting. Submissions during kDraining /
// kDrained are shed with Unavailable("draining").

#ifndef GESALL_SERVICE_SERVICE_H_
#define GESALL_SERVICE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dfs/heartbeat.h"
#include "gesall/pipeline.h"
#include "sim/optimizer.h"
#include "util/cancel.h"
#include "util/executor.h"
#include "util/stopwatch.h"
#include "util/wal.h"

namespace gesall {

using JobId = uint64_t;

/// \brief Per-tenant scheduling weight and queue quota.
struct TenantQuota {
  /// Weighted-fair share: a tenant with weight 2 may consume twice the
  /// executor time of a weight-1 tenant before losing scheduling
  /// preference.
  double weight = 1.0;
  /// Queued (not yet running) jobs this tenant may hold; submissions
  /// beyond it are shed even when the global queue has room.
  int max_queued_jobs = 4;
};

/// \brief Service-wide limits and wiring.
struct ServiceConfig {
  /// Concurrent pipelines (runner threads). Each runs one job end to
  /// end on the shared executor.
  int max_running_jobs = 2;
  /// Global bound on queued jobs; submissions beyond it are shed.
  int max_queue_depth = 8;
  /// Bound on the summed input-byte estimate of queued + running jobs.
  int64_t max_in_flight_bytes = 1LL << 30;
  /// Retry-after hint embedded in shed responses, milliseconds.
  int retry_after_ms = 50;
  /// Default quota for tenants absent from `tenants`.
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> tenants;
  /// Wall-clock budget for a job from admission to completion; jobs
  /// exceeding it are cancelled with a timeout cause. 0 disables.
  double default_timeout_seconds = 0;
  /// HeartbeatDriver cadence. 0 keeps the driver stopped (tests then
  /// advance the clock manually via heartbeat()->TickNow()).
  int heartbeat_interval_ms = 2;
  /// Watchdog scan cadence for timeouts (milliseconds).
  int watchdog_interval_ms = 5;
  /// DFS namespace prefix; jobs run under "<prefix>/<tenant>/job-<id>".
  std::string dfs_root_prefix = "/jobs";
  /// Executor jobs run on (not owned). Null = Executor::Shared().
  Executor* executor = nullptr;
  /// Durable job log. When enabled (root_dir set), every submission,
  /// start, round completion, and finish is journaled under
  /// "<root_dir>/service", jobs run with durable round manifests in
  /// their DFS namespace, and a fresh service constructed on the same
  /// root requeues every unfinished job — resuming mid-flight ones from
  /// their last sealed round. Pair it with a Dfs whose DfsOptions
  /// carry the same root so the manifests themselves survive.
  DurabilityOptions durability;
  /// Test hook: fired (without service locks) after a running job seals
  /// or skips a pipeline round, right after the round is journaled.
  std::function<void(JobId id, int round_index,
                     const std::string& round_name)>
      round_complete_hook;
};

/// \brief One submitted sample plus its service-level requirements.
struct JobSpec {
  std::string tenant = "default";
  std::vector<FastqRecord> mate1;
  std::vector<FastqRecord> mate2;
  /// Higher runs earlier within the tenant (after deadline order).
  int priority = 0;
  /// Turnaround requirement, seconds from submission. >0 enables both
  /// EDF ordering and the online planner (PipelineOptimizer) for this
  /// job. Purely advisory for completion: exceeding a deadline does not
  /// kill the job (use timeout_seconds for that).
  double deadline_seconds = 0;
  /// Per-job override of ServiceConfig::default_timeout_seconds
  /// (0 = inherit).
  double timeout_seconds = 0;
  /// Base pipeline configuration (fault injector, partition counts,
  /// ...). The service overrides dfs_root, executor, auto_tick, and
  /// cancel; the planner may override partition/slot knobs.
  PipelineConfig pipeline;
};

/// \brief Everything a completed (or failed) job reports back.
struct JobOutput {
  JobId id = 0;
  std::string tenant;
  /// OK with variants on success; Cancelled / error status otherwise.
  Status status;
  std::vector<VariantRecord> variants;
  double queue_seconds = 0;
  double run_seconds = 0;
  double total_seconds = 0;
  /// True when any recovery machinery fired inside this job (task
  /// retries, lost-map-output re-execution, replica failover) — from
  /// the job's own round counters, not cluster-wide DFS stats.
  bool recovered = false;
  /// Executor time consumed by this job's tagged tasks, microseconds.
  int64_t busy_micros = 0;
  /// The optimizer's plan when deadline_seconds > 0 (planned == true).
  bool planned = false;
  PipelinePlan plan;
  JobCounters counters;
};

/// \brief Monotonic service counters.
struct ServiceStats {
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t shed = 0;  // all admission rejections
  int64_t shed_queue_depth = 0;
  int64_t shed_bytes = 0;
  int64_t shed_tenant_quota = 0;
  int64_t shed_draining = 0;
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t cancelled = 0;
  int64_t timed_out = 0;
  /// Completed jobs whose output reported recovered == true.
  int64_t recovered_jobs = 0;
  int64_t drains = 0;
  int64_t restarts = 0;
  std::map<std::string, int64_t> completed_by_tenant;
  /// Durable-log activity (0 when durability is off).
  int64_t journal_records_appended = 0;
  int64_t journal_append_failures = 0;
  int64_t snapshots_written = 0;
};

/// \brief What the constructor recovered from a durable job log.
struct ServiceRecoveryStats {
  bool recovered = false;
  bool snapshot_loaded = false;
  int64_t journal_records_replayed = 0;
  bool torn_tail = false;
  /// Unfinished jobs requeued (in original submit order, bypassing
  /// admission control — recovered work is never shed).
  int64_t jobs_recovered = 0;
};

/// \brief The long-lived multi-tenant pipeline service.
class GesallService {
 public:
  enum class State { kAccepting, kDraining, kDrained };

  /// Reference/index/dfs are borrowed and must outlive the service.
  GesallService(const ReferenceGenome& reference, const GenomeIndex& index,
                Dfs* dfs, ServiceConfig config = {});
  /// Drains (cancelling queued jobs so waiters unblock) and joins every
  /// service thread.
  ~GesallService();

  GesallService(const GesallService&) = delete;
  GesallService& operator=(const GesallService&) = delete;

  /// Admission control: returns the job id, or Status::Unavailable with
  /// a retry-after hint when shedding (queue depth, byte budget, tenant
  /// quota, or draining).
  Result<JobId> Submit(JobSpec spec);

  /// Blocks until the job finishes and returns its output (the output's
  /// own `status` carries failure/cancellation). NotFound for unknown
  /// ids. May be called from any thread, repeatedly.
  Result<JobOutput> Wait(JobId id);

  /// Cancels a queued job immediately or flips a running job's token
  /// (its pipeline unwinds cooperatively). No-op on finished jobs.
  Status Cancel(JobId id, std::string cause);

  /// Stops admission and blocks until every running job finished.
  /// Queued jobs stay checkpointed and resume after Restart().
  void Drain();

  /// Resumes admission and scheduling against the same Dfs.
  void Restart();

  /// Chaos hook: as-if kill -9. Stops admission, cancels running jobs,
  /// joins every service thread, and drops the journal handle WITHOUT
  /// checkpointing or journaling the synthetic cancellations — exactly
  /// the state a power loss leaves behind. The instance is dead
  /// afterwards (only Wait/stats work); construct a fresh service on the
  /// same durability root to recover. InvalidArgument when durability is
  /// off.
  Status SimulateCrash();

  /// OK, or why the durable log could not be recovered at construction
  /// (the error also fails every Submit, so a broken log is loud).
  Status recovery_status() const;
  ServiceRecoveryStats recovery_stats() const;

  State state() const;
  ServiceStats stats() const;
  int queue_depth() const;
  int running_jobs() const;
  /// The continuous tick driver (for tests: TickNow on a stopped
  /// driver).
  HeartbeatDriver* heartbeat() { return &heartbeat_; }

 private:
  struct Job {
    JobId id = 0;
    JobSpec spec;
    std::shared_ptr<CancelToken> cancel;
    int64_t input_bytes = 0;
    double submitted_at = 0;  // service clock, seconds
    double deadline_at = 0;   // absolute; infinity when none
    double timeout_at = 0;    // absolute; infinity when none
    bool running = false;
    bool done = false;
    JobOutput output;
  };
  struct Tenant {
    TenantQuota quota;
    int queued = 0;
    int running = 0;
    /// Tagged executor time already charged, for weighted fairness.
    int64_t consumed_micros = 0;
  };

  void RunnerLoop();
  void WatchdogLoop();
  /// Builds the JournaledStore, replays the job log, and requeues every
  /// unfinished job in submit order (admission bypassed). Runs in the
  /// constructor before any service thread starts.
  void RecoverJobs();
  /// Appends one record; failures land in journal_append_failures (the
  /// service keeps running — the log degrades, never the data path).
  void JournalBestEffort(std::string_view record);
  void MaybeCheckpointLocked();
  std::string EncodeSnapshotLocked() const;
  /// Picks the next job id per the weighted-fair policy; 0 when none
  /// eligible. Caller holds mu_.
  JobId PickNextJobLocked();
  Tenant& TenantEntryLocked(const std::string& name);
  /// `journal=false` skips the finish record — used for the synthetic
  /// shutdown/crash cancellations, which a durable log must NOT record
  /// (those jobs are exactly the ones the next incarnation recovers).
  void FinishJobLocked(const std::shared_ptr<Job>& job, JobOutput output,
                       bool journal = true);
  void RunJob(const std::shared_ptr<Job>& job);
  /// Maps the optimizer's plan onto the job's PipelineConfig.
  void PlanJob(Job* job, PipelineConfig* cfg, JobOutput* out) const;

  const ReferenceGenome* reference_;
  const GenomeIndex* index_;
  Dfs* dfs_;
  ServiceConfig config_;
  Executor* executor_;
  HeartbeatDriver heartbeat_;
  Stopwatch clock_;

  mutable std::mutex mu_;
  std::condition_variable cv_sched_;  // runners + drain waiters
  std::condition_variable cv_done_;   // Wait()ers
  std::condition_variable cv_waiters_;  // destructor draining Wait()ers
  State state_ = State::kAccepting;   // guarded by mu_
  bool stop_ = false;                 // guarded by mu_
  bool crashed_ = false;              // guarded by mu_
  JobId next_id_ = 1;                 // guarded by mu_
  std::map<JobId, std::shared_ptr<Job>> jobs_;      // guarded by mu_
  std::deque<JobId> queue_;                         // guarded by mu_
  std::map<std::string, Tenant> tenants_;           // guarded by mu_
  int running_count_ = 0;                           // guarded by mu_
  int waiters_ = 0;                                 // guarded by mu_
  int64_t in_flight_bytes_ = 0;                     // guarded by mu_
  ServiceStats stats_;                              // guarded by mu_

  // Durable job log. journal_mu_ guards the store_ pointer itself
  // (SimulateCrash drops it while round hooks may be appending);
  // JournaledStore serializes its own operations. Lock order: mu_ may
  // be held when taking journal_mu_, never the reverse.
  mutable std::mutex journal_mu_;
  std::unique_ptr<JournaledStore> store_;       // guarded by journal_mu_
  /// Atomic because the round hook appends without holding mu_.
  std::atomic<int64_t> journal_appends_{0};
  std::atomic<int64_t> journal_failures_{0};
  Status recovery_status_ = Status::OK();       // set in ctor, then const
  ServiceRecoveryStats recovery_;               // set in ctor, then const

  std::vector<std::thread> runners_;
  std::thread watchdog_;
};

}  // namespace gesall

#endif  // GESALL_SERVICE_SERVICE_H_

// HDFS-like distributed block store (paper §3.1 substrate).
//
// Files are split into fixed-size blocks, replicated across data nodes.
// Placement is pluggable: the default policy spreads blocks, while
// LogicalPartitionPlacementPolicy pins all blocks of one file to one data
// node — the custom BlockPlacementPolicy Gesall registers so logical
// partitions are never split across nodes (paper §3.1 feature 2).

#ifndef GESALL_DFS_DFS_H_
#define GESALL_DFS_DFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace gesall {

class FaultInjector;

/// \brief Cluster-level DFS parameters.
struct DfsOptions {
  int64_t block_size = 128 * 1024 * 1024;  // Hadoop default: 128 MB
  int replication = 3;
  int num_data_nodes = 4;
  /// Consecutive replica-read failures before a data node is blacklisted
  /// (reads stop trying its replicas until MarkNodeUp).
  int blacklist_threshold = 3;
};

/// \brief Read-path fault-tolerance telemetry.
struct DfsStats {
  /// Individual replica reads that failed (injected or node down/blacklisted).
  int64_t replica_read_failures = 0;
  /// Block reads served by a non-first replica after >= 1 failure.
  int64_t blocks_failed_over = 0;
  /// Block reads where every replica failed (surfaced as IOError).
  int64_t reads_failed = 0;
  /// Nodes blacklisted after blacklist_threshold consecutive failures.
  int64_t nodes_blacklisted = 0;
};

/// \brief Location metadata of one stored block.
struct BlockLocation {
  int64_t block_id = 0;
  int64_t offset = 0;  // byte offset within the file
  int64_t length = 0;
  std::vector<int> replicas;  // data node ids
};

/// \brief Chooses data nodes for each block of a file.
class BlockPlacementPolicy {
 public:
  virtual ~BlockPlacementPolicy() = default;
  /// Returns `replication` distinct node ids (first is primary).
  virtual std::vector<int> Place(const std::string& path,
                                 int64_t block_index, int num_nodes,
                                 int replication) = 0;
};

/// \brief Hadoop-like default: primary rotates per block, replicas follow.
class DefaultPlacementPolicy : public BlockPlacementPolicy {
 public:
  std::vector<int> Place(const std::string& path, int64_t block_index,
                         int num_nodes, int replication) override;
};

/// \brief Gesall's custom policy: ALL blocks of a file land on the same
/// primary node (chosen by file-path hash), so a logical partition is
/// readable node-locally by one task.
class LogicalPartitionPlacementPolicy : public BlockPlacementPolicy {
 public:
  std::vector<int> Place(const std::string& path, int64_t block_index,
                         int num_nodes, int replication) override;

  /// The primary node a path maps to (exposed for scheduling/locality).
  static int PrimaryNodeFor(const std::string& path, int num_nodes);
};

/// \brief In-process DFS: namespace + replicated block storage.
class Dfs {
 public:
  explicit Dfs(DfsOptions options = {});

  /// Writes (or replaces) a file. `policy` defaults to the spread policy.
  Status Write(const std::string& path, std::string_view data,
               BlockPlacementPolicy* policy = nullptr);

  Result<std::string> Read(const std::string& path) const;

  /// Reads [offset, offset+length) of a file.
  Result<std::string> ReadRange(const std::string& path, int64_t offset,
                                int64_t length) const;

  Result<std::vector<BlockLocation>> Locate(const std::string& path) const;
  Result<int64_t> FileSize(const std::string& path) const;
  bool Exists(const std::string& path) const;
  Status Delete(const std::string& path);

  /// Paths starting with `prefix`, sorted.
  std::vector<std::string> List(const std::string& prefix) const;

  /// Marks a data node unavailable; reads fall back to other replicas.
  Status MarkNodeDown(int node);
  /// Restores a node and clears its blacklist/failure state.
  Status MarkNodeUp(int node);

  /// Bytes of block data stored on one node (replicas included).
  int64_t BytesStoredOn(int node) const;

  /// Chaos source consulted at the "dfs.read_replica" fault point with
  /// (key = block id, attempt = replica position). Not owned; nullptr
  /// disables injection.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Snapshot of the read-path failover telemetry.
  DfsStats stats() const;
  void ResetStats();

  /// True when the node was blacklisted by consecutive read failures.
  bool IsBlacklisted(int node) const;

  int num_data_nodes() const { return options_.num_data_nodes; }
  int64_t block_size() const { return options_.block_size; }

 private:
  struct FileMeta {
    std::vector<int64_t> blocks;
    int64_t size = 0;
  };
  struct DataNode {
    std::map<int64_t, std::string> blocks;
    bool up = true;
  };
  struct BlockMeta {
    int64_t length = 0;
    std::vector<int> replicas;
  };

  // Mutable read-path health state: reads are logically const but track
  // failures, blacklisting, and failover telemetry.
  struct NodeHealth {
    int consecutive_failures = 0;
    bool blacklisted = false;
  };

  Result<const FileMeta*> Meta(const std::string& path) const;
  // Serves one block from the first healthy replica, recording failover
  // telemetry. Returns nullptr when every replica failed.
  const std::string* ReadBlockReplicas(int64_t block_id,
                                       const BlockMeta& bm) const;

  DfsOptions options_;
  DefaultPlacementPolicy default_policy_;
  std::map<std::string, FileMeta> files_;
  std::map<int64_t, BlockMeta> blocks_;
  std::vector<DataNode> nodes_;
  int64_t next_block_id_ = 1;
  FaultInjector* injector_ = nullptr;
  mutable std::mutex health_mu_;
  mutable std::vector<NodeHealth> health_;
  mutable DfsStats stats_;
};

}  // namespace gesall

#endif  // GESALL_DFS_DFS_H_

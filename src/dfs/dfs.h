// HDFS-like distributed block store (paper §3.1 substrate).
//
// Files are split into fixed-size blocks, replicated across data nodes.
// Placement is pluggable: the default policy spreads blocks, while
// LogicalPartitionPlacementPolicy pins all blocks of one file to one data
// node — the custom BlockPlacementPolicy Gesall registers so logical
// partitions are never split across nodes (paper §3.1 feature 2).
//
// Data integrity and liveness mirror HDFS:
//  - Every block carries per-chunk CRC32C sums computed at write time
//    (the .meta checksum file analog). Reads verify a replica before
//    serving it; a corrupted replica is detected, skipped via the normal
//    failover path, quarantined (dropped from the block map), and later
//    re-replicated from a healthy copy.
//  - Tick() advances a logical heartbeat clock. Nodes that stop
//    heartbeating (crashed via CrashNode or the "node.crash" fault
//    point) are declared dead after heartbeat_miss_threshold missed
//    intervals; the namenode then drops their replicas and a scrubber
//    pass re-replicates every under-replicated block onto live nodes.

#ifndef GESALL_DFS_DFS_H_
#define GESALL_DFS_DFS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"
#include "util/wal.h"

namespace gesall {

class BufferReader;
class BufferWriter;
class Executor;
class FaultInjector;

/// \brief Cluster-level DFS parameters.
struct DfsOptions {
  int64_t block_size = 128 * 1024 * 1024;  // Hadoop default: 128 MB
  int replication = 3;
  int num_data_nodes = 4;
  /// Consecutive replica-read failures before a data node is blacklisted
  /// (reads stop trying its replicas until MarkNodeUp).
  int blacklist_threshold = 3;
  /// Granularity of the per-block CRC32C sums (HDFS stores one sum per
  /// io.bytes.per.checksum slice; 64 KiB keeps metadata small while
  /// localizing corruption).
  int64_t checksum_chunk_bytes = 64 * 1024;
  /// Missed heartbeat intervals before a silent node is declared dead
  /// and its blocks are re-replicated (dfs.namenode.heartbeat
  /// recheck-interval analog, in Tick() units).
  int heartbeat_miss_threshold = 2;
  /// Store block payloads as BGZF-framed compressed blocks
  /// (mapreduce intermediate-compression analog for DFS round parts).
  /// Transparent to readers: ReadRange decompresses lazily, one 64 KiB
  /// block at a time, so a small range never inflates a whole DFS block.
  /// Replication, per-chunk CRC32C sums, corruption quarantine, and
  /// durable payload files all operate on the stored (compressed) bytes.
  bool compress_parts = false;
  /// zlib level for compress_parts (-1 = zlib default, else 0..9).
  int compress_level = -1;
  /// Namenode durability (HDFS fsimage/editlog analog). When
  /// durability.root_dir is set, block payloads persist as files under
  /// "<root>/blocks/", namespace mutations (create/delete/re-replicate/
  /// quarantine) are journaled under "<root>/namespace/" with periodic
  /// snapshots, and construction replays journal + snapshot — so a new
  /// Dfs on the same root (or SimulateCrash) reconstructs every file.
  /// Empty root_dir keeps the historical in-memory-only behavior.
  DurabilityOptions durability;
};

/// \brief Read-path fault-tolerance and integrity telemetry.
struct DfsStats {
  /// Individual replica reads that failed (injected or node down/blacklisted).
  int64_t replica_read_failures = 0;
  /// Block reads served by a non-first replica after >= 1 failure.
  int64_t blocks_failed_over = 0;
  /// Block reads where every replica failed (surfaced as IOError).
  int64_t reads_failed = 0;
  /// Nodes blacklisted after blacklist_threshold consecutive failures.
  int64_t nodes_blacklisted = 0;
  /// Replicas whose bytes failed CRC32C verification on read or scrub.
  int64_t corruptions_detected = 0;
  /// Corrupt replicas dropped from the block map (always re-replicated
  /// by the next scrubber pass while a healthy copy exists).
  int64_t replicas_quarantined = 0;
  /// New replicas created by the scrubber for under-replicated blocks.
  int64_t blocks_re_replicated = 0;
  int64_t bytes_re_replicated = 0;
  /// Nodes declared dead after heartbeat_miss_threshold missed beats.
  int64_t nodes_declared_dead = 0;
  /// Nodes brought back via RestartNode or the "node.restart" point.
  int64_t node_restarts = 0;
  /// Namespace mutations appended to the durability journal.
  int64_t journal_records_appended = 0;
  /// fsimage-style snapshots written by checkpointing.
  int64_t snapshots_written = 0;
  /// Best-effort journal appends (read-path quarantine, scrubber) that
  /// failed; write-path journal failures surface as IOError instead.
  int64_t journal_append_failures = 0;
  /// Logical (pre-compression) payload bytes written. Equal to
  /// bytes_written_stored when compress_parts is off.
  int64_t bytes_written_raw = 0;
  /// On-disk payload bytes written (per replica copies not included —
  /// this is the canonical-copy size, the Fig-10 "disk bytes" axis).
  int64_t bytes_written_stored = 0;
  /// CPU time in deflate at write time (compress_parts only).
  int64_t compress_micros = 0;
  /// CPU time in inflate on the read path (compress_parts only).
  int64_t decompress_micros = 0;
};

/// \brief What the last recovery (construction or SimulateCrash) rebuilt.
struct DfsRecoveryStats {
  /// True when this Dfs ran durable recovery at all.
  bool recovered = false;
  bool snapshot_loaded = false;
  int64_t journal_records_replayed = 0;
  /// A torn journal tail (crash mid-append) was discarded.
  bool torn_tail = false;
  int64_t files_recovered = 0;
  int64_t blocks_recovered = 0;
  /// Files dropped because a block payload was missing on disk (journal
  /// record durable, payload write lost — the file never fully landed).
  int64_t files_dropped = 0;
};

/// \brief Location metadata of one stored block.
struct BlockLocation {
  int64_t block_id = 0;
  int64_t offset = 0;  // byte offset within the file
  int64_t length = 0;
  std::vector<int> replicas;  // data node ids
};

/// \brief Chooses data nodes for each block of a file.
class BlockPlacementPolicy {
 public:
  virtual ~BlockPlacementPolicy() = default;
  /// Returns `replication` distinct node ids (first is primary).
  virtual std::vector<int> Place(const std::string& path,
                                 int64_t block_index, int num_nodes,
                                 int replication) = 0;
};

/// \brief Hadoop-like default: primary rotates per block, replicas follow.
class DefaultPlacementPolicy : public BlockPlacementPolicy {
 public:
  std::vector<int> Place(const std::string& path, int64_t block_index,
                         int num_nodes, int replication) override;
};

/// \brief Gesall's custom policy: ALL blocks of a file land on the same
/// primary node (chosen by file-path hash), so a logical partition is
/// readable node-locally by one task.
class LogicalPartitionPlacementPolicy : public BlockPlacementPolicy {
 public:
  std::vector<int> Place(const std::string& path, int64_t block_index,
                         int num_nodes, int replication) override;

  /// The primary node a path maps to (exposed for scheduling/locality).
  static int PrimaryNodeFor(const std::string& path, int num_nodes);
};

/// \brief In-process DFS: namespace + replicated block storage.
class Dfs {
 public:
  /// Rejects inconsistent cluster parameters (replication outside
  /// [1, num_data_nodes], non-positive block/chunk sizes, ...). A Dfs
  /// constructed from invalid options returns this status from every
  /// operation instead of silently misbehaving.
  static Status ValidateOptions(const DfsOptions& options);

  explicit Dfs(DfsOptions options = {});

  /// Writes (or replaces) a file. `policy` defaults to the spread policy.
  /// Per-chunk CRC32C sums are computed for every block at write time.
  Status Write(const std::string& path, std::string_view data,
               BlockPlacementPolicy* policy = nullptr);

  Result<std::string> Read(const std::string& path) const;

  /// Reads [offset, offset+length) of a file.
  Result<std::string> ReadRange(const std::string& path, int64_t offset,
                                int64_t length) const;

  Result<std::vector<BlockLocation>> Locate(const std::string& path) const;
  Result<int64_t> FileSize(const std::string& path) const;
  bool Exists(const std::string& path) const;
  Status Delete(const std::string& path);

  /// Paths starting with `prefix`, sorted.
  std::vector<std::string> List(const std::string& prefix) const;

  /// Marks a data node unavailable; reads fall back to other replicas.
  Status MarkNodeDown(int node);
  /// Restores a node and clears its blacklist/failure state.
  Status MarkNodeUp(int node);

  /// Whole-node crash: the node stops serving reads and stops
  /// heartbeating; its stored blocks survive until it is declared dead.
  Status CrashNode(int node);
  /// Crash recovery: the node rejoins with its storage intact (stale
  /// replicas of blocks the namenode already dropped are not re-added).
  Status RestartNode(int node);

  /// Advances the heartbeat clock by one interval: applies the
  /// "node.crash"/"node.restart" fault points (key = node id, attempt =
  /// tick), records heartbeats from live nodes, declares silent nodes
  /// dead after heartbeat_miss_threshold missed intervals (dropping
  /// their replicas), and runs a scrubber pass that re-replicates every
  /// under-replicated block from a CRC-verified healthy replica.
  Status Tick();

  /// Bytes of block data stored on one node (replicas included).
  int64_t BytesStoredOn(int node) const;

  /// Chaos source consulted at the "dfs.read_replica" fault point with
  /// (key = block id, attempt = replica position) and at
  /// "dfs.block_corrupt" with (key = block id, attempt = write-time
  /// replica ordinal — stable, so re-replicated copies are never
  /// re-corrupted by ArmFirstAttempts). Not owned; nullptr disables
  /// injection.
  /// Atomic: pipelines install their injector at construction while the
  /// heartbeat driver may be mid-Tick on another thread.
  void set_fault_injector(FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

  /// Executor for parallel checksum work (not owned): write-time chunk
  /// sums fan out as tasks, and scrub/read CRC verification of large
  /// blocks does too. Null keeps checksumming single-threaded.
  void set_executor(Executor* executor) {
    executor_.store(executor, std::memory_order_release);
  }

  /// Crash harness: drops every in-memory structure (namespace, block
  /// maps, node storage, health, heartbeat clock) and reconstructs the
  /// Dfs from the durable root, exactly as a fresh process would.
  /// InvalidArgument when durability is off.
  Status SimulateCrash();

  /// Outcome of the last durable recovery (all-zero when durability is
  /// off or nothing was recovered).
  DfsRecoveryStats recovery_stats() const;

  /// Snapshot of the read-path failover telemetry.
  DfsStats stats() const;
  void ResetStats();

  /// True when the node was blacklisted by consecutive read failures.
  bool IsBlacklisted(int node) const;
  /// True when the namenode declared the node dead on missed heartbeats.
  bool IsDeclaredDead(int node) const;

  int num_data_nodes() const { return options_.num_data_nodes; }
  int64_t block_size() const { return options_.block_size; }
  /// Heartbeat intervals elapsed (Tick() calls so far).
  int64_t heartbeat_tick() const;

 private:
  struct FileMeta {
    std::vector<int64_t> blocks;
    int64_t size = 0;
  };
  struct DataNode {
    std::map<int64_t, std::string> blocks;
    bool up = true;
    int64_t last_heartbeat_tick = -1;
    bool declared_dead = false;
  };
  /// One replica of a block. The ordinal is assigned at creation and
  /// never reused: write-time replicas get 0..replication-1, scrubber
  /// copies continue from there. It keys the "dfs.block_corrupt" fault
  /// point, so "corrupt the first-placed replica of every block" is
  /// ArmFirstAttempts(point, 1) and never hits a re-replicated copy.
  struct Replica {
    int node = 0;
    int ordinal = 0;
  };
  struct BlockMeta {
    /// Logical (uncompressed) length — what Locate/FileSize report.
    int64_t length = 0;
    /// On-disk length of the stored bytes (== length when !compressed).
    int64_t stored_length = 0;
    /// Stored bytes are a BGZF stream; reads decompress lazily.
    bool compressed = false;
    std::vector<Replica> replicas;
    /// CRC32C per checksum_chunk_bytes slice of the *stored* bytes
    /// (HDFS block .meta analog) — compression is under the checksum.
    std::vector<uint32_t> chunk_sums;
    int next_ordinal = 0;
  };

  // Mutable read-path health state: reads are logically const but track
  // failures, blacklisting, and failover telemetry.
  struct NodeHealth {
    int consecutive_failures = 0;
    bool blacklisted = false;
  };

  // Requires health_mu_.
  Result<const FileMeta*> MetaLocked(const std::string& path) const;
  Result<std::string> ReadRangeLocked(const std::string& path,
                                      int64_t offset, int64_t length) const;
  Status DeleteLocked(const std::string& path);
  // Serves one block from the first healthy, CRC-verified replica,
  // recording failover telemetry and quarantining corrupt replicas.
  // Returns nullptr when every replica failed. Requires health_mu_.
  const std::string* ReadBlockReplicasLocked(int64_t block_id,
                                             BlockMeta& bm) const;

  // Pure CRC computations; parallelized over the executor when set
  // (safe to call with health_mu_ held — the closures touch no Dfs
  // state, and TaskGroup::Wait helps, so a saturated executor still
  // makes progress).
  std::vector<uint32_t> ChunkSums(std::string_view data) const;
  bool ChunksMatch(const std::string& bytes,
                   const std::vector<uint32_t>& sums) const;
  // Injection + one-time CRC verification of replica `ri`. On
  // corruption: counts the detection, quarantines the replica (erased
  // from block map and node storage, `ri` now indexes the next replica),
  // and returns false. Requires health_mu_.
  bool VerifyReplicaLocked(int64_t block_id, BlockMeta* bm,
                           size_t ri) const;
  void QuarantineReplicaLocked(int64_t block_id, BlockMeta* bm,
                               size_t ri) const;
  // Scrubber: tops up every under-replicated block from a verified
  // source replica onto live nodes. Requires health_mu_.
  void ScrubLocked();
  void RepairBlockLocked(int64_t block_id, BlockMeta* bm);
  const std::string* HealthySourceLocked(int64_t block_id, BlockMeta* bm);
  void RestartNodeLocked(int node);

  // --- Durability (no-ops when options_.durability is off). ---
  // Opens the journaled store, replays snapshot + journal into the
  // (empty) in-memory maps, and loads block payloads from disk.
  // Requires health_mu_.
  Status RecoverLocked();
  std::string BlockPayloadPath(int64_t block_id) const;
  // Journals one namespace mutation; IOError on append failure.
  // Requires health_mu_.
  Status JournalLocked(std::string_view record) const;
  // Best-effort variant for the logically-const read path (quarantine)
  // and the scrubber: failures land in stats_.journal_append_failures.
  void JournalBestEffortLocked(std::string_view record) const;
  // Checkpoints (snapshot + journal reset) when the store says so.
  void MaybeCheckpointLocked();
  std::string EncodeSnapshotLocked() const;
  Status ApplySnapshotLocked(std::string_view payload);
  Status ApplyJournalRecordLocked(std::string_view record);
  // Block metadata codec shared by the create-file journal record and
  // the snapshot.
  static void EncodeBlock(BufferWriter* w, int64_t id, const BlockMeta& bm);
  static Status DecodeBlock(BufferReader* r, int64_t* id, BlockMeta* bm);

  DfsOptions options_;
  Status init_status_;
  DefaultPlacementPolicy default_policy_;
  std::atomic<FaultInjector*> injector_{nullptr};
  std::atomic<Executor*> executor_{nullptr};
  // One namenode-wide lock: every public operation acquires health_mu_
  // once and runs *Locked internals, making concurrent reads, writes,
  // and heartbeat ticks from overlapped pipeline rounds safe. Expensive
  // pure work (chunk checksums) happens outside or fans out onto the
  // executor.
  mutable std::mutex health_mu_;
  std::map<std::string, FileMeta> files_;
  int64_t next_block_id_ = 1;
  // blocks_/nodes_ are mutable because the logically-const read path
  // performs integrity bookkeeping: injected corruption flips stored
  // bytes, detection quarantines replicas. Guarded by health_mu_.
  mutable std::map<int64_t, BlockMeta> blocks_;
  mutable std::vector<DataNode> nodes_;
  // Replicas whose bytes already passed CRC verification, so repeated
  // reads skip the checksum work (HDFS clients verify per read; we cache
  // because the simulated "disk" cannot rot outside the fault point).
  mutable std::set<std::pair<int64_t, int>> verified_;
  int64_t tick_ = 0;
  mutable std::vector<NodeHealth> health_;
  mutable DfsStats stats_;
  // Durable namespace store (null when durability is off). Mutable with
  // stats_: the logically-const read path journals quarantines.
  mutable std::unique_ptr<JournaledStore> store_;
  std::string blocks_dir_;
  DfsRecoveryStats recovery_;
};

}  // namespace gesall

#endif  // GESALL_DFS_DFS_H_

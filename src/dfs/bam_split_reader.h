// The custom RecordReader of paper §3.1: presents each DFS block of a BAM
// file as a stream of whole records. A split owns every BGZF chunk that
// *starts* inside it; the trailing chunk may span into the next DFS block
// and is read across the boundary. The header is fetched from the file's
// first chunk regardless of the split.

#ifndef GESALL_DFS_BAM_SPLIT_READER_H_
#define GESALL_DFS_BAM_SPLIT_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dfs/dfs.h"
#include "formats/sam.h"
#include "util/status.h"

namespace gesall {

/// \brief One input split of a DFS-resident BAM file.
struct BamSplit {
  int64_t begin = 0;  // byte range [begin, end) of the BAM file
  int64_t end = 0;
  std::vector<int> preferred_nodes;  // replicas of the underlying block
};

/// \brief One split per DFS block of the file.
Result<std::vector<BamSplit>> ComputeBamSplits(const Dfs& dfs,
                                               const std::string& path);

/// \brief Reads the SAM header from the file's first chunk.
Result<SamHeader> ReadBamHeaderFromDfs(const Dfs& dfs,
                                       const std::string& path);

/// \brief Decompresses the record bytes of every chunk starting inside the
/// split (skipping the header chunk), reading past split.end for a chunk
/// that spans the boundary. Feed the result to BamRecordIterator.
Result<std::string> ReadBamSplitRecords(const Dfs& dfs,
                                        const std::string& path,
                                        const BamSplit& split);

/// \brief Convenience: decode all records of a split.
Result<std::vector<SamRecord>> ReadBamSplit(const Dfs& dfs,
                                            const std::string& path,
                                            const BamSplit& split);

}  // namespace gesall

#endif  // GESALL_DFS_BAM_SPLIT_READER_H_

#include "dfs/heartbeat.h"

#include <chrono>
#include <utility>

namespace gesall {

void HeartbeatDriver::Start(int interval_ms) {
  if (interval_ms < 1) interval_ms = 1;
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this, interval_ms] { Loop(interval_ms); });
}

void HeartbeatDriver::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

Status HeartbeatDriver::TickNow(int n) {
  Status first;
  for (int i = 0; i < n; ++i) {
    Status s = dfs_->Tick();
    RecordTick(s);
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

Status HeartbeatDriver::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_error_;
}

void HeartbeatDriver::Loop(int interval_ms) {
  const auto interval = std::chrono::milliseconds(interval_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
        return;
      }
    }
    RecordTick(dfs_->Tick());
  }
}

void HeartbeatDriver::RecordTick(const Status& status) {
  ticks_.fetch_add(1, std::memory_order_relaxed);
  if (!status.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_error_.ok()) first_error_ = status;
  }
}

}  // namespace gesall

// Continuous heartbeat driver: decouples Dfs::Tick from pipeline rounds.
//
// Historically the pipeline advanced the DFS heartbeat clock once at the
// end of each round, which meant an idle cluster (service jobs queued,
// nothing running) never declared silent nodes dead and never scrubbed —
// dead-node detection only made progress while a round happened to be
// finishing. The driver owns a background thread that ticks the namenode
// on a fixed cadence independent of any pipeline, so failure detection
// and re-replication run continuously, matching how a real namenode's
// recheck interval is wall-clock-driven rather than job-driven.
//
// The cadence is a *logical* clock: tests that need determinism keep the
// driver stopped and advance it manually with TickNow(n); the service
// keeps it running. Either way every tick is Dfs::Tick, serialized by
// the namenode's own health lock, so driver ticks and (legacy) per-round
// ticks compose safely.

#ifndef GESALL_DFS_HEARTBEAT_H_
#define GESALL_DFS_HEARTBEAT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "dfs/dfs.h"
#include "util/status.h"

namespace gesall {

/// \brief Background driver advancing one Dfs's heartbeat clock.
class HeartbeatDriver {
 public:
  /// Does not take ownership; `dfs` must outlive the driver.
  explicit HeartbeatDriver(Dfs* dfs) : dfs_(dfs) {}
  ~HeartbeatDriver() { Stop(); }

  HeartbeatDriver(const HeartbeatDriver&) = delete;
  HeartbeatDriver& operator=(const HeartbeatDriver&) = delete;

  /// Starts the background thread ticking every `interval_ms`. No-op if
  /// already running.
  void Start(int interval_ms);

  /// Stops and joins the background thread promptly (the sleep is a
  /// timed condition wait, not a bare sleep). Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Advances the clock `n` ticks synchronously on the calling thread —
  /// the deterministic path for tests (driver may be stopped). Returns
  /// the first tick error, if any.
  Status TickNow(int n = 1);

  /// Ticks issued by this driver (background + TickNow).
  int64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

  /// First non-OK status any tick returned (background tick errors would
  /// otherwise vanish); OK while clean.
  Status last_error() const;

 private:
  void Loop(int interval_ms);
  void RecordTick(const Status& status);

  Dfs* dfs_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<int64_t> ticks_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;  // guarded by mu_
  Status first_error_;           // guarded by mu_
};

}  // namespace gesall

#endif  // GESALL_DFS_HEARTBEAT_H_

#include "dfs/bam_split_reader.h"

#include <algorithm>

#include "formats/bam.h"
#include "util/bgzf.h"

namespace gesall {

Result<std::vector<BamSplit>> ComputeBamSplits(const Dfs& dfs,
                                               const std::string& path) {
  GESALL_ASSIGN_OR_RETURN(auto locations, dfs.Locate(path));
  std::vector<BamSplit> splits;
  for (const auto& loc : locations) {
    BamSplit s;
    s.begin = loc.offset;
    s.end = loc.offset + loc.length;
    s.preferred_nodes = loc.replicas;
    if (s.end > s.begin) splits.push_back(std::move(s));
  }
  return splits;
}

Result<SamHeader> ReadBamHeaderFromDfs(const Dfs& dfs,
                                       const std::string& path) {
  GESALL_ASSIGN_OR_RETURN(int64_t size, dfs.FileSize(path));
  // The header chunk is small; read a generous prefix.
  int64_t take = std::min<int64_t>(size, 2 * 70 * 1024);
  GESALL_ASSIGN_OR_RETURN(std::string prefix, dfs.ReadRange(path, 0, take));
  return ReadBamHeader(prefix);
}

namespace {

// Scans [from, file_size) for the next valid BGZF chunk boundary. Magic
// collisions inside compressed payloads are disambiguated by attempting to
// decompress the candidate chunk.
Result<int64_t> FindChunkBoundary(const Dfs& dfs, const std::string& path,
                                  int64_t from, int64_t file_size) {
  constexpr int64_t kScanWindow = 256 * 1024;
  for (int64_t base = from; base < file_size; base += kScanWindow) {
    int64_t take = std::min<int64_t>(kScanWindow + kBgzfHeaderSize,
                                     file_size - base);
    GESALL_ASSIGN_OR_RETURN(std::string window,
                            dfs.ReadRange(path, base, take));
    for (size_t i = 0; i + kBgzfHeaderSize <= window.size(); ++i) {
      // Either codec method ('1' deflate, '0' stored fallback) starts a
      // valid chunk.
      if (window.compare(i, 3, "GBZ") != 0 ||
          (window[i + 3] != '1' && window[i + 3] != '0')) {
        continue;
      }
      auto size = BgzfPeekBlockSize(std::string_view(window).substr(i));
      if (!size.ok()) continue;
      int64_t candidate = base + static_cast<int64_t>(i);
      if (candidate + static_cast<int64_t>(size.ValueOrDie()) > file_size) {
        continue;
      }
      // Validate by decompressing the whole candidate chunk.
      auto chunk_bytes =
          dfs.ReadRange(path, candidate,
                        static_cast<int64_t>(size.ValueOrDie()));
      if (!chunk_bytes.ok()) continue;
      if (BgzfDecompressBlock(chunk_bytes.ValueOrDie(), nullptr).ok()) {
        return candidate;
      }
    }
  }
  return file_size;  // no further chunk
}

}  // namespace

Result<std::string> ReadBamSplitRecords(const Dfs& dfs,
                                        const std::string& path,
                                        const BamSplit& split) {
  GESALL_ASSIGN_OR_RETURN(int64_t file_size, dfs.FileSize(path));

  // The header chunk belongs to no split's record stream.
  GESALL_ASSIGN_OR_RETURN(std::string first_header,
                          dfs.ReadRange(path, 0,
                                        std::min<int64_t>(file_size,
                                                          kBgzfHeaderSize)));
  GESALL_ASSIGN_OR_RETURN(size_t header_chunk, BgzfPeekBlockSize(first_header));
  int64_t records_start = static_cast<int64_t>(header_chunk);

  int64_t cursor = std::max(split.begin, records_start);
  if (cursor > records_start) {
    // Mid-file split: DFS block boundaries fall anywhere, so locate the
    // first chunk that starts at/after split.begin.
    GESALL_ASSIGN_OR_RETURN(cursor,
                            FindChunkBoundary(dfs, path, cursor, file_size));
  }

  std::string out;
  while (cursor < split.end && cursor < file_size) {
    GESALL_ASSIGN_OR_RETURN(
        std::string header,
        dfs.ReadRange(path, cursor,
                      std::min<int64_t>(kBgzfHeaderSize,
                                        file_size - cursor)));
    GESALL_ASSIGN_OR_RETURN(size_t chunk_size, BgzfPeekBlockSize(header));
    GESALL_ASSIGN_OR_RETURN(
        std::string chunk,
        dfs.ReadRange(path, cursor, static_cast<int64_t>(chunk_size)));
    GESALL_ASSIGN_OR_RETURN(std::string payload,
                            BgzfDecompressBlock(chunk, nullptr));
    out += payload;
    cursor += static_cast<int64_t>(chunk_size);
  }
  return out;
}

Result<std::vector<SamRecord>> ReadBamSplit(const Dfs& dfs,
                                            const std::string& path,
                                            const BamSplit& split) {
  GESALL_ASSIGN_OR_RETURN(std::string bytes,
                          ReadBamSplitRecords(dfs, path, split));
  std::vector<SamRecord> records;
  BamRecordIterator it(bytes);
  while (!it.Done()) {
    GESALL_ASSIGN_OR_RETURN(SamRecord rec, it.Next());
    records.push_back(std::move(rec));
  }
  return records;
}

}  // namespace gesall

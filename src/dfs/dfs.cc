#include "dfs/dfs.h"

#include <algorithm>

#include "util/fault_injection.h"
#include "util/rng.h"

namespace gesall {

std::vector<int> DefaultPlacementPolicy::Place(const std::string& path,
                                               int64_t block_index,
                                               int num_nodes,
                                               int replication) {
  // Primary rotates pseudo-randomly per (file, block); replicas follow on
  // consecutive nodes, as with Hadoop's rack-unaware default.
  int primary = static_cast<int>(
      MixSeeds(Fnv1a64(path), static_cast<uint64_t>(block_index)) %
      static_cast<uint64_t>(num_nodes));
  std::vector<int> out;
  replication = std::min(replication, num_nodes);
  for (int i = 0; i < replication; ++i) {
    out.push_back((primary + i) % num_nodes);
  }
  return out;
}

int LogicalPartitionPlacementPolicy::PrimaryNodeFor(const std::string& path,
                                                    int num_nodes) {
  return static_cast<int>(Fnv1a64(path) % static_cast<uint64_t>(num_nodes));
}

std::vector<int> LogicalPartitionPlacementPolicy::Place(
    const std::string& path, int64_t /*block_index*/, int num_nodes,
    int replication) {
  int primary = PrimaryNodeFor(path, num_nodes);
  std::vector<int> out;
  replication = std::min(replication, num_nodes);
  for (int i = 0; i < replication; ++i) {
    out.push_back((primary + i) % num_nodes);
  }
  return out;
}

Dfs::Dfs(DfsOptions options) : options_(options) {
  nodes_.resize(options_.num_data_nodes);
  health_.resize(options_.num_data_nodes);
}

Status Dfs::Write(const std::string& path, std::string_view data,
                  BlockPlacementPolicy* policy) {
  if (options_.num_data_nodes <= 0) {
    return Status::Internal("no data nodes");
  }
  if (policy == nullptr) policy = &default_policy_;
  // Replace semantics: drop any existing file first.
  if (Exists(path)) GESALL_RETURN_NOT_OK(Delete(path));

  FileMeta meta;
  meta.size = static_cast<int64_t>(data.size());
  int64_t n_blocks =
      (meta.size + options_.block_size - 1) / options_.block_size;
  if (n_blocks == 0) n_blocks = 1;  // empty file still has a (empty) block
  for (int64_t b = 0; b < n_blocks; ++b) {
    int64_t off = b * options_.block_size;
    int64_t len =
        std::min<int64_t>(options_.block_size, meta.size - off);
    if (len < 0) len = 0;
    std::vector<int> replicas = policy->Place(
        path, b, options_.num_data_nodes, options_.replication);
    if (replicas.empty()) {
      return Status::Internal("placement policy returned no nodes");
    }
    int64_t id = next_block_id_++;
    BlockMeta bm;
    bm.length = len;
    bm.replicas = replicas;
    blocks_[id] = bm;
    for (int node : replicas) {
      nodes_[node].blocks[id] = std::string(data.substr(off, len));
    }
    meta.blocks.push_back(id);
  }
  files_[path] = std::move(meta);
  return Status::OK();
}

Result<const Dfs::FileMeta*> Dfs::Meta(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return &it->second;
}

Result<std::string> Dfs::Read(const std::string& path) const {
  GESALL_ASSIGN_OR_RETURN(const FileMeta* meta, Meta(path));
  return ReadRange(path, 0, meta->size);
}

Result<std::string> Dfs::ReadRange(const std::string& path, int64_t offset,
                                   int64_t length) const {
  GESALL_ASSIGN_OR_RETURN(const FileMeta* meta, Meta(path));
  if (offset < 0 || offset + length > meta->size) {
    return Status::OutOfRange("read range outside file");
  }
  std::string out;
  out.reserve(static_cast<size_t>(length));
  int64_t pos = offset;
  while (length > 0) {
    int64_t block_index = pos / options_.block_size;
    int64_t intra = pos % options_.block_size;
    int64_t block_id = meta->blocks[block_index];
    const BlockMeta& bm = blocks_.at(block_id);
    const std::string* bytes = ReadBlockReplicas(block_id, bm);
    if (bytes == nullptr) {
      return Status::IOError("all replicas of block " +
                             std::to_string(block_id) + " unavailable");
    }
    int64_t take = std::min<int64_t>(length, bm.length - intra);
    out.append(*bytes, static_cast<size_t>(intra),
               static_cast<size_t>(take));
    pos += take;
    length -= take;
  }
  return out;
}

const std::string* Dfs::ReadBlockReplicas(int64_t block_id,
                                          const BlockMeta& bm) const {
  // HDFS read failover: walk the replica list in order, skipping nodes
  // that are down or blacklisted and replicas the injector fails; the
  // first healthy replica serves the block. The injector decision is
  // pure in (block, replica position), so one seed pins one consistent
  // set of "bad" replicas across repeated reads.
  std::lock_guard<std::mutex> lock(health_mu_);
  int failures = 0;
  for (size_t ri = 0; ri < bm.replicas.size(); ++ri) {
    int node = bm.replicas[ri];
    bool failed = !nodes_[node].up || health_[node].blacklisted;
    if (!failed && injector_ != nullptr &&
        injector_->ShouldFail(kFaultDfsReadReplica, block_id,
                              static_cast<int>(ri))) {
      failed = true;
      // Injected replica failure counts against the node's health;
      // blacklist it after blacklist_threshold consecutive failures.
      NodeHealth& health = health_[node];
      if (++health.consecutive_failures >= options_.blacklist_threshold &&
          !health.blacklisted) {
        health.blacklisted = true;
        ++stats_.nodes_blacklisted;
      }
    }
    if (failed) {
      ++failures;
      ++stats_.replica_read_failures;
      continue;
    }
    health_[node].consecutive_failures = 0;
    if (failures > 0) ++stats_.blocks_failed_over;
    return &nodes_[node].blocks.at(block_id);
  }
  ++stats_.reads_failed;
  return nullptr;
}

Result<std::vector<BlockLocation>> Dfs::Locate(
    const std::string& path) const {
  GESALL_ASSIGN_OR_RETURN(const FileMeta* meta, Meta(path));
  std::vector<BlockLocation> out;
  int64_t off = 0;
  for (int64_t id : meta->blocks) {
    const BlockMeta& bm = blocks_.at(id);
    out.push_back({id, off, bm.length, bm.replicas});
    off += bm.length;
  }
  return out;
}

Result<int64_t> Dfs::FileSize(const std::string& path) const {
  GESALL_ASSIGN_OR_RETURN(const FileMeta* meta, Meta(path));
  return meta->size;
}

bool Dfs::Exists(const std::string& path) const {
  return files_.count(path) > 0;
}

Status Dfs::Delete(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  for (int64_t id : it->second.blocks) {
    const BlockMeta& bm = blocks_.at(id);
    for (int node : bm.replicas) nodes_[node].blocks.erase(id);
    blocks_.erase(id);
  }
  files_.erase(it);
  return Status::OK();
}

std::vector<std::string> Dfs::List(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, meta] : files_) {
    if (path.compare(0, prefix.size(), prefix) == 0) out.push_back(path);
  }
  return out;
}

Status Dfs::MarkNodeDown(int node) {
  if (node < 0 || node >= options_.num_data_nodes) {
    return Status::InvalidArgument("bad node id");
  }
  nodes_[node].up = false;
  return Status::OK();
}

Status Dfs::MarkNodeUp(int node) {
  if (node < 0 || node >= options_.num_data_nodes) {
    return Status::InvalidArgument("bad node id");
  }
  nodes_[node].up = true;
  std::lock_guard<std::mutex> lock(health_mu_);
  health_[node] = NodeHealth{};
  return Status::OK();
}

DfsStats Dfs::stats() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return stats_;
}

void Dfs::ResetStats() {
  std::lock_guard<std::mutex> lock(health_mu_);
  stats_ = DfsStats{};
}

bool Dfs::IsBlacklisted(int node) const {
  if (node < 0 || node >= options_.num_data_nodes) return false;
  std::lock_guard<std::mutex> lock(health_mu_);
  return health_[node].blacklisted;
}

int64_t Dfs::BytesStoredOn(int node) const {
  if (node < 0 || node >= options_.num_data_nodes) return 0;
  int64_t n = 0;
  for (const auto& [id, bytes] : nodes_[node].blocks) {
    n += static_cast<int64_t>(bytes.size());
  }
  return n;
}

}  // namespace gesall

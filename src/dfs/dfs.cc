#include "dfs/dfs.h"

#include <algorithm>
#include <atomic>

#include "util/crc32c.h"
#include "util/executor.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace gesall {

std::vector<int> DefaultPlacementPolicy::Place(const std::string& path,
                                               int64_t block_index,
                                               int num_nodes,
                                               int replication) {
  // Primary rotates pseudo-randomly per (file, block); replicas follow on
  // consecutive nodes, as with Hadoop's rack-unaware default.
  int primary = static_cast<int>(
      MixSeeds(Fnv1a64(path), static_cast<uint64_t>(block_index)) %
      static_cast<uint64_t>(num_nodes));
  std::vector<int> out;
  replication = std::min(replication, num_nodes);
  for (int i = 0; i < replication; ++i) {
    out.push_back((primary + i) % num_nodes);
  }
  return out;
}

int LogicalPartitionPlacementPolicy::PrimaryNodeFor(const std::string& path,
                                                    int num_nodes) {
  return static_cast<int>(Fnv1a64(path) % static_cast<uint64_t>(num_nodes));
}

std::vector<int> LogicalPartitionPlacementPolicy::Place(
    const std::string& path, int64_t /*block_index*/, int num_nodes,
    int replication) {
  int primary = PrimaryNodeFor(path, num_nodes);
  std::vector<int> out;
  replication = std::min(replication, num_nodes);
  for (int i = 0; i < replication; ++i) {
    out.push_back((primary + i) % num_nodes);
  }
  return out;
}

Status Dfs::ValidateOptions(const DfsOptions& o) {
  if (o.num_data_nodes < 1) {
    return Status::InvalidArgument("num_data_nodes must be >= 1");
  }
  if (o.replication < 1 || o.replication > o.num_data_nodes) {
    return Status::InvalidArgument(
        "replication must be in [1, num_data_nodes]");
  }
  if (o.block_size <= 0) {
    return Status::InvalidArgument("block_size must be positive");
  }
  if (o.blacklist_threshold < 1) {
    return Status::InvalidArgument("blacklist_threshold must be >= 1");
  }
  if (o.checksum_chunk_bytes <= 0) {
    return Status::InvalidArgument("checksum_chunk_bytes must be positive");
  }
  if (o.heartbeat_miss_threshold < 1) {
    return Status::InvalidArgument("heartbeat_miss_threshold must be >= 1");
  }
  return Status::OK();
}

Dfs::Dfs(DfsOptions options)
    : options_(options), init_status_(ValidateOptions(options)) {
  if (!init_status_.ok()) return;
  nodes_.resize(options_.num_data_nodes);
  health_.resize(options_.num_data_nodes);
}

namespace {
// Chunk counts below this run serially: the executor round trip costs
// more than a few CRC sweeps.
constexpr size_t kMinParallelChunks = 4;
}  // namespace

std::vector<uint32_t> Dfs::ChunkSums(std::string_view data) const {
  const size_t chunk = static_cast<size_t>(options_.checksum_chunk_bytes);
  const size_t n = (data.size() + chunk - 1) / chunk;
  std::vector<uint32_t> sums(n);
  Executor* executor = executor_.load(std::memory_order_acquire);
  if (executor != nullptr && n >= kMinParallelChunks) {
    TaskGroup group(executor);
    for (size_t i = 0; i < n; ++i) {
      group.Submit([&sums, data, chunk, i] {
        sums[i] = Crc32c(data.substr(i * chunk, chunk));
      });
    }
    group.Wait();
    return sums;
  }
  for (size_t i = 0; i < n; ++i) {
    sums[i] = Crc32c(data.substr(i * chunk, chunk));
  }
  return sums;
}

bool Dfs::ChunksMatch(const std::string& bytes,
                      const std::vector<uint32_t>& sums) const {
  const size_t chunk = static_cast<size_t>(options_.checksum_chunk_bytes);
  if (sums.size() != (bytes.size() + chunk - 1) / chunk) return false;
  std::string_view view(bytes);
  Executor* executor = executor_.load(std::memory_order_acquire);
  if (executor != nullptr && sums.size() >= kMinParallelChunks) {
    std::atomic<bool> match{true};
    TaskGroup group(executor);
    for (size_t i = 0; i < sums.size(); ++i) {
      group.Submit([&match, &sums, view, chunk, i] {
        if (Crc32c(view.substr(i * chunk, chunk)) != sums[i]) {
          match.store(false, std::memory_order_relaxed);
        }
      });
    }
    group.Wait();
    return match.load();
  }
  for (size_t i = 0; i < sums.size(); ++i) {
    if (Crc32c(view.substr(i * chunk, chunk)) != sums[i]) return false;
  }
  return true;
}

Status Dfs::Write(const std::string& path, std::string_view data,
                  BlockPlacementPolicy* policy) {
  GESALL_RETURN_NOT_OK(init_status_);
  if (policy == nullptr) policy = &default_policy_;

  // Placement and checksums are pure in the input; compute them before
  // taking the namenode lock so concurrent readers are not stalled
  // behind CRC sweeps of a large file.
  struct PendingBlock {
    int64_t length = 0;
    std::vector<int> placement;
    std::string_view bytes;
    std::vector<uint32_t> chunk_sums;
  };
  const int64_t size = static_cast<int64_t>(data.size());
  int64_t n_blocks = (size + options_.block_size - 1) / options_.block_size;
  if (n_blocks == 0) n_blocks = 1;  // empty file still has a (empty) block
  std::vector<PendingBlock> pending(static_cast<size_t>(n_blocks));
  for (int64_t b = 0; b < n_blocks; ++b) {
    int64_t off = b * options_.block_size;
    int64_t len = std::min<int64_t>(options_.block_size, size - off);
    if (len < 0) len = 0;
    PendingBlock& pb = pending[static_cast<size_t>(b)];
    pb.length = len;
    pb.placement = policy->Place(path, b, options_.num_data_nodes,
                                 options_.replication);
    if (pb.placement.empty()) {
      return Status::Internal("placement policy returned no nodes");
    }
    pb.bytes =
        data.substr(static_cast<size_t>(off), static_cast<size_t>(len));
    pb.chunk_sums = ChunkSums(pb.bytes);
  }

  std::lock_guard<std::mutex> lock(health_mu_);
  // Replace semantics: drop any existing file first.
  if (files_.count(path) > 0) GESALL_RETURN_NOT_OK(DeleteLocked(path));
  FileMeta meta;
  meta.size = size;
  for (PendingBlock& pb : pending) {
    int64_t id = next_block_id_++;
    BlockMeta bm;
    bm.length = pb.length;
    for (int node : pb.placement) {
      bm.replicas.push_back({node, bm.next_ordinal++});
      nodes_[node].blocks[id] = std::string(pb.bytes);
    }
    bm.chunk_sums = std::move(pb.chunk_sums);
    blocks_[id] = std::move(bm);
    meta.blocks.push_back(id);
  }
  files_[path] = std::move(meta);
  return Status::OK();
}

Result<const Dfs::FileMeta*> Dfs::MetaLocked(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return &it->second;
}

Result<std::string> Dfs::Read(const std::string& path) const {
  GESALL_RETURN_NOT_OK(init_status_);
  std::lock_guard<std::mutex> lock(health_mu_);
  GESALL_ASSIGN_OR_RETURN(const FileMeta* meta, MetaLocked(path));
  return ReadRangeLocked(path, 0, meta->size);
}

Result<std::string> Dfs::ReadRange(const std::string& path, int64_t offset,
                                   int64_t length) const {
  GESALL_RETURN_NOT_OK(init_status_);
  std::lock_guard<std::mutex> lock(health_mu_);
  return ReadRangeLocked(path, offset, length);
}

Result<std::string> Dfs::ReadRangeLocked(const std::string& path,
                                         int64_t offset,
                                         int64_t length) const {
  GESALL_ASSIGN_OR_RETURN(const FileMeta* meta, MetaLocked(path));
  if (offset < 0 || offset + length > meta->size) {
    return Status::OutOfRange("read range outside file");
  }
  std::string out;
  out.reserve(static_cast<size_t>(length));
  int64_t pos = offset;
  while (length > 0) {
    int64_t block_index = pos / options_.block_size;
    int64_t intra = pos % options_.block_size;
    int64_t block_id = meta->blocks[block_index];
    BlockMeta& bm = blocks_.at(block_id);
    const std::string* bytes = ReadBlockReplicasLocked(block_id, bm);
    if (bytes == nullptr) {
      return Status::IOError("all replicas of block " +
                             std::to_string(block_id) + " unavailable");
    }
    int64_t take = std::min<int64_t>(length, bm.length - intra);
    out.append(*bytes, static_cast<size_t>(intra),
               static_cast<size_t>(take));
    pos += take;
    length -= take;
  }
  return out;
}

void Dfs::QuarantineReplicaLocked(int64_t block_id, BlockMeta* bm,
                                  size_t ri) const {
  const int node = bm->replicas[ri].node;
  nodes_[node].blocks.erase(block_id);
  verified_.erase({block_id, node});
  bm->replicas.erase(bm->replicas.begin() + static_cast<int64_t>(ri));
  ++stats_.replicas_quarantined;
}

bool Dfs::VerifyReplicaLocked(int64_t block_id, BlockMeta* bm,
                              size_t ri) const {
  const Replica rep = bm->replicas[ri];
  std::string& bytes = nodes_[rep.node].blocks.at(block_id);
  FaultInjector* injector = injector_.load(std::memory_order_acquire);
  if (injector != nullptr && !bytes.empty() &&
      injector->ShouldFail(kFaultDfsBlockCorrupt, block_id, rep.ordinal)) {
    // Lazy corruption: rot one byte of the stored replica the moment it
    // is read. Detection quarantines the replica immediately, so the
    // point cannot re-fire for it and toggle the byte back.
    bytes[static_cast<size_t>(block_id) % bytes.size()] ^= 0x40;
    verified_.erase({block_id, rep.node});
  }
  if (verified_.count({block_id, rep.node}) > 0) return true;
  if (ChunksMatch(bytes, bm->chunk_sums)) {
    verified_.insert({block_id, rep.node});
    return true;
  }
  ++stats_.corruptions_detected;
  QuarantineReplicaLocked(block_id, bm, ri);
  return false;
}

const std::string* Dfs::ReadBlockReplicasLocked(int64_t block_id,
                                                BlockMeta& bm) const {
  // HDFS read failover: walk the replica list in order, skipping nodes
  // that are down, dead, or blacklisted and replicas the injector fails
  // or whose bytes fail CRC verification; the first healthy replica
  // serves the block. Injector decisions are pure in (block, replica),
  // so one seed pins one consistent set of "bad" replicas across
  // repeated reads.
  int failures = 0;
  FaultInjector* injector = injector_.load(std::memory_order_acquire);
  for (size_t ri = 0; ri < bm.replicas.size();) {
    int node = bm.replicas[ri].node;
    bool failed = !nodes_[node].up || nodes_[node].declared_dead ||
                  health_[node].blacklisted;
    if (!failed && injector != nullptr &&
        injector->ShouldFail(kFaultDfsReadReplica, block_id,
                             static_cast<int>(ri))) {
      failed = true;
      // Injected replica failure counts against the node's health;
      // blacklist it after blacklist_threshold consecutive failures.
      NodeHealth& health = health_[node];
      if (++health.consecutive_failures >= options_.blacklist_threshold &&
          !health.blacklisted) {
        health.blacklisted = true;
        ++stats_.nodes_blacklisted;
      }
    }
    if (failed) {
      ++failures;
      ++stats_.replica_read_failures;
      ++ri;
      continue;
    }
    if (!VerifyReplicaLocked(block_id, &bm, ri)) {
      // Corrupt replica: quarantined (a corrupt block is reported to the
      // namenode, not held against the node's health), and the loop
      // continues at the same index, which now names the next replica.
      ++failures;
      ++stats_.replica_read_failures;
      continue;
    }
    health_[node].consecutive_failures = 0;
    if (failures > 0) ++stats_.blocks_failed_over;
    return &nodes_[node].blocks.at(block_id);
  }
  ++stats_.reads_failed;
  return nullptr;
}

const std::string* Dfs::HealthySourceLocked(int64_t block_id,
                                            BlockMeta* bm) {
  // Scrubber reads are reads: the source replica is verified (and the
  // corruption point consulted) exactly like a client read, so a rotted
  // source cannot be cloned.
  for (size_t ri = 0; ri < bm->replicas.size();) {
    const Replica rep = bm->replicas[ri];
    if (!nodes_[rep.node].up || nodes_[rep.node].declared_dead) {
      ++ri;
      continue;
    }
    if (!VerifyReplicaLocked(block_id, bm, ri)) continue;
    return &nodes_[rep.node].blocks.at(block_id);
  }
  return nullptr;
}

void Dfs::RepairBlockLocked(int64_t block_id, BlockMeta* bm) {
  // The namenode drops a dead node's replicas from the block map; the
  // node's storage is erased too, so a later restart cannot resurrect
  // stale bytes.
  for (size_t i = 0; i < bm->replicas.size();) {
    const int node = bm->replicas[i].node;
    if (nodes_[node].declared_dead) {
      nodes_[node].blocks.erase(block_id);
      verified_.erase({block_id, node});
      bm->replicas.erase(bm->replicas.begin() + static_cast<int64_t>(i));
    } else {
      ++i;
    }
  }
  int live_nodes = 0;
  for (const auto& dn : nodes_) {
    if (dn.up && !dn.declared_dead) ++live_nodes;
  }
  // Replicas on silent-but-not-yet-dead nodes still count: HDFS waits
  // for the dead verdict before re-replicating around a quiet node.
  const int target = std::min(options_.replication, live_nodes);
  while (static_cast<int>(bm->replicas.size()) < target) {
    const std::string* src = HealthySourceLocked(block_id, bm);
    if (src == nullptr) break;  // no verified copy left to clone
    int dest = -1;
    for (int n = 0; n < options_.num_data_nodes; ++n) {
      if (!nodes_[n].up || nodes_[n].declared_dead) continue;
      if (nodes_[n].blocks.count(block_id) > 0) continue;
      dest = n;
      break;
    }
    if (dest < 0) break;
    nodes_[dest].blocks[block_id] = *src;
    bm->replicas.push_back({dest, bm->next_ordinal++});
    verified_.insert({block_id, dest});
    ++stats_.blocks_re_replicated;
    stats_.bytes_re_replicated += bm->length;
  }
}

void Dfs::ScrubLocked() {
  for (auto& [id, bm] : blocks_) RepairBlockLocked(id, &bm);
}

void Dfs::RestartNodeLocked(int node) {
  DataNode& dn = nodes_[node];
  dn.up = true;
  dn.declared_dead = false;
  dn.last_heartbeat_tick = tick_ - 1;
  health_[node] = NodeHealth{};
  ++stats_.node_restarts;
}

Status Dfs::Tick() {
  GESALL_RETURN_NOT_OK(init_status_);
  std::lock_guard<std::mutex> lock(health_mu_);
  const int64_t tick = tick_++;
  FaultInjector* injector = injector_.load(std::memory_order_acquire);
  for (int n = 0; n < options_.num_data_nodes; ++n) {
    DataNode& dn = nodes_[n];
    if (injector != nullptr && !dn.up &&
        injector->ShouldFail(kFaultNodeRestart, n,
                             static_cast<int>(tick))) {
      RestartNodeLocked(n);
    }
    if (injector != nullptr && dn.up &&
        injector->ShouldFail(kFaultNodeCrash, n, static_cast<int>(tick))) {
      dn.up = false;  // crash: stops serving and heartbeating; storage
                      // survives until the node is declared dead
    }
    if (dn.up) {
      dn.last_heartbeat_tick = tick;
      dn.declared_dead = false;
    } else if (!dn.declared_dead &&
               tick - dn.last_heartbeat_tick >=
                   options_.heartbeat_miss_threshold) {
      dn.declared_dead = true;
      ++stats_.nodes_declared_dead;
    }
  }
  ScrubLocked();
  return Status::OK();
}

Result<std::vector<BlockLocation>> Dfs::Locate(
    const std::string& path) const {
  GESALL_RETURN_NOT_OK(init_status_);
  std::lock_guard<std::mutex> lock(health_mu_);
  GESALL_ASSIGN_OR_RETURN(const FileMeta* meta, MetaLocked(path));
  std::vector<BlockLocation> out;
  int64_t off = 0;
  for (int64_t id : meta->blocks) {
    const BlockMeta& bm = blocks_.at(id);
    BlockLocation loc;
    loc.block_id = id;
    loc.offset = off;
    loc.length = bm.length;
    for (const Replica& r : bm.replicas) loc.replicas.push_back(r.node);
    out.push_back(std::move(loc));
    off += bm.length;
  }
  return out;
}

Result<int64_t> Dfs::FileSize(const std::string& path) const {
  GESALL_RETURN_NOT_OK(init_status_);
  std::lock_guard<std::mutex> lock(health_mu_);
  GESALL_ASSIGN_OR_RETURN(const FileMeta* meta, MetaLocked(path));
  return meta->size;
}

bool Dfs::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return files_.count(path) > 0;
}

Status Dfs::Delete(const std::string& path) {
  GESALL_RETURN_NOT_OK(init_status_);
  std::lock_guard<std::mutex> lock(health_mu_);
  return DeleteLocked(path);
}

Status Dfs::DeleteLocked(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  for (int64_t id : it->second.blocks) {
    const BlockMeta& bm = blocks_.at(id);
    for (const Replica& r : bm.replicas) {
      nodes_[r.node].blocks.erase(id);
      verified_.erase({id, r.node});
    }
    blocks_.erase(id);
  }
  files_.erase(it);
  return Status::OK();
}

std::vector<std::string> Dfs::List(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  std::vector<std::string> out;
  for (const auto& [path, meta] : files_) {
    if (path.compare(0, prefix.size(), prefix) == 0) out.push_back(path);
  }
  return out;
}

Status Dfs::MarkNodeDown(int node) {
  GESALL_RETURN_NOT_OK(init_status_);
  if (node < 0 || node >= options_.num_data_nodes) {
    return Status::InvalidArgument("bad node id");
  }
  std::lock_guard<std::mutex> lock(health_mu_);
  nodes_[node].up = false;
  return Status::OK();
}

Status Dfs::MarkNodeUp(int node) {
  GESALL_RETURN_NOT_OK(init_status_);
  if (node < 0 || node >= options_.num_data_nodes) {
    return Status::InvalidArgument("bad node id");
  }
  std::lock_guard<std::mutex> lock(health_mu_);
  nodes_[node].up = true;
  nodes_[node].declared_dead = false;
  nodes_[node].last_heartbeat_tick = tick_ - 1;
  health_[node] = NodeHealth{};
  return Status::OK();
}

Status Dfs::CrashNode(int node) { return MarkNodeDown(node); }

Status Dfs::RestartNode(int node) {
  GESALL_RETURN_NOT_OK(init_status_);
  if (node < 0 || node >= options_.num_data_nodes) {
    return Status::InvalidArgument("bad node id");
  }
  std::lock_guard<std::mutex> lock(health_mu_);
  if (!nodes_[node].up) RestartNodeLocked(node);
  return Status::OK();
}

DfsStats Dfs::stats() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return stats_;
}

void Dfs::ResetStats() {
  std::lock_guard<std::mutex> lock(health_mu_);
  stats_ = DfsStats{};
}

bool Dfs::IsBlacklisted(int node) const {
  if (node < 0 || node >= static_cast<int>(health_.size())) return false;
  std::lock_guard<std::mutex> lock(health_mu_);
  return health_[node].blacklisted;
}

bool Dfs::IsDeclaredDead(int node) const {
  if (node < 0 || node >= static_cast<int>(nodes_.size())) return false;
  std::lock_guard<std::mutex> lock(health_mu_);
  return nodes_[node].declared_dead;
}

int64_t Dfs::heartbeat_tick() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return tick_;
}

int64_t Dfs::BytesStoredOn(int node) const {
  if (node < 0 || node >= static_cast<int>(nodes_.size())) return 0;
  std::lock_guard<std::mutex> lock(health_mu_);
  int64_t n = 0;
  for (const auto& [id, bytes] : nodes_[node].blocks) {
    n += static_cast<int64_t>(bytes.size());
  }
  return n;
}

}  // namespace gesall

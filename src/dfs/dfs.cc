#include "dfs/dfs.h"

#include <algorithm>

#include "util/rng.h"

namespace gesall {

std::vector<int> DefaultPlacementPolicy::Place(const std::string& path,
                                               int64_t block_index,
                                               int num_nodes,
                                               int replication) {
  // Primary rotates pseudo-randomly per (file, block); replicas follow on
  // consecutive nodes, as with Hadoop's rack-unaware default.
  int primary = static_cast<int>(
      MixSeeds(Fnv1a64(path), static_cast<uint64_t>(block_index)) %
      static_cast<uint64_t>(num_nodes));
  std::vector<int> out;
  replication = std::min(replication, num_nodes);
  for (int i = 0; i < replication; ++i) {
    out.push_back((primary + i) % num_nodes);
  }
  return out;
}

int LogicalPartitionPlacementPolicy::PrimaryNodeFor(const std::string& path,
                                                    int num_nodes) {
  return static_cast<int>(Fnv1a64(path) % static_cast<uint64_t>(num_nodes));
}

std::vector<int> LogicalPartitionPlacementPolicy::Place(
    const std::string& path, int64_t /*block_index*/, int num_nodes,
    int replication) {
  int primary = PrimaryNodeFor(path, num_nodes);
  std::vector<int> out;
  replication = std::min(replication, num_nodes);
  for (int i = 0; i < replication; ++i) {
    out.push_back((primary + i) % num_nodes);
  }
  return out;
}

Dfs::Dfs(DfsOptions options) : options_(options) {
  nodes_.resize(options_.num_data_nodes);
}

Status Dfs::Write(const std::string& path, std::string_view data,
                  BlockPlacementPolicy* policy) {
  if (options_.num_data_nodes <= 0) {
    return Status::Internal("no data nodes");
  }
  if (policy == nullptr) policy = &default_policy_;
  // Replace semantics: drop any existing file first.
  if (Exists(path)) GESALL_RETURN_NOT_OK(Delete(path));

  FileMeta meta;
  meta.size = static_cast<int64_t>(data.size());
  int64_t n_blocks =
      (meta.size + options_.block_size - 1) / options_.block_size;
  if (n_blocks == 0) n_blocks = 1;  // empty file still has a (empty) block
  for (int64_t b = 0; b < n_blocks; ++b) {
    int64_t off = b * options_.block_size;
    int64_t len =
        std::min<int64_t>(options_.block_size, meta.size - off);
    if (len < 0) len = 0;
    std::vector<int> replicas = policy->Place(
        path, b, options_.num_data_nodes, options_.replication);
    if (replicas.empty()) {
      return Status::Internal("placement policy returned no nodes");
    }
    int64_t id = next_block_id_++;
    BlockMeta bm;
    bm.length = len;
    bm.replicas = replicas;
    blocks_[id] = bm;
    for (int node : replicas) {
      nodes_[node].blocks[id] = std::string(data.substr(off, len));
    }
    meta.blocks.push_back(id);
  }
  files_[path] = std::move(meta);
  return Status::OK();
}

Result<const Dfs::FileMeta*> Dfs::Meta(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return &it->second;
}

Result<std::string> Dfs::Read(const std::string& path) const {
  GESALL_ASSIGN_OR_RETURN(const FileMeta* meta, Meta(path));
  return ReadRange(path, 0, meta->size);
}

Result<std::string> Dfs::ReadRange(const std::string& path, int64_t offset,
                                   int64_t length) const {
  GESALL_ASSIGN_OR_RETURN(const FileMeta* meta, Meta(path));
  if (offset < 0 || offset + length > meta->size) {
    return Status::OutOfRange("read range outside file");
  }
  std::string out;
  out.reserve(static_cast<size_t>(length));
  int64_t pos = offset;
  while (length > 0) {
    int64_t block_index = pos / options_.block_size;
    int64_t intra = pos % options_.block_size;
    int64_t block_id = meta->blocks[block_index];
    const BlockMeta& bm = blocks_.at(block_id);
    const std::string* bytes = nullptr;
    for (int node : bm.replicas) {
      if (nodes_[node].up) {
        bytes = &nodes_[node].blocks.at(block_id);
        break;
      }
    }
    if (bytes == nullptr) {
      return Status::IOError("all replicas of block unavailable");
    }
    int64_t take = std::min<int64_t>(length, bm.length - intra);
    out.append(*bytes, static_cast<size_t>(intra),
               static_cast<size_t>(take));
    pos += take;
    length -= take;
  }
  return out;
}

Result<std::vector<BlockLocation>> Dfs::Locate(
    const std::string& path) const {
  GESALL_ASSIGN_OR_RETURN(const FileMeta* meta, Meta(path));
  std::vector<BlockLocation> out;
  int64_t off = 0;
  for (int64_t id : meta->blocks) {
    const BlockMeta& bm = blocks_.at(id);
    out.push_back({id, off, bm.length, bm.replicas});
    off += bm.length;
  }
  return out;
}

Result<int64_t> Dfs::FileSize(const std::string& path) const {
  GESALL_ASSIGN_OR_RETURN(const FileMeta* meta, Meta(path));
  return meta->size;
}

bool Dfs::Exists(const std::string& path) const {
  return files_.count(path) > 0;
}

Status Dfs::Delete(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  for (int64_t id : it->second.blocks) {
    const BlockMeta& bm = blocks_.at(id);
    for (int node : bm.replicas) nodes_[node].blocks.erase(id);
    blocks_.erase(id);
  }
  files_.erase(it);
  return Status::OK();
}

std::vector<std::string> Dfs::List(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, meta] : files_) {
    if (path.compare(0, prefix.size(), prefix) == 0) out.push_back(path);
  }
  return out;
}

Status Dfs::MarkNodeDown(int node) {
  if (node < 0 || node >= options_.num_data_nodes) {
    return Status::InvalidArgument("bad node id");
  }
  nodes_[node].up = false;
  return Status::OK();
}

Status Dfs::MarkNodeUp(int node) {
  if (node < 0 || node >= options_.num_data_nodes) {
    return Status::InvalidArgument("bad node id");
  }
  nodes_[node].up = true;
  return Status::OK();
}

int64_t Dfs::BytesStoredOn(int node) const {
  if (node < 0 || node >= options_.num_data_nodes) return 0;
  int64_t n = 0;
  for (const auto& [id, bytes] : nodes_[node].blocks) {
    n += static_cast<int64_t>(bytes.size());
  }
  return n;
}

}  // namespace gesall

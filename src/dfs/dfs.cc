#include "dfs/dfs.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <system_error>

#include "util/bgzf.h"
#include "util/crc32c.h"
#include "util/executor.h"
#include "util/fault_injection.h"
#include "util/io.h"
#include "util/rng.h"

namespace gesall {

std::vector<int> DefaultPlacementPolicy::Place(const std::string& path,
                                               int64_t block_index,
                                               int num_nodes,
                                               int replication) {
  // Primary rotates pseudo-randomly per (file, block); replicas follow on
  // consecutive nodes, as with Hadoop's rack-unaware default.
  int primary = static_cast<int>(
      MixSeeds(Fnv1a64(path), static_cast<uint64_t>(block_index)) %
      static_cast<uint64_t>(num_nodes));
  std::vector<int> out;
  replication = std::min(replication, num_nodes);
  for (int i = 0; i < replication; ++i) {
    out.push_back((primary + i) % num_nodes);
  }
  return out;
}

int LogicalPartitionPlacementPolicy::PrimaryNodeFor(const std::string& path,
                                                    int num_nodes) {
  return static_cast<int>(Fnv1a64(path) % static_cast<uint64_t>(num_nodes));
}

std::vector<int> LogicalPartitionPlacementPolicy::Place(
    const std::string& path, int64_t /*block_index*/, int num_nodes,
    int replication) {
  int primary = PrimaryNodeFor(path, num_nodes);
  std::vector<int> out;
  replication = std::min(replication, num_nodes);
  for (int i = 0; i < replication; ++i) {
    out.push_back((primary + i) % num_nodes);
  }
  return out;
}

Status Dfs::ValidateOptions(const DfsOptions& o) {
  if (o.num_data_nodes < 1) {
    return Status::InvalidArgument("num_data_nodes must be >= 1");
  }
  if (o.replication < 1 || o.replication > o.num_data_nodes) {
    return Status::InvalidArgument(
        "replication must be in [1, num_data_nodes]");
  }
  if (o.block_size <= 0) {
    return Status::InvalidArgument("block_size must be positive");
  }
  if (o.blacklist_threshold < 1) {
    return Status::InvalidArgument("blacklist_threshold must be >= 1");
  }
  if (o.checksum_chunk_bytes <= 0) {
    return Status::InvalidArgument("checksum_chunk_bytes must be positive");
  }
  if (o.heartbeat_miss_threshold < 1) {
    return Status::InvalidArgument("heartbeat_miss_threshold must be >= 1");
  }
  if (o.compress_level < -1 || o.compress_level > 9) {
    return Status::InvalidArgument("compress_level must be -1..9");
  }
  GESALL_RETURN_NOT_OK(ValidateDurabilityOptions(o.durability));
  return Status::OK();
}

Dfs::Dfs(DfsOptions options)
    : options_(options), init_status_(ValidateOptions(options)) {
  if (!init_status_.ok()) return;
  nodes_.resize(options_.num_data_nodes);
  health_.resize(options_.num_data_nodes);
  if (options_.durability.enabled()) {
    std::lock_guard<std::mutex> lock(health_mu_);
    init_status_ = RecoverLocked();
  }
}

namespace {
// Chunk counts below this run serially: the executor round trip costs
// more than a few CRC sweeps.
constexpr size_t kMinParallelChunks = 4;

// Namespace journal opcodes (HDFS editlog analog). Values are on-disk
// format; never renumber.
constexpr uint8_t kOpCreateFile = 1;
constexpr uint8_t kOpDeleteFile = 2;
constexpr uint8_t kOpAddReplica = 3;
constexpr uint8_t kOpRemoveReplica = 4;
}  // namespace

std::vector<uint32_t> Dfs::ChunkSums(std::string_view data) const {
  const size_t chunk = static_cast<size_t>(options_.checksum_chunk_bytes);
  const size_t n = (data.size() + chunk - 1) / chunk;
  std::vector<uint32_t> sums(n);
  Executor* executor = executor_.load(std::memory_order_acquire);
  if (executor != nullptr && n >= kMinParallelChunks) {
    TaskGroup group(executor);
    for (size_t i = 0; i < n; ++i) {
      group.Submit([&sums, data, chunk, i] {
        sums[i] = Crc32c(data.substr(i * chunk, chunk));
      });
    }
    group.Wait();
    return sums;
  }
  for (size_t i = 0; i < n; ++i) {
    sums[i] = Crc32c(data.substr(i * chunk, chunk));
  }
  return sums;
}

bool Dfs::ChunksMatch(const std::string& bytes,
                      const std::vector<uint32_t>& sums) const {
  const size_t chunk = static_cast<size_t>(options_.checksum_chunk_bytes);
  if (sums.size() != (bytes.size() + chunk - 1) / chunk) return false;
  std::string_view view(bytes);
  Executor* executor = executor_.load(std::memory_order_acquire);
  if (executor != nullptr && sums.size() >= kMinParallelChunks) {
    std::atomic<bool> match{true};
    TaskGroup group(executor);
    for (size_t i = 0; i < sums.size(); ++i) {
      group.Submit([&match, &sums, view, chunk, i] {
        if (Crc32c(view.substr(i * chunk, chunk)) != sums[i]) {
          match.store(false, std::memory_order_relaxed);
        }
      });
    }
    group.Wait();
    return match.load();
  }
  for (size_t i = 0; i < sums.size(); ++i) {
    if (Crc32c(view.substr(i * chunk, chunk)) != sums[i]) return false;
  }
  return true;
}

Status Dfs::Write(const std::string& path, std::string_view data,
                  BlockPlacementPolicy* policy) {
  GESALL_RETURN_NOT_OK(init_status_);
  if (policy == nullptr) policy = &default_policy_;

  // Placement, compression, and checksums are pure in the input; compute
  // them before taking the namenode lock so concurrent readers are not
  // stalled behind deflate or CRC sweeps of a large file.
  struct PendingBlock {
    int64_t length = 0;  // logical (uncompressed) length
    std::vector<int> placement;
    std::string_view bytes;       // raw payload
    std::string stored;           // BGZF frames when compressing
    std::string_view store_view;  // bytes that land on data nodes/disk
    bool compressed = false;
    int64_t compress_micros = 0;
    std::vector<uint32_t> chunk_sums;
  };
  const int64_t size = static_cast<int64_t>(data.size());
  int64_t n_blocks = (size + options_.block_size - 1) / options_.block_size;
  if (n_blocks == 0) n_blocks = 1;  // empty file still has a (empty) block
  std::vector<PendingBlock> pending(static_cast<size_t>(n_blocks));
  for (int64_t b = 0; b < n_blocks; ++b) {
    int64_t off = b * options_.block_size;
    int64_t len = std::min<int64_t>(options_.block_size, size - off);
    if (len < 0) len = 0;
    PendingBlock& pb = pending[static_cast<size_t>(b)];
    pb.length = len;
    pb.placement = policy->Place(path, b, options_.num_data_nodes,
                                 options_.replication);
    if (pb.placement.empty()) {
      return Status::Internal("placement policy returned no nodes");
    }
    pb.bytes =
        data.substr(static_cast<size_t>(off), static_cast<size_t>(len));
    if (options_.compress_parts && len > 0) {
      BgzfWriter writer(&pb.stored, options_.compress_level);
      GESALL_RETURN_NOT_OK(writer.Append(pb.bytes));
      GESALL_RETURN_NOT_OK(writer.Flush());
      pb.compressed = true;
      pb.compress_micros = writer.stats().compress_micros;
      pb.store_view = pb.stored;
    } else {
      pb.store_view = pb.bytes;
    }
    // Checksums cover the stored bytes: corruption is detected before
    // any decompress attempt, exactly as HDFS checksums sit under codecs.
    pb.chunk_sums = ChunkSums(pb.store_view);
  }

  std::lock_guard<std::mutex> lock(health_mu_);
  // Replace semantics: drop any existing file first.
  if (files_.count(path) > 0) GESALL_RETURN_NOT_OK(DeleteLocked(path));
  FileMeta meta;
  meta.size = size;
  for (PendingBlock& pb : pending) {
    int64_t id = next_block_id_++;
    BlockMeta bm;
    bm.length = pb.length;
    bm.stored_length = static_cast<int64_t>(pb.store_view.size());
    bm.compressed = pb.compressed;
    for (int node : pb.placement) {
      bm.replicas.push_back({node, bm.next_ordinal++});
      nodes_[node].blocks[id] = std::string(pb.store_view);
    }
    bm.chunk_sums = std::move(pb.chunk_sums);
    blocks_[id] = std::move(bm);
    meta.blocks.push_back(id);
    stats_.bytes_written_raw += pb.length;
    stats_.bytes_written_stored += static_cast<int64_t>(pb.store_view.size());
    stats_.compress_micros += pb.compress_micros;
  }
  files_[path] = std::move(meta);
  if (store_ != nullptr) {
    // Durability order: payload files land (fsync'd) before the create
    // record. A crash in between leaves orphan payloads (harmless); the
    // reverse order would let replay resurrect a file without bytes.
    const FileMeta& fm = files_.at(path);
    for (size_t b = 0; b < fm.blocks.size(); ++b) {
      GESALL_RETURN_NOT_OK(WriteDurableFile(BlockPayloadPath(fm.blocks[b]),
                                            pending[b].store_view));
    }
    std::string rec;
    BufferWriter w(&rec);
    w.PutU8(kOpCreateFile);
    w.PutString(path);
    w.PutI64(size);
    w.PutU32(static_cast<uint32_t>(fm.blocks.size()));
    for (int64_t id : fm.blocks) EncodeBlock(&w, id, blocks_.at(id));
    GESALL_RETURN_NOT_OK(JournalLocked(rec));
    MaybeCheckpointLocked();
  }
  return Status::OK();
}

Result<const Dfs::FileMeta*> Dfs::MetaLocked(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return &it->second;
}

Result<std::string> Dfs::Read(const std::string& path) const {
  GESALL_RETURN_NOT_OK(init_status_);
  std::lock_guard<std::mutex> lock(health_mu_);
  GESALL_ASSIGN_OR_RETURN(const FileMeta* meta, MetaLocked(path));
  return ReadRangeLocked(path, 0, meta->size);
}

Result<std::string> Dfs::ReadRange(const std::string& path, int64_t offset,
                                   int64_t length) const {
  GESALL_RETURN_NOT_OK(init_status_);
  std::lock_guard<std::mutex> lock(health_mu_);
  return ReadRangeLocked(path, offset, length);
}

Result<std::string> Dfs::ReadRangeLocked(const std::string& path,
                                         int64_t offset,
                                         int64_t length) const {
  GESALL_ASSIGN_OR_RETURN(const FileMeta* meta, MetaLocked(path));
  if (offset < 0 || offset + length > meta->size) {
    return Status::OutOfRange("read range outside file");
  }
  std::string out;
  out.reserve(static_cast<size_t>(length));
  int64_t pos = offset;
  while (length > 0) {
    int64_t block_index = pos / options_.block_size;
    int64_t intra = pos % options_.block_size;
    int64_t block_id = meta->blocks[block_index];
    BlockMeta& bm = blocks_.at(block_id);
    const std::string* bytes = ReadBlockReplicasLocked(block_id, bm);
    if (bytes == nullptr) {
      return Status::IOError("all replicas of block " +
                             std::to_string(block_id) + " unavailable");
    }
    int64_t take = std::min<int64_t>(length, bm.length - intra);
    if (bm.compressed) {
      // Lazy decode: only the 64 KiB BGZF sub-blocks covering
      // [intra, intra+take) inflate; the rest are skipped by header walk.
      int64_t micros = 0;
      GESALL_RETURN_NOT_OK(BgzfReadRange(*bytes, static_cast<size_t>(intra),
                                         static_cast<size_t>(take), &out,
                                         &micros));
      stats_.decompress_micros += micros;
    } else {
      out.append(*bytes, static_cast<size_t>(intra),
                 static_cast<size_t>(take));
    }
    pos += take;
    length -= take;
  }
  return out;
}

void Dfs::QuarantineReplicaLocked(int64_t block_id, BlockMeta* bm,
                                  size_t ri) const {
  const int node = bm->replicas[ri].node;
  nodes_[node].blocks.erase(block_id);
  verified_.erase({block_id, node});
  bm->replicas.erase(bm->replicas.begin() + static_cast<int64_t>(ri));
  ++stats_.replicas_quarantined;
  if (store_ != nullptr) {
    // Best-effort: the canonical payload file is never rotted (injected
    // corruption flips in-memory replica bytes only), so a lost
    // quarantine record merely resurrects a replica that re-verifies
    // clean from its payload on recovery.
    std::string rec;
    BufferWriter w(&rec);
    w.PutU8(kOpRemoveReplica);
    w.PutI64(block_id);
    w.PutI32(node);
    JournalBestEffortLocked(rec);
  }
}

bool Dfs::VerifyReplicaLocked(int64_t block_id, BlockMeta* bm,
                              size_t ri) const {
  const Replica rep = bm->replicas[ri];
  std::string& bytes = nodes_[rep.node].blocks.at(block_id);
  FaultInjector* injector = injector_.load(std::memory_order_acquire);
  if (injector != nullptr && !bytes.empty() &&
      injector->ShouldFail(kFaultDfsBlockCorrupt, block_id, rep.ordinal)) {
    // Lazy corruption: rot one byte of the stored replica the moment it
    // is read. Detection quarantines the replica immediately, so the
    // point cannot re-fire for it and toggle the byte back.
    bytes[static_cast<size_t>(block_id) % bytes.size()] ^= 0x40;
    verified_.erase({block_id, rep.node});
  }
  if (verified_.count({block_id, rep.node}) > 0) return true;
  if (ChunksMatch(bytes, bm->chunk_sums)) {
    verified_.insert({block_id, rep.node});
    return true;
  }
  ++stats_.corruptions_detected;
  QuarantineReplicaLocked(block_id, bm, ri);
  return false;
}

const std::string* Dfs::ReadBlockReplicasLocked(int64_t block_id,
                                                BlockMeta& bm) const {
  // HDFS read failover: walk the replica list in order, skipping nodes
  // that are down, dead, or blacklisted and replicas the injector fails
  // or whose bytes fail CRC verification; the first healthy replica
  // serves the block. Injector decisions are pure in (block, replica),
  // so one seed pins one consistent set of "bad" replicas across
  // repeated reads.
  int failures = 0;
  FaultInjector* injector = injector_.load(std::memory_order_acquire);
  for (size_t ri = 0; ri < bm.replicas.size();) {
    int node = bm.replicas[ri].node;
    bool failed = !nodes_[node].up || nodes_[node].declared_dead ||
                  health_[node].blacklisted;
    if (!failed && injector != nullptr &&
        injector->ShouldFail(kFaultDfsReadReplica, block_id,
                             static_cast<int>(ri))) {
      failed = true;
      // Injected replica failure counts against the node's health;
      // blacklist it after blacklist_threshold consecutive failures.
      NodeHealth& health = health_[node];
      if (++health.consecutive_failures >= options_.blacklist_threshold &&
          !health.blacklisted) {
        health.blacklisted = true;
        ++stats_.nodes_blacklisted;
      }
    }
    if (failed) {
      ++failures;
      ++stats_.replica_read_failures;
      ++ri;
      continue;
    }
    if (!VerifyReplicaLocked(block_id, &bm, ri)) {
      // Corrupt replica: quarantined (a corrupt block is reported to the
      // namenode, not held against the node's health), and the loop
      // continues at the same index, which now names the next replica.
      ++failures;
      ++stats_.replica_read_failures;
      continue;
    }
    health_[node].consecutive_failures = 0;
    if (failures > 0) ++stats_.blocks_failed_over;
    return &nodes_[node].blocks.at(block_id);
  }
  ++stats_.reads_failed;
  return nullptr;
}

const std::string* Dfs::HealthySourceLocked(int64_t block_id,
                                            BlockMeta* bm) {
  // Scrubber reads are reads: the source replica is verified (and the
  // corruption point consulted) exactly like a client read, so a rotted
  // source cannot be cloned.
  for (size_t ri = 0; ri < bm->replicas.size();) {
    const Replica rep = bm->replicas[ri];
    if (!nodes_[rep.node].up || nodes_[rep.node].declared_dead) {
      ++ri;
      continue;
    }
    if (!VerifyReplicaLocked(block_id, bm, ri)) continue;
    return &nodes_[rep.node].blocks.at(block_id);
  }
  return nullptr;
}

void Dfs::RepairBlockLocked(int64_t block_id, BlockMeta* bm) {
  // The namenode drops a dead node's replicas from the block map; the
  // node's storage is erased too, so a later restart cannot resurrect
  // stale bytes.
  for (size_t i = 0; i < bm->replicas.size();) {
    const int node = bm->replicas[i].node;
    if (nodes_[node].declared_dead) {
      nodes_[node].blocks.erase(block_id);
      verified_.erase({block_id, node});
      bm->replicas.erase(bm->replicas.begin() + static_cast<int64_t>(i));
      if (store_ != nullptr) {
        std::string rec;
        BufferWriter w(&rec);
        w.PutU8(kOpRemoveReplica);
        w.PutI64(block_id);
        w.PutI32(node);
        JournalBestEffortLocked(rec);
      }
    } else {
      ++i;
    }
  }
  int live_nodes = 0;
  for (const auto& dn : nodes_) {
    if (dn.up && !dn.declared_dead) ++live_nodes;
  }
  // Replicas on silent-but-not-yet-dead nodes still count: HDFS waits
  // for the dead verdict before re-replicating around a quiet node.
  const int target = std::min(options_.replication, live_nodes);
  while (static_cast<int>(bm->replicas.size()) < target) {
    const std::string* src = HealthySourceLocked(block_id, bm);
    if (src == nullptr) break;  // no verified copy left to clone
    int dest = -1;
    for (int n = 0; n < options_.num_data_nodes; ++n) {
      if (!nodes_[n].up || nodes_[n].declared_dead) continue;
      if (nodes_[n].blocks.count(block_id) > 0) continue;
      dest = n;
      break;
    }
    if (dest < 0) break;
    nodes_[dest].blocks[block_id] = *src;
    bm->replicas.push_back({dest, bm->next_ordinal++});
    verified_.insert({block_id, dest});
    ++stats_.blocks_re_replicated;
    stats_.bytes_re_replicated += bm->stored_length;
    if (store_ != nullptr) {
      // The clone shares the canonical payload file; only the replica
      // mapping needs to go durable.
      std::string rec;
      BufferWriter w(&rec);
      w.PutU8(kOpAddReplica);
      w.PutI64(block_id);
      w.PutI32(dest);
      w.PutI32(bm->replicas.back().ordinal);
      JournalBestEffortLocked(rec);
    }
  }
}

void Dfs::ScrubLocked() {
  for (auto& [id, bm] : blocks_) RepairBlockLocked(id, &bm);
}

void Dfs::RestartNodeLocked(int node) {
  DataNode& dn = nodes_[node];
  dn.up = true;
  dn.declared_dead = false;
  dn.last_heartbeat_tick = tick_ - 1;
  health_[node] = NodeHealth{};
  ++stats_.node_restarts;
}

Status Dfs::Tick() {
  GESALL_RETURN_NOT_OK(init_status_);
  std::lock_guard<std::mutex> lock(health_mu_);
  const int64_t tick = tick_++;
  FaultInjector* injector = injector_.load(std::memory_order_acquire);
  for (int n = 0; n < options_.num_data_nodes; ++n) {
    DataNode& dn = nodes_[n];
    if (injector != nullptr && !dn.up &&
        injector->ShouldFail(kFaultNodeRestart, n,
                             static_cast<int>(tick))) {
      RestartNodeLocked(n);
    }
    if (injector != nullptr && dn.up &&
        injector->ShouldFail(kFaultNodeCrash, n, static_cast<int>(tick))) {
      dn.up = false;  // crash: stops serving and heartbeating; storage
                      // survives until the node is declared dead
    }
    if (dn.up) {
      dn.last_heartbeat_tick = tick;
      dn.declared_dead = false;
    } else if (!dn.declared_dead &&
               tick - dn.last_heartbeat_tick >=
                   options_.heartbeat_miss_threshold) {
      dn.declared_dead = true;
      ++stats_.nodes_declared_dead;
    }
  }
  ScrubLocked();
  MaybeCheckpointLocked();
  return Status::OK();
}

Result<std::vector<BlockLocation>> Dfs::Locate(
    const std::string& path) const {
  GESALL_RETURN_NOT_OK(init_status_);
  std::lock_guard<std::mutex> lock(health_mu_);
  GESALL_ASSIGN_OR_RETURN(const FileMeta* meta, MetaLocked(path));
  std::vector<BlockLocation> out;
  int64_t off = 0;
  for (int64_t id : meta->blocks) {
    const BlockMeta& bm = blocks_.at(id);
    BlockLocation loc;
    loc.block_id = id;
    loc.offset = off;
    loc.length = bm.length;
    for (const Replica& r : bm.replicas) loc.replicas.push_back(r.node);
    out.push_back(std::move(loc));
    off += bm.length;
  }
  return out;
}

Result<int64_t> Dfs::FileSize(const std::string& path) const {
  GESALL_RETURN_NOT_OK(init_status_);
  std::lock_guard<std::mutex> lock(health_mu_);
  GESALL_ASSIGN_OR_RETURN(const FileMeta* meta, MetaLocked(path));
  return meta->size;
}

bool Dfs::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return files_.count(path) > 0;
}

Status Dfs::Delete(const std::string& path) {
  GESALL_RETURN_NOT_OK(init_status_);
  std::lock_guard<std::mutex> lock(health_mu_);
  GESALL_RETURN_NOT_OK(DeleteLocked(path));
  MaybeCheckpointLocked();
  return Status::OK();
}

Status Dfs::DeleteLocked(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  if (store_ != nullptr) {
    // The delete record goes durable before payload files disappear: a
    // crash in between leaves orphan payloads, never a live file whose
    // bytes are gone.
    std::string rec;
    BufferWriter w(&rec);
    w.PutU8(kOpDeleteFile);
    w.PutString(path);
    GESALL_RETURN_NOT_OK(JournalLocked(rec));
  }
  for (int64_t id : it->second.blocks) {
    const BlockMeta& bm = blocks_.at(id);
    for (const Replica& r : bm.replicas) {
      nodes_[r.node].blocks.erase(id);
      verified_.erase({id, r.node});
    }
    blocks_.erase(id);
    if (store_ != nullptr) {
      std::error_code ec;
      std::filesystem::remove(BlockPayloadPath(id), ec);
    }
  }
  files_.erase(it);
  return Status::OK();
}

std::vector<std::string> Dfs::List(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  std::vector<std::string> out;
  for (const auto& [path, meta] : files_) {
    if (path.compare(0, prefix.size(), prefix) == 0) out.push_back(path);
  }
  return out;
}

Status Dfs::MarkNodeDown(int node) {
  GESALL_RETURN_NOT_OK(init_status_);
  if (node < 0 || node >= options_.num_data_nodes) {
    return Status::InvalidArgument("bad node id");
  }
  std::lock_guard<std::mutex> lock(health_mu_);
  nodes_[node].up = false;
  return Status::OK();
}

Status Dfs::MarkNodeUp(int node) {
  GESALL_RETURN_NOT_OK(init_status_);
  if (node < 0 || node >= options_.num_data_nodes) {
    return Status::InvalidArgument("bad node id");
  }
  std::lock_guard<std::mutex> lock(health_mu_);
  nodes_[node].up = true;
  nodes_[node].declared_dead = false;
  nodes_[node].last_heartbeat_tick = tick_ - 1;
  health_[node] = NodeHealth{};
  return Status::OK();
}

Status Dfs::CrashNode(int node) { return MarkNodeDown(node); }

Status Dfs::RestartNode(int node) {
  GESALL_RETURN_NOT_OK(init_status_);
  if (node < 0 || node >= options_.num_data_nodes) {
    return Status::InvalidArgument("bad node id");
  }
  std::lock_guard<std::mutex> lock(health_mu_);
  if (!nodes_[node].up) RestartNodeLocked(node);
  return Status::OK();
}

DfsStats Dfs::stats() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return stats_;
}

void Dfs::ResetStats() {
  std::lock_guard<std::mutex> lock(health_mu_);
  stats_ = DfsStats{};
}

bool Dfs::IsBlacklisted(int node) const {
  if (node < 0 || node >= static_cast<int>(health_.size())) return false;
  std::lock_guard<std::mutex> lock(health_mu_);
  return health_[node].blacklisted;
}

bool Dfs::IsDeclaredDead(int node) const {
  if (node < 0 || node >= static_cast<int>(nodes_.size())) return false;
  std::lock_guard<std::mutex> lock(health_mu_);
  return nodes_[node].declared_dead;
}

int64_t Dfs::heartbeat_tick() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return tick_;
}

int64_t Dfs::BytesStoredOn(int node) const {
  if (node < 0 || node >= static_cast<int>(nodes_.size())) return 0;
  std::lock_guard<std::mutex> lock(health_mu_);
  int64_t n = 0;
  for (const auto& [id, bytes] : nodes_[node].blocks) {
    n += static_cast<int64_t>(bytes.size());
  }
  return n;
}

// ---------------------------------------------------------------------
// Durability: namespace journal + snapshots + block payload files.

std::string Dfs::BlockPayloadPath(int64_t block_id) const {
  return blocks_dir_ + "/blk_" + std::to_string(block_id);
}

Status Dfs::JournalLocked(std::string_view record) const {
  GESALL_RETURN_NOT_OK(store_->Append(record));
  ++stats_.journal_records_appended;
  return Status::OK();
}

void Dfs::JournalBestEffortLocked(std::string_view record) const {
  if (!JournalLocked(record).ok()) ++stats_.journal_append_failures;
}

void Dfs::MaybeCheckpointLocked() {
  if (store_ == nullptr || !store_->ShouldCheckpoint()) return;
  if (store_->Checkpoint(EncodeSnapshotLocked()).ok()) {
    ++stats_.snapshots_written;
  } else {
    ++stats_.journal_append_failures;
  }
}

void Dfs::EncodeBlock(BufferWriter* w, int64_t id, const BlockMeta& bm) {
  w->PutI64(id);
  w->PutI64(bm.length);
  w->PutI64(bm.stored_length);
  w->PutU8(bm.compressed ? 1 : 0);
  w->PutI32(bm.next_ordinal);
  w->PutU32(static_cast<uint32_t>(bm.chunk_sums.size()));
  for (uint32_t s : bm.chunk_sums) w->PutU32(s);
  w->PutU32(static_cast<uint32_t>(bm.replicas.size()));
  for (const Replica& r : bm.replicas) {
    w->PutI32(r.node);
    w->PutI32(r.ordinal);
  }
}

Status Dfs::DecodeBlock(BufferReader* r, int64_t* id, BlockMeta* bm) {
  GESALL_RETURN_NOT_OK(r->GetI64(id));
  GESALL_RETURN_NOT_OK(r->GetI64(&bm->length));
  GESALL_RETURN_NOT_OK(r->GetI64(&bm->stored_length));
  uint8_t compressed = 0;
  GESALL_RETURN_NOT_OK(r->GetU8(&compressed));
  bm->compressed = compressed != 0;
  int32_t next_ordinal = 0;
  GESALL_RETURN_NOT_OK(r->GetI32(&next_ordinal));
  bm->next_ordinal = next_ordinal;
  uint32_t n_sums = 0;
  GESALL_RETURN_NOT_OK(r->GetU32(&n_sums));
  bm->chunk_sums.resize(n_sums);
  for (uint32_t i = 0; i < n_sums; ++i) {
    GESALL_RETURN_NOT_OK(r->GetU32(&bm->chunk_sums[i]));
  }
  uint32_t n_replicas = 0;
  GESALL_RETURN_NOT_OK(r->GetU32(&n_replicas));
  bm->replicas.resize(n_replicas);
  for (uint32_t i = 0; i < n_replicas; ++i) {
    int32_t node = 0;
    int32_t ordinal = 0;
    GESALL_RETURN_NOT_OK(r->GetI32(&node));
    GESALL_RETURN_NOT_OK(r->GetI32(&ordinal));
    bm->replicas[i] = {node, ordinal};
  }
  return Status::OK();
}

std::string Dfs::EncodeSnapshotLocked() const {
  std::string out;
  BufferWriter w(&out);
  w.PutU32(static_cast<uint32_t>(files_.size()));
  for (const auto& [path, fm] : files_) {
    w.PutString(path);
    w.PutI64(fm.size);
    w.PutU32(static_cast<uint32_t>(fm.blocks.size()));
    for (int64_t id : fm.blocks) w.PutI64(id);
  }
  w.PutU32(static_cast<uint32_t>(blocks_.size()));
  for (const auto& [id, bm] : blocks_) EncodeBlock(&w, id, bm);
  w.PutI64(next_block_id_);
  w.PutI64(tick_);
  return out;
}

Status Dfs::ApplySnapshotLocked(std::string_view payload) {
  BufferReader r(payload);
  uint32_t n_files = 0;
  GESALL_RETURN_NOT_OK(r.GetU32(&n_files));
  for (uint32_t i = 0; i < n_files; ++i) {
    std::string path;
    GESALL_RETURN_NOT_OK(r.GetString(&path));
    FileMeta fm;
    GESALL_RETURN_NOT_OK(r.GetI64(&fm.size));
    uint32_t n_blocks = 0;
    GESALL_RETURN_NOT_OK(r.GetU32(&n_blocks));
    fm.blocks.resize(n_blocks);
    for (uint32_t b = 0; b < n_blocks; ++b) {
      GESALL_RETURN_NOT_OK(r.GetI64(&fm.blocks[b]));
    }
    files_[path] = std::move(fm);
  }
  uint32_t n_blocks = 0;
  GESALL_RETURN_NOT_OK(r.GetU32(&n_blocks));
  for (uint32_t b = 0; b < n_blocks; ++b) {
    int64_t id = 0;
    BlockMeta bm;
    GESALL_RETURN_NOT_OK(DecodeBlock(&r, &id, &bm));
    blocks_[id] = std::move(bm);
  }
  GESALL_RETURN_NOT_OK(r.GetI64(&next_block_id_));
  GESALL_RETURN_NOT_OK(r.GetI64(&tick_));
  return Status::OK();
}

Status Dfs::ApplyJournalRecordLocked(std::string_view record) {
  BufferReader r(record);
  uint8_t op = 0;
  GESALL_RETURN_NOT_OK(r.GetU8(&op));
  switch (op) {
    case kOpCreateFile: {
      std::string path;
      GESALL_RETURN_NOT_OK(r.GetString(&path));
      FileMeta fm;
      GESALL_RETURN_NOT_OK(r.GetI64(&fm.size));
      uint32_t n_blocks = 0;
      GESALL_RETURN_NOT_OK(r.GetU32(&n_blocks));
      // Replace any stale entry (the journaled delete precedes the
      // create, so this is purely defensive).
      auto stale = files_.find(path);
      if (stale != files_.end()) {
        for (int64_t id : stale->second.blocks) blocks_.erase(id);
        files_.erase(stale);
      }
      for (uint32_t b = 0; b < n_blocks; ++b) {
        int64_t id = 0;
        BlockMeta bm;
        GESALL_RETURN_NOT_OK(DecodeBlock(&r, &id, &bm));
        next_block_id_ = std::max(next_block_id_, id + 1);
        blocks_[id] = std::move(bm);
        fm.blocks.push_back(id);
      }
      files_[path] = std::move(fm);
      return Status::OK();
    }
    case kOpDeleteFile: {
      std::string path;
      GESALL_RETURN_NOT_OK(r.GetString(&path));
      auto it = files_.find(path);
      if (it == files_.end()) return Status::OK();  // idempotent
      for (int64_t id : it->second.blocks) blocks_.erase(id);
      files_.erase(it);
      return Status::OK();
    }
    case kOpAddReplica: {
      int64_t id = 0;
      int32_t node = 0;
      int32_t ordinal = 0;
      GESALL_RETURN_NOT_OK(r.GetI64(&id));
      GESALL_RETURN_NOT_OK(r.GetI32(&node));
      GESALL_RETURN_NOT_OK(r.GetI32(&ordinal));
      auto it = blocks_.find(id);
      if (it == blocks_.end()) return Status::OK();  // file since deleted
      for (const Replica& rep : it->second.replicas) {
        if (rep.node == node) return Status::OK();
      }
      it->second.replicas.push_back({node, ordinal});
      it->second.next_ordinal =
          std::max(it->second.next_ordinal, ordinal + 1);
      return Status::OK();
    }
    case kOpRemoveReplica: {
      int64_t id = 0;
      int32_t node = 0;
      GESALL_RETURN_NOT_OK(r.GetI64(&id));
      GESALL_RETURN_NOT_OK(r.GetI32(&node));
      auto it = blocks_.find(id);
      if (it == blocks_.end()) return Status::OK();
      auto& replicas = it->second.replicas;
      for (size_t i = 0; i < replicas.size(); ++i) {
        if (replicas[i].node == node) {
          replicas.erase(replicas.begin() + static_cast<int64_t>(i));
          break;
        }
      }
      return Status::OK();
    }
    default:
      return Status::Corruption("unknown DFS journal opcode " +
                                std::to_string(op));
  }
}

Status Dfs::RecoverLocked() {
  const std::string& root = options_.durability.root_dir;
  blocks_dir_ = root + "/blocks";
  std::error_code ec;
  std::filesystem::create_directories(blocks_dir_, ec);
  if (ec) {
    return Status::IOError("creating block directory '" + blocks_dir_ +
                           "': " + ec.message());
  }
  store_ = std::make_unique<JournaledStore>(root + "/namespace",
                                            options_.durability);
  recovery_ = DfsRecoveryStats{};
  recovery_.recovered = true;
  GESALL_RETURN_NOT_OK(store_->Recover(
      [this](std::string_view p) { return ApplySnapshotLocked(p); },
      [this](std::string_view p) { return ApplyJournalRecordLocked(p); }));
  recovery_.snapshot_loaded = store_->snapshot_loaded();
  recovery_.journal_records_replayed = store_->replay_stats().records;
  recovery_.torn_tail = store_->replay_stats().torn_tail;

  // Load canonical payloads. A block whose payload file is missing or
  // mis-sized condemns its whole file: the create record went durable
  // but the payload never fully landed, so the file never existed as a
  // readable whole.
  std::map<int64_t, std::string> payloads;
  std::set<int64_t> bad_blocks;
  for (const auto& [id, bm] : blocks_) {
    Result<std::string> data = ReadFileToString(BlockPayloadPath(id));
    if (!data.ok() ||
        static_cast<int64_t>(data.ValueOrDie().size()) != bm.stored_length) {
      bad_blocks.insert(id);
    } else {
      payloads[id] = data.MoveValueUnsafe();
    }
  }
  for (auto it = files_.begin(); it != files_.end();) {
    bool damaged = false;
    for (int64_t id : it->second.blocks) damaged |= bad_blocks.count(id) > 0;
    if (damaged) {
      for (int64_t id : it->second.blocks) {
        blocks_.erase(id);
        payloads.erase(id);
      }
      it = files_.erase(it);
      ++recovery_.files_dropped;
    } else {
      ++recovery_.files_recovered;
      ++it;
    }
  }
  // Populate node storage from the canonical payloads; replicas naming
  // nodes outside the (possibly re-sized) cluster are dropped.
  for (auto& [id, bm] : blocks_) {
    auto& replicas = bm.replicas;
    for (size_t i = 0; i < replicas.size();) {
      const int node = replicas[i].node;
      if (node < 0 || node >= options_.num_data_nodes) {
        replicas.erase(replicas.begin() + static_cast<int64_t>(i));
        continue;
      }
      nodes_[node].blocks[id] = payloads[id];
      ++i;
    }
  }
  recovery_.blocks_recovered = static_cast<int64_t>(blocks_.size());
  return Status::OK();
}

Status Dfs::SimulateCrash() {
  GESALL_RETURN_NOT_OK(init_status_);
  std::lock_guard<std::mutex> lock(health_mu_);
  if (store_ == nullptr) {
    return Status::InvalidArgument(
        "SimulateCrash requires DfsOptions::durability.root_dir");
  }
  // Kill: every in-memory structure dies with the process image; the
  // store's file handles close without a checkpoint.
  store_.reset();
  files_.clear();
  blocks_.clear();
  verified_.clear();
  nodes_.assign(static_cast<size_t>(options_.num_data_nodes), DataNode{});
  health_.assign(static_cast<size_t>(options_.num_data_nodes), NodeHealth{});
  next_block_id_ = 1;
  tick_ = 0;
  // Restart: reconstruct from the durable root alone.
  return RecoverLocked();
}

DfsRecoveryStats Dfs::recovery_stats() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return recovery_;
}

}  // namespace gesall

// Error Diagnosis Toolkit (paper §3.4 and §4.5.2).
//
// Quantifies how a parallel pipeline's output differs from the serial
// reference: discordant counts (D_count), quality-weighted variants via
// the generalized logistic weighting, discordant variant impact
// (D_impact, computed by the caller through hybrid pipelines), and the
// Fig. 11 breakdowns (hard-to-map regions, MAPQ distribution, insert
// size) plus GiaB-style precision/sensitivity against planted truth.

#ifndef GESALL_GESALL_DIAGNOSIS_H_
#define GESALL_GESALL_DIAGNOSIS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dfs/dfs.h"
#include "formats/fasta.h"
#include "formats/sam.h"
#include "formats/vcf.h"
#include "genome/donor.h"
#include "mr/mapreduce.h"
#include "util/status.h"

namespace gesall {

/// \brief Alignment-level discordance between two pipelines (paper
/// Table 8 row "Bwa" and Fig. 11).
struct AlignmentDiscordance {
  int64_t total_reads = 0;
  int64_t d_count = 0;           // primary alignments that differ
  double weighted_d_count = 0;   // logistic(30..55) MAPQ weighting
  double weighted_d_count_pct = 0;

  // Fig. 11(a): where do disagreements fall?
  int64_t discordant_centromere = 0;
  int64_t discordant_blacklist = 0;
  int64_t discordant_elsewhere = 0;

  // Fig. 11(b): joint MAPQ distribution of disagreeing reads, bucketed
  // by 10 ((serial_bucket, parallel_bucket) -> count).
  std::map<std::pair<int, int>, int64_t> mapq_buckets;

  // Fig. 11(c): disagreeing proper pairs by (bucketed) insert size.
  std::map<int64_t, int64_t> insert_size_buckets;

  /// Disagreements surviving the two standard filters (MAPQ > 30, not in
  /// a blacklisted/centromeric region) — the paper's 0.025% remnant.
  int64_t discordant_after_filters = 0;
};

/// \brief Compares primary alignments keyed by (read name, mate).
AlignmentDiscordance CompareAlignments(
    const ReferenceGenome& reference, const std::vector<SamRecord>& serial,
    const std::vector<SamRecord>& parallel);

/// \brief Duplicate-flag discordance (paper Table 8 row "MarkDuplicates").
struct DuplicateDiscordance {
  int64_t d_count = 0;          // reads whose duplicate flag differs
  double weighted_d_count = 0;  // MAPQ-weighted
  int64_t duplicates_serial = 0;
  int64_t duplicates_parallel = 0;

  /// |#duplicates_serial - #duplicates_parallel| (the paper's "difference
  /// in number of duplicates is only 259").
  int64_t duplicate_count_delta() const {
    return duplicates_serial > duplicates_parallel
               ? duplicates_serial - duplicates_parallel
               : duplicates_parallel - duplicates_serial;
  }
};

DuplicateDiscordance CompareDuplicates(const std::vector<SamRecord>& serial,
                                       const std::vector<SamRecord>& parallel);

/// \brief Variant-set discordance (paper Tables 8-10): concordant set
/// Phi+, discordant sets, and quality-weighted counts.
struct VariantDiscordance {
  std::vector<VariantRecord> concordant;
  std::vector<VariantRecord> only_first;   // "Serial"-only calls
  std::vector<VariantRecord> only_second;  // "Hybrid"/parallel-only calls

  int64_t d_count() const {
    return static_cast<int64_t>(only_first.size() + only_second.size());
  }
  double weighted_d_count = 0;  // logistic weighting on variant QUAL
  double weighted_d_count_pct = 0;
};

VariantDiscordance CompareVariants(const std::vector<VariantRecord>& first,
                                   const std::vector<VariantRecord>& second);

/// \brief GiaB-style evaluation against the planted truth set.
struct PrecisionSensitivity {
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  int64_t false_negatives = 0;
  double precision = 0;
  double sensitivity = 0;
};

PrecisionSensitivity EvaluateAgainstTruth(
    const std::vector<VariantRecord>& calls,
    const std::vector<PlantedVariant>& truth);

/// \brief Fault-tolerance telemetry of one pipeline execution: task
/// retries, speculative re-executions, skipped poison splits, and DFS
/// replica failover (the Hadoop behaviors of paper §3 that make partial
/// task failures survivable at 220 GB scale).
struct FaultToleranceSummary {
  int64_t map_task_retries = 0;
  int64_t reduce_task_retries = 0;
  int64_t speculative_launches = 0;
  int64_t speculative_wins = 0;
  int64_t map_splits_skipped = 0;
  int64_t blocks_failed_over = 0;
  int64_t replica_read_failures = 0;
  int64_t nodes_blacklisted = 0;

  /// True when any recovery mechanism fired during the run.
  bool any_faults_survived() const {
    return map_task_retries > 0 || reduce_task_retries > 0 ||
           speculative_wins > 0 || map_splits_skipped > 0 ||
           blocks_failed_over > 0;
  }
};

/// \brief Extracts the fault-tolerance telemetry from aggregated job
/// counters plus (optionally) the DFS read-path stats.
FaultToleranceSummary SummarizeFaultTolerance(const JobCounters& counters,
                                              const DfsStats* dfs_stats);

/// \brief Integrity and whole-node failure telemetry of one pipeline
/// execution: corrupted replicas detected/quarantined/re-replicated by
/// the DFS checksum + scrubber machinery, nodes declared dead on missed
/// heartbeats, and the MR job master's lost-map-output re-executions —
/// the recovery paths a chaos run must exercise to prove end-to-end
/// byte-identical output under corruption and node loss.
struct NodeFailureSummary {
  // DFS integrity (block CRC32C verification + scrubber).
  int64_t corruptions_detected = 0;
  int64_t replicas_quarantined = 0;
  int64_t blocks_re_replicated = 0;
  int64_t bytes_re_replicated = 0;
  // DFS liveness (heartbeat clock).
  int64_t nodes_declared_dead = 0;
  int64_t node_restarts = 0;
  // MR lost-map-output re-execution.
  int64_t map_tasks_reexecuted = 0;
  int64_t map_outputs_lost_to_dead_nodes = 0;
  int64_t shuffle_fetch_corruptions = 0;
  int64_t shuffle_partitions_verified = 0;
  int64_t shuffle_checksummed_bytes = 0;

  /// True when any corruption/node-loss recovery mechanism fired.
  bool any_node_failures_survived() const {
    return corruptions_detected > 0 || blocks_re_replicated > 0 ||
           nodes_declared_dead > 0 || map_tasks_reexecuted > 0;
  }
};

/// \brief Extracts the integrity/node-failure telemetry from aggregated
/// job counters plus (optionally) the DFS stats.
NodeFailureSummary SummarizeNodeFailures(const JobCounters& counters,
                                         const DfsStats* dfs_stats);

/// \brief Disk-byte and compression telemetry of one pipeline execution:
/// raw vs on-disk bytes on the shuffle-spill and DFS-part paths plus the
/// codec cpu time — both axes of the Fig. 10 disk-utilization study, so
/// a reviewer sees what compression bought and what it cost.
struct StorageSummary {
  // Shuffle spill path (JobConfig::compress_shuffle).
  int64_t shuffle_bytes_raw = 0;
  int64_t shuffle_bytes_compressed = 0;
  int64_t shuffle_compress_micros = 0;
  int64_t shuffle_decompress_micros = 0;
  // DFS part path (DfsOptions::compress_parts). Raw == stored when
  // compression is off; both are canonical-copy sizes (replication not
  // multiplied in).
  int64_t dfs_bytes_raw = 0;
  int64_t dfs_bytes_compressed = 0;
  int64_t dfs_compress_micros = 0;
  int64_t dfs_decompress_micros = 0;

  static double Ratio(int64_t raw, int64_t stored) {
    return stored > 0 ? static_cast<double>(raw) / static_cast<double>(stored)
                      : 1.0;
  }
  double shuffle_ratio() const {
    return Ratio(shuffle_bytes_raw, shuffle_bytes_compressed);
  }
  double dfs_ratio() const { return Ratio(dfs_bytes_raw, dfs_bytes_compressed); }
  /// True when either path actually shrank bytes on disk.
  bool any_compression_active() const {
    return (shuffle_bytes_compressed > 0 &&
            shuffle_bytes_compressed < shuffle_bytes_raw) ||
           (dfs_bytes_compressed > 0 && dfs_bytes_compressed < dfs_bytes_raw);
  }
};

/// \brief Extracts the disk-byte/compression telemetry from aggregated
/// job counters plus (optionally) the DFS stats.
StorageSummary SummarizeStorage(const JobCounters& counters,
                                const DfsStats* dfs_stats);

/// \brief Wall span of one pipeline round, relative to the run start.
struct RoundSpan {
  std::string name;
  double start_seconds = 0;
  double end_seconds = 0;
};

/// \brief Execution-engine telemetry of one pipeline run on the shared
/// work-stealing executor: task/steal/queue-wait counts (delta over the
/// run), the per-round wall spans, and the duration-weighted critical
/// path of the round DAG — the lower bound on wall time no amount of
/// extra overlap can beat. overlap_seconds_saved compares the actual
/// wall clock against the sum of round durations (what a fully
/// barriered engine would have spent).
struct ExecutionSummary {
  // Executor telemetry (delta across the run).
  int64_t tasks_executed = 0;
  int64_t steals = 0;
  int64_t tasks_stolen = 0;
  double queue_wait_seconds = 0;

  // Round-DAG accounting.
  bool pipelined = false;
  // Rounds 1+2 ran fused through the streaming node graph (no aligned
  // stage on the DFS); see PipelineConfig::streaming.
  bool streaming = false;
  // Process peak RSS sampled at the end of the run (0 where the
  // platform exposes none). The streaming path's headline claim —
  // memory bounded by queue capacity, not partition depth — is gated
  // on this number in the pipeline bench.
  int64_t peak_rss_bytes = 0;
  double wall_seconds = 0;
  double serialized_round_seconds = 0;  // sum of round durations
  double overlap_seconds_saved = 0;     // serialized - wall (>= 0)
  double critical_path_seconds = 0;
  std::vector<std::string> critical_path;  // round names along it
  std::vector<RoundSpan> rounds;
};

}  // namespace gesall

#endif  // GESALL_GESALL_DIAGNOSIS_H_

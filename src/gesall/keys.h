// GDPT key encodings (paper §3.2).
//
// MapReduce keys are byte strings compared lexicographically, so every
// encoding here is order-preserving where ordering matters (big-endian
// fixed-width integers for coordinates). Three key families:
//
//   group keys      — read name (Bwa, Fix Mate Info grouping)
//   compound keys   — Mark Duplicates pair/end keys (criteria 1 and 2)
//   range keys      — (reference, position) coordinate keys for sorting
//                     and chromosome/segment range partitioning

#ifndef GESALL_GESALL_KEYS_H_
#define GESALL_GESALL_KEYS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "analysis/mark_duplicates.h"
#include "formats/sam.h"
#include "util/status.h"

namespace gesall {

/// Role of a record value shuffled in the Mark Duplicates round.
enum class MarkDupRole : uint8_t {
  kCompletePair = 1,   // bundle of both mates of a complete pair
  kEndRepresentative,  // one complete-pair read standing in for its 5' end
  kPartialPair,        // bundle of a partial matching pair
  kPassthrough,        // both mates unmapped; carried through unchanged
};

/// Appends a big-endian (order-preserving) u64 to a key.
void AppendOrderedU64(std::string* key, uint64_t v);

/// \brief Coordinate key: sorts by (unmapped-last, ref, pos, name hash).
std::string EncodeCoordinateKey(const SamRecord& rec);

/// Coordinate key for a bare (ref, pos) — used as range boundaries.
std::string EncodeCoordinateBoundary(int32_t ref_id, int64_t pos);

/// \brief Mark Duplicates pair key over both normalized 5' ends.
std::string EncodePairKey(const ReadEndKey& k1, const ReadEndKey& k2);

/// \brief Mark Duplicates individual-end key (criterion 2).
std::string EncodeEndKey(const ReadEndKey& k);

/// \brief Passthrough key for fully-unmapped pairs.
std::string EncodePassthroughKey(const std::string& qname);

/// \brief Serializes one-or-two records plus a role into an MR value.
std::string EncodeMarkDupValue(MarkDupRole role, const SamRecord& first,
                               const SamRecord* second = nullptr);

/// \brief Decoded Mark Duplicates value.
struct MarkDupValue {
  MarkDupRole role = MarkDupRole::kPassthrough;
  SamRecord first;
  bool has_second = false;
  SamRecord second;
};

/// Accepts a view so zero-copy reducers can decode straight out of the
/// shuffle arena.
Result<MarkDupValue> DecodeMarkDupValue(std::string_view value);

}  // namespace gesall

#endif  // GESALL_GESALL_KEYS_H_

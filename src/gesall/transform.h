// Runtime Data Transformation Module (paper §3.3, Fig. 8).
//
// Wrapped analysis programs consume and produce in-memory BAM datasets;
// the MapReduce engine moves key-value byte pairs. These helpers perform
// the copy-and-convert in both directions and account the time spent, so
// the Fig. 6(a) transformation-overhead breakdown can be measured on the
// functional engine.

#ifndef GESALL_GESALL_TRANSFORM_H_
#define GESALL_GESALL_TRANSFORM_H_

#include <functional>
#include <string>
#include <vector>

#include "formats/bam.h"
#include "formats/sam.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace gesall {

/// Counter names for the transform/program time split (microseconds).
inline constexpr char kTransformMicros[] = "transform_micros";
inline constexpr char kProgramMicros[] = "program_micros";

/// \brief Charges wall time to a context counter on destruction. Works
/// with any context exposing IncrementCounter(name, delta).
class CounterTimer {
 public:
  template <typename Ctx>
  CounterTimer(Ctx* ctx, const char* counter)
      : charge_([ctx, counter](int64_t micros) {
          ctx->IncrementCounter(counter, micros);
        }) {}
  ~CounterTimer() {
    charge_(static_cast<int64_t>(clock_.ElapsedSeconds() * 1e6));
  }
  CounterTimer(const CounterTimer&) = delete;
  CounterTimer& operator=(const CounterTimer&) = delete;

 private:
  std::function<void(int64_t)> charge_;
  Stopwatch clock_;
};

/// \brief Decodes MR values (each one serialized BAM record) into records,
/// charging elapsed time to the transform counter. Values may be owned
/// strings or views into the shuffle arenas.
template <typename Ctx, typename Value>
Result<std::vector<SamRecord>> RecordsFromValues(
    const std::vector<Value>& values, Ctx* ctx) {
  CounterTimer timer(ctx, kTransformMicros);
  std::vector<SamRecord> records;
  records.reserve(values.size());
  for (const auto& v : values) {
    size_t offset = 0;
    GESALL_ASSIGN_OR_RETURN(SamRecord rec, DecodeBamRecord(v, &offset));
    records.push_back(std::move(rec));
  }
  return records;
}

/// \brief Decodes a whole BAM byte stream into a dataset.
template <typename Ctx>
Result<std::pair<SamHeader, std::vector<SamRecord>>> BamToDataset(
    std::string_view bam, Ctx* ctx) {
  CounterTimer timer(ctx, kTransformMicros);
  return ReadBam(bam);
}

/// \brief Encodes a dataset as BAM bytes.
template <typename Ctx>
Result<std::string> DatasetToBam(const SamHeader& header,
                                 const std::vector<SamRecord>& records,
                                 Ctx* ctx) {
  CounterTimer timer(ctx, kTransformMicros);
  return WriteBam(header, records);
}

/// \brief Runs a wrapped analysis program, charging its runtime to the
/// program counter (the "time in external programs" of Fig. 6a).
template <typename Ctx, typename Fn>
auto RunWrappedProgram(Ctx* ctx, Fn&& fn) {
  CounterTimer timer(ctx, kProgramMicros);
  return fn();
}

}  // namespace gesall

#endif  // GESALL_GESALL_TRANSFORM_H_

#include "gesall/diagnosis.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "util/stats.h"

namespace gesall {

namespace {

// Mate-aware identity of a read within a sample.
std::string ReadKey(const SamRecord& rec) {
  return rec.qname + (rec.IsFirstOfPair() ? "/1" : "/2");
}

bool SameAlignment(const SamRecord& a, const SamRecord& b) {
  if (a.IsUnmapped() != b.IsUnmapped()) return false;
  if (a.IsUnmapped()) return true;
  return a.ref_id == b.ref_id && a.pos == b.pos &&
         a.IsReverse() == b.IsReverse();
}

int MapqBucket(int mapq) { return std::min(mapq, 60) / 10; }

}  // namespace

AlignmentDiscordance CompareAlignments(
    const ReferenceGenome& reference, const std::vector<SamRecord>& serial,
    const std::vector<SamRecord>& parallel) {
  AlignmentDiscordance out;
  LogisticWeight weight(30, 55);

  std::unordered_map<std::string, const SamRecord*> parallel_by_key;
  parallel_by_key.reserve(parallel.size());
  for (const auto& r : parallel) parallel_by_key[ReadKey(r)] = &r;

  std::set<std::string> discordant_pairs;  // for Fig 11(c)
  std::unordered_map<std::string, const SamRecord*> serial_by_qname;

  for (const auto& s : serial) {
    ++out.total_reads;
    auto it = parallel_by_key.find(ReadKey(s));
    if (it == parallel_by_key.end()) continue;  // lost read: skip
    const SamRecord& p = *it->second;
    if (SameAlignment(s, p)) continue;

    ++out.d_count;
    int mapq = std::max(s.mapq, p.mapq);
    out.weighted_d_count += weight(mapq);
    out.mapq_buckets[{MapqBucket(s.mapq), MapqBucket(p.mapq)}] += 1;
    discordant_pairs.insert(s.qname);

    // Region classification at the serial position (or parallel if the
    // serial read is unmapped).
    const SamRecord& located = s.IsUnmapped() ? p : s;
    bool sensitive_region = false;
    if (!located.IsUnmapped()) {
      int64_t len = CigarReferenceLength(located.cigar);
      if (reference.InCentromere(located.ref_id, located.pos, len)) {
        ++out.discordant_centromere;
        sensitive_region = true;
      } else if (reference.InBlacklist(located.ref_id, located.pos, len)) {
        ++out.discordant_blacklist;
        sensitive_region = true;
      } else {
        ++out.discordant_elsewhere;
      }
    } else {
      ++out.discordant_elsewhere;
    }
    if (!sensitive_region && mapq > 30) ++out.discordant_after_filters;
  }

  // Fig 11(c): insert-size distribution of disagreeing pairs, taken from
  // the serial records of those pairs (bucket width 10).
  for (const auto& s : serial) {
    if (discordant_pairs.count(s.qname) == 0) continue;
    if (!s.IsFirstOfPair() || s.tlen == 0) continue;
    int64_t insert = s.tlen > 0 ? s.tlen : -s.tlen;
    out.insert_size_buckets[insert / 10 * 10] += 1;
  }

  out.weighted_d_count_pct =
      out.total_reads > 0
          ? 100.0 * out.weighted_d_count / static_cast<double>(out.total_reads)
          : 0.0;
  return out;
}

DuplicateDiscordance CompareDuplicates(
    const std::vector<SamRecord>& serial,
    const std::vector<SamRecord>& parallel) {
  DuplicateDiscordance out;
  LogisticWeight weight(30, 55);
  std::unordered_map<std::string, const SamRecord*> parallel_by_key;
  parallel_by_key.reserve(parallel.size());
  for (const auto& r : parallel) {
    parallel_by_key[ReadKey(r)] = &r;
    out.duplicates_parallel += r.IsDuplicate();
  }
  for (const auto& s : serial) {
    out.duplicates_serial += s.IsDuplicate();
    auto it = parallel_by_key.find(ReadKey(s));
    if (it == parallel_by_key.end()) continue;
    if (s.IsDuplicate() != it->second->IsDuplicate()) {
      ++out.d_count;
      out.weighted_d_count += weight(std::max(s.mapq, it->second->mapq));
    }
  }
  return out;
}

VariantDiscordance CompareVariants(const std::vector<VariantRecord>& first,
                                   const std::vector<VariantRecord>& second) {
  VariantDiscordance out;
  LogisticWeight weight(30, 55);
  std::unordered_map<std::string, const VariantRecord*> second_by_key;
  second_by_key.reserve(second.size());
  for (const auto& v : second) second_by_key[v.Key()] = &v;

  std::set<std::string> matched;
  for (const auto& v : first) {
    auto it = second_by_key.find(v.Key());
    if (it != second_by_key.end()) {
      out.concordant.push_back(v);
      matched.insert(v.Key());
    } else {
      out.only_first.push_back(v);
      out.weighted_d_count += weight(std::min(v.qual, 60.0));
    }
  }
  for (const auto& v : second) {
    if (matched.count(v.Key()) == 0) {
      out.only_second.push_back(v);
      out.weighted_d_count += weight(std::min(v.qual, 60.0));
    }
  }
  int64_t total = static_cast<int64_t>(out.concordant.size()) + out.d_count();
  out.weighted_d_count_pct =
      total > 0 ? 100.0 * out.weighted_d_count / static_cast<double>(total)
                : 0.0;
  return out;
}

PrecisionSensitivity EvaluateAgainstTruth(
    const std::vector<VariantRecord>& calls,
    const std::vector<PlantedVariant>& truth) {
  PrecisionSensitivity out;
  std::set<std::string> truth_keys;
  for (const auto& t : truth) {
    VariantRecord v;
    v.chrom = t.chrom;
    v.pos = t.pos;
    v.ref = t.ref;
    v.alt = t.alt;
    truth_keys.insert(v.Key());
  }
  std::set<std::string> called;
  for (const auto& c : calls) {
    called.insert(c.Key());
    if (truth_keys.count(c.Key()) > 0) {
      ++out.true_positives;
    } else {
      ++out.false_positives;
    }
  }
  for (const auto& k : truth_keys) {
    if (called.count(k) == 0) ++out.false_negatives;
  }
  int64_t called_total = out.true_positives + out.false_positives;
  int64_t truth_total = out.true_positives + out.false_negatives;
  out.precision = called_total > 0
                      ? static_cast<double>(out.true_positives) / called_total
                      : 0.0;
  out.sensitivity =
      truth_total > 0 ? static_cast<double>(out.true_positives) / truth_total
                      : 0.0;
  return out;
}

FaultToleranceSummary SummarizeFaultTolerance(const JobCounters& counters,
                                              const DfsStats* dfs_stats) {
  FaultToleranceSummary out;
  out.map_task_retries = counters.Get("map_task_retries");
  out.reduce_task_retries = counters.Get("reduce_task_retries");
  out.speculative_launches = counters.Get("speculative_launches");
  out.speculative_wins = counters.Get("speculative_wins");
  out.map_splits_skipped = counters.Get("map_splits_skipped");
  if (dfs_stats != nullptr) {
    out.blocks_failed_over = dfs_stats->blocks_failed_over;
    out.replica_read_failures = dfs_stats->replica_read_failures;
    out.nodes_blacklisted = dfs_stats->nodes_blacklisted;
  }
  return out;
}

NodeFailureSummary SummarizeNodeFailures(const JobCounters& counters,
                                         const DfsStats* dfs_stats) {
  NodeFailureSummary out;
  out.map_tasks_reexecuted = counters.Get("map_tasks_reexecuted");
  out.map_outputs_lost_to_dead_nodes =
      counters.Get("map_outputs_lost_to_dead_nodes");
  out.shuffle_fetch_corruptions = counters.Get("shuffle_fetch_corruptions");
  out.shuffle_partitions_verified =
      counters.Get("shuffle_partitions_verified");
  out.shuffle_checksummed_bytes = counters.Get("shuffle_checksummed_bytes");
  if (dfs_stats != nullptr) {
    out.corruptions_detected = dfs_stats->corruptions_detected;
    out.replicas_quarantined = dfs_stats->replicas_quarantined;
    out.blocks_re_replicated = dfs_stats->blocks_re_replicated;
    out.bytes_re_replicated = dfs_stats->bytes_re_replicated;
    out.nodes_declared_dead = dfs_stats->nodes_declared_dead;
    out.node_restarts = dfs_stats->node_restarts;
  }
  return out;
}

StorageSummary SummarizeStorage(const JobCounters& counters,
                                const DfsStats* dfs_stats) {
  StorageSummary out;
  out.shuffle_bytes_raw = counters.Get("shuffle_spill_bytes_raw");
  out.shuffle_bytes_compressed =
      counters.Get("shuffle_spill_bytes_compressed");
  out.shuffle_compress_micros = counters.Get("shuffle_compress_micros");
  out.shuffle_decompress_micros = counters.Get("shuffle_decompress_micros");
  if (dfs_stats != nullptr) {
    out.dfs_bytes_raw = dfs_stats->bytes_written_raw;
    out.dfs_bytes_compressed = dfs_stats->bytes_written_stored;
    out.dfs_compress_micros = dfs_stats->compress_micros;
    out.dfs_decompress_micros = dfs_stats->decompress_micros;
  }
  return out;
}

}  // namespace gesall

#include "gesall/serial_pipeline.h"

#include <algorithm>

#include "analysis/genotyper.h"
#include "analysis/mark_duplicates.h"
#include "analysis/recalibration.h"
#include "analysis/steps.h"
#include "util/stopwatch.h"

namespace gesall {

namespace {

// Groups records by read name (pairs adjacent) without changing the
// relative order of pairs — the precondition of FixMateInformation and
// MarkDuplicates. Alignment output is already pair-adjacent; this guards
// hybrid inputs assembled from partition files.
void GroupByName(std::vector<SamRecord>* records) {
  for (size_t i = 0; i + 1 < records->size(); i += 2) {
    if ((*records)[i].qname != (*records)[i + 1].qname) {
      std::stable_sort(records->begin(), records->end(),
                       [](const SamRecord& a, const SamRecord& b) {
                         return a.qname < b.qname;
                       });
      return;
    }
  }
}

Status CleanAndFix(const ReferenceGenome& reference,
                   const SerialPipelineConfig& config, SamHeader* header,
                   std::vector<SamRecord>* records,
                   std::map<std::string, double>* timings) {
  (void)reference;
  Stopwatch sw;
  GESALL_RETURN_NOT_OK(
      AddReplaceReadGroups(config.read_group, header, records));
  (*timings)["add_replace_groups"] += sw.ElapsedSeconds();
  sw.Restart();
  CleanSam(*header, records);
  (*timings)["clean_sam"] += sw.ElapsedSeconds();
  sw.Restart();
  GESALL_RETURN_NOT_OK(FixMateInformation(records));
  (*timings)["fix_mate_info"] += sw.ElapsedSeconds();
  return Status::OK();
}

Result<std::vector<VariantRecord>> SortRecalibrateCall(
    const ReferenceGenome& reference, const SerialPipelineConfig& config,
    SamHeader header, std::vector<SamRecord>* records,
    std::map<std::string, double>* timings,
    std::vector<SamRecord>* sorted_out) {
  Stopwatch sw;
  SortSamByCoordinate(&header, records);
  (*timings)["sort_sam"] += sw.ElapsedSeconds();
  if (config.run_recalibration) {
    sw.Restart();
    RecalibrationTable table = BaseRecalibrator(reference, *records);
    (*timings)["base_recalibrator"] += sw.ElapsedSeconds();
    sw.Restart();
    PrintReads(table, records);
    (*timings)["print_reads"] += sw.ElapsedSeconds();
  }
  if (sorted_out != nullptr) *sorted_out = *records;
  sw.Restart();
  HaplotypeCaller caller(reference, config.hc);
  auto variants = caller.CallAll(*records);
  (*timings)["haplotype_caller"] += sw.ElapsedSeconds();
  return variants;
}

}  // namespace

Result<SerialStageOutputs> RunSerialPipeline(
    const ReferenceGenome& reference, const GenomeIndex& index,
    const std::vector<FastqRecord>& interleaved,
    const SerialPipelineConfig& config) {
  SerialStageOutputs out;
  Stopwatch sw;
  PairedEndAligner aligner(index, config.aligner);
  out.aligned = aligner.AlignPairs(interleaved);
  out.header = aligner.MakeHeader();
  out.step_seconds["bwa"] = sw.ElapsedSeconds();

  out.cleaned = out.aligned;
  GESALL_RETURN_NOT_OK(CleanAndFix(reference, config, &out.header,
                                   &out.cleaned, &out.step_seconds));

  out.deduped = out.cleaned;
  sw.Restart();
  GESALL_RETURN_NOT_OK(MarkDuplicates(&out.deduped).status());
  out.step_seconds["mark_duplicates"] = sw.ElapsedSeconds();

  std::vector<SamRecord> working = out.deduped;
  GESALL_ASSIGN_OR_RETURN(
      out.variants,
      SortRecalibrateCall(reference, config, out.header, &working,
                          &out.step_seconds, &out.sorted));
  return out;
}

Result<std::vector<VariantRecord>> SerialTailFromAligned(
    const ReferenceGenome& reference, const SamHeader& header,
    std::vector<SamRecord> aligned, const SerialPipelineConfig& config) {
  GroupByName(&aligned);
  SamHeader local = header;
  std::map<std::string, double> timings;
  GESALL_RETURN_NOT_OK(
      CleanAndFix(reference, config, &local, &aligned, &timings));
  GESALL_RETURN_NOT_OK(MarkDuplicates(&aligned).status());
  return SortRecalibrateCall(reference, config, local, &aligned, &timings,
                             nullptr);
}

Result<std::vector<VariantRecord>> SerialTailFromDeduped(
    const ReferenceGenome& reference, const SamHeader& header,
    std::vector<SamRecord> deduped, const SerialPipelineConfig& config) {
  std::map<std::string, double> timings;
  return SortRecalibrateCall(reference, config, header, &deduped, &timings,
                             nullptr);
}

}  // namespace gesall

#include "gesall/pipeline_node.h"

#include <algorithm>
#include <optional>

#include "analysis/steps.h"

namespace gesall {

namespace {

// Pumps per task before yielding the worker: large enough to amortize
// scheduling, small enough that a saturated node keeps sharing its
// worker with the rest of the graph (and with unrelated executor work).
constexpr int kYieldEvery = 4;

}  // namespace

NodeGraph::NodeGraph(Executor* executor, std::shared_ptr<CancelToken> cancel)
    : executor_(executor != nullptr ? executor : Executor::Shared()),
      cancel_(std::move(cancel)),
      group_(std::make_unique<TaskGroup>(executor_)) {}

void NodeGraph::AddNode(std::string name, std::function<PumpResult()> pump) {
  auto node = std::make_unique<Node>();
  node->name = std::move(name);
  node->pump = std::move(pump);
  nodes_.push_back(std::move(node));
}

void NodeGraph::OnAbort(std::function<void()> abort) {
  abort_ = std::move(abort);
}

void NodeGraph::SetError(Status s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (error_.ok()) error_ = std::move(s);
}

void NodeGraph::Abort() {
  if (aborting_.exchange(true)) return;
  // CloseAbort on every queue fires any parked callback, which
  // reschedules the parked node; its next pump (or the aborting_ check
  // in RunLoop) finishes it.
  if (abort_) abort_();
}

void NodeGraph::Finish(Node* node) {
  (void)node;
  terminal_.fetch_add(1);
}

void NodeGraph::Schedule(Node* node) {
  int s = node->state.load();
  while (true) {
    if (s == kIdle) {
      if (node->state.compare_exchange_weak(s, kRunning)) {
        group_->Submit([this, node] { RunLoop(node); });
        return;
      }
    } else if (s == kRunning) {
      if (node->state.compare_exchange_weak(s, kRunningNotified)) return;
    } else {
      return;  // a notification is already pending
    }
  }
}

void NodeGraph::RunLoop(Node* node) {
  while (true) {
    // Consume any notification that raced in while we were parking or
    // yielding: we are about to pump, which observes the new state.
    node->state.store(kRunning);
    if (aborting_.load() ||
        (cancel_ != nullptr && cancel_->cancelled())) {
      Finish(node);
      return;
    }
    PumpResult r = PumpResult::Progress();
    int spins = 0;
    while (true) {
      ++node->pumps;
      r = node->pump();
      if (r.kind != PumpResult::Kind::kProgress) break;
      if (aborting_.load()) {
        Finish(node);
        return;
      }
      if (++spins >= kYieldEvery) {
        // Yield the worker; the fresh task resumes pumping. State stays
        // kRunning so wake-ups in the gap collapse into the resubmit.
        group_->Submit([this, node] { RunLoop(node); });
        return;
      }
    }
    if (r.kind == PumpResult::Kind::kDone) {
      if (!r.status.ok()) {
        SetError(std::move(r.status));
        Abort();
      }
      Finish(node);
      return;
    }
    // Blocked: register the one-shot wake-up, then try to go idle. The
    // parker may fire inline (item/space already there, or the edge shut
    // down) — that flips the state to kRunningNotified and the CAS below
    // fails, so we loop and pump again instead of parking a stale node.
    ++node->parks;
    r.park([this, node] { Schedule(node); });
    int expected = kRunning;
    if (node->state.compare_exchange_strong(expected, kIdle)) return;
  }
}

Status NodeGraph::Run() {
  const size_t n = nodes_.size();
  for (auto& node : nodes_) {
    Node* raw = node.get();
    raw->state.store(kRunning);
    group_->Submit([this, raw] { RunLoop(raw); });
  }
  size_t last_terminal = static_cast<size_t>(-1);
  while (true) {
    group_->Wait();  // helping: pumps run inline if workers are busy
    const size_t done = terminal_.load();
    if (done == n) break;
    if (!aborting_.load()) {
      if (cancel_ != nullptr && cancel_->cancelled()) {
        SetError(cancel_->status());
      } else {
        // Quiescent with live nodes and no wake-up in flight: every
        // parked pump waits on an edge nothing will ever fire. Record
        // that this error is a stall diagnosis, not a node failure: if
        // the cancel token turns out to have flipped concurrently (it
        // wakes parked nodes through the queue callbacks, so the graph
        // was never truly stuck), the final status below reports the
        // cancellation instead of a misleading Internal error.
        std::lock_guard<std::mutex> lock(mu_);
        if (error_.ok()) {
          error_ = Status::Internal(
              "pipeline node graph stalled with parked nodes");
          stall_errored_ = true;
        }
      }
      Abort();
      last_terminal = static_cast<size_t>(-1);
      continue;
    }
    // Aborting: the abort hook reschedules every parked node, so each
    // quiescent iteration must retire at least one. No progress twice in
    // a row means a node ignored the shutdown contract — fail rather
    // than spin.
    if (done == last_terminal) {
      SetError(Status::Internal(
          "pipeline node ignored abort; graph wedged"));
      break;
    }
    last_terminal = done;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Nodes that observed the flipped token finish without recording a
  // status of their own; the run still must report the cancellation.
  // A stall diagnosis is likewise overridden: a token that flipped in
  // the window between the quiescence check and the stall SetError
  // means the run was cancelled, not wedged.
  if ((error_.ok() || stall_errored_) && cancel_ != nullptr &&
      cancel_->cancelled()) {
    return cancel_->status();
  }
  return error_;
}

std::vector<NodeStats> NodeGraph::node_stats() const {
  std::vector<NodeStats> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    out.push_back({node->name, node->pumps, node->parks});
  }
  return out;
}

// ---------------------------------------------------------------------

Status RunAlignCleanStream(
    const GenomeIndex& index, const PairedAlignerOptions& options,
    std::vector<FastqRecord> interleaved, const AlignCleanStreamOptions& opts,
    const std::function<Status(RecordBatch*)>& sink,
    AlignCleanStreamStats* stats) {
  if (opts.clean && opts.header == nullptr) {
    return Status::InvalidArgument(
        "RunAlignCleanStream: clean requires a header");
  }
  AlignCleanStreamStats discarded;  // sinkhole when the caller passes null
  if (stats == nullptr) stats = &discarded;
  Executor* executor =
      opts.executor != nullptr ? opts.executor : Executor::Shared();
  NodeGraph graph(executor, opts.cancel);

  // Edges. Everything below lives on this stack frame: Run() returns
  // only after every node is terminal and no callback is outstanding,
  // so capturing locals by reference is safe.
  BoundedQueue<ReadBatch> q_reads(opts.queue_capacity, opts.cancel);
  BoundedQueue<RecordBatch> q_aligned(opts.queue_capacity, opts.cancel);
  BoundedQueue<RecordBatch> q_cleaned(opts.queue_capacity, opts.cancel);
  BoundedQueue<RecordBatch>* sink_in = opts.clean ? &q_cleaned : &q_aligned;
  graph.OnAbort([&] {
    q_reads.CloseAbort();
    q_aligned.CloseAbort();
    q_cleaned.CloseAbort();
  });

  // --- FastqSource: slices the interleaved reads into batches at the
  // exact boundaries AlignPairs uses internally (2 * batch_size reads),
  // so per-batch insert statistics and RNG seeds are unchanged.
  const size_t batch_reads =
      2 * static_cast<size_t>(std::max(1, options.batch_size));
  size_t src_next = 0;
  int64_t src_batch = 0;
  std::optional<ReadBatch> src_pending;
  graph.AddNode("source", [&]() -> PumpResult {
    if (q_reads.cancelled()) return PumpResult::Done();
    if (!src_pending.has_value()) {
      if (src_next >= interleaved.size()) {
        q_reads.Close();
        return PumpResult::Done();
      }
      ReadBatch b;
      b.index = src_batch++;
      const size_t end =
          std::min(interleaved.size(), src_next + batch_reads);
      b.reads.reserve(end - src_next);
      for (; src_next < end; ++src_next) {
        b.reads.push_back(std::move(interleaved[src_next]));
      }
      src_pending = std::move(b);
    }
    if (q_reads.TryPush(std::move(*src_pending))) {
      src_pending.reset();
      return PumpResult::Progress();
    }
    if (q_reads.cancelled() || q_reads.closed()) return PumpResult::Done();
    return PumpResult::BlockedOnSpace(&q_reads);
  });

  // --- AlignNode: one AlignPairs call per batch. The scratch pools DP
  // matrices, candidate lists and the vertical-SIMD lane buffers across
  // batches, so steady-state batches allocate almost nothing.
  PairedEndAligner aligner(index, options);
  PairedAlignScratch scratch;
  std::optional<RecordBatch> align_pending;
  graph.AddNode("align", [&]() -> PumpResult {
    if (align_pending.has_value()) {
      if (q_aligned.TryPush(std::move(*align_pending))) {
        align_pending.reset();
        return PumpResult::Progress();
      }
      if (q_aligned.cancelled()) return PumpResult::Done();
      return PumpResult::BlockedOnSpace(&q_aligned);
    }
    // TryPopState decides empty-vs-drained under the queue mutex: a
    // bare TryPop + closed() pair would race with the source pushing
    // its final batch and closing in the gap, dropping the tail.
    ReadBatch in;
    switch (q_reads.TryPopState(&in)) {
      case QueuePopState::kCancelled:
        return PumpResult::Done();
      case QueuePopState::kDrained:
        q_aligned.Close();
        return PumpResult::Done();
      case QueuePopState::kEmpty:
        return PumpResult::BlockedOnItem(&q_reads);
      case QueuePopState::kItem:
        break;
    }
    RecordBatch out;
    out.index = in.index;
    aligner.AlignPairs(in.reads, &scratch, &out.records);
    stats->batches += 1;
    stats->reads += static_cast<int64_t>(in.reads.size());
    align_pending = std::move(out);
    return PumpResult::Progress();
  });

  // --- CleanNode (round-2 map transform): AddReplaceReadGroups +
  // CleanSam, both per-record rewrites, applied batch-wise. A fresh
  // header copy per batch mirrors the per-split copy of the barriered
  // CleaningMapper; the outputs are identical either way.
  std::optional<RecordBatch> clean_pending;
  if (opts.clean) {
    graph.AddNode("clean", [&]() -> PumpResult {
      if (clean_pending.has_value()) {
        if (q_cleaned.TryPush(std::move(*clean_pending))) {
          clean_pending.reset();
          return PumpResult::Progress();
        }
        if (q_cleaned.cancelled()) return PumpResult::Done();
        return PumpResult::BlockedOnSpace(&q_cleaned);
      }
      RecordBatch in;
      switch (q_aligned.TryPopState(&in)) {
        case QueuePopState::kCancelled:
          return PumpResult::Done();
        case QueuePopState::kDrained:
          q_cleaned.Close();
          return PumpResult::Done();
        case QueuePopState::kEmpty:
          return PumpResult::BlockedOnItem(&q_aligned);
        case QueuePopState::kItem:
          break;
      }
      SamHeader local = *opts.header;
      Status s =
          AddReplaceReadGroups(opts.read_group, &local, &in.records);
      if (!s.ok()) return PumpResult::Error(std::move(s));
      CleanSamStats cs = CleanSam(local, &in.records);
      stats->clean_clipped += cs.clipped_overhangs;
      stats->clean_dropped += cs.dropped_invalid;
      clean_pending = std::move(in);
      return PumpResult::Progress();
    });
  }

  // --- Sink: hands batches to the caller in order (single consumer on
  // a FIFO edge). Typically the shuffle emit — the one true barrier
  // left in rounds 1+2 is the qname shuffle behind this call.
  graph.AddNode("sink", [&]() -> PumpResult {
    RecordBatch in;
    switch (sink_in->TryPopState(&in)) {
      case QueuePopState::kCancelled:
      case QueuePopState::kDrained:
        return PumpResult::Done();
      case QueuePopState::kEmpty:
        return PumpResult::BlockedOnItem(sink_in);
      case QueuePopState::kItem:
        break;
    }
    Status s = sink(&in);
    if (!s.ok()) return PumpResult::Error(std::move(s));
    return PumpResult::Progress();
  });

  Status run = graph.Run();
  stats->kernel += scratch.read.stats;
  stats->edges.push_back({"reads", q_reads.stats()});
  stats->edges.push_back({"aligned", q_aligned.stats()});
  if (opts.clean) stats->edges.push_back({"cleaned", q_cleaned.stats()});
  stats->nodes = graph.node_stats();
  return run;
}

}  // namespace gesall

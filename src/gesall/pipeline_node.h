// Streaming dataflow node graph: the intra-round data path rebuilt as
// cooperating pipeline nodes connected by capacity-bounded queues
// (util/bounded_queue.h), so read batches flow align -> clean -> emit
// without a whole round's records ever being materialized at once.
//
// Execution model. Every node is a *pump*: a non-blocking function the
// graph calls repeatedly, never concurrently with itself. A pump that
// cannot make progress returns kBlocked together with a parker that
// registers a one-shot wake-up on the queue it is waiting for
// (BoundedQueue::OnItem / OnSpace); the node then holds no executor
// task at all until the edge fires. Because pumps never block a worker
// thread and NodeGraph::Run waits with a HELPING TaskGroup wait, the
// whole graph is live on a single-worker executor — the serial
// reference pipeline runs the same nodes the distributed engine does.
//
// Backpressure is the queue capacity: a fast producer parks on OnSpace
// until the consumer drains (stall time lands in BoundedQueueStats and
// is surfaced as round counters). Barriers remain only where semantics
// require them — the qname shuffle (FixMate), the round-3 key groups
// and the round-4 sort — which stay ordinary MR shuffles downstream of
// the streaming sink.
//
// The concrete chain built here fuses pipeline rounds 1+2:
//
//   FastqSource -> AlignNode -> [CleanNode] -> sink
//        |  ReadBatch   |  RecordBatch  |  RecordBatch
//      bounded queues with OnItem/OnSpace parking between each
//
// Batches are sliced at exactly PairedAlignerOptions::batch_size pairs,
// the boundary AlignPairs itself uses, so per-batch insert statistics
// and tie-break RNG seeds — and therefore every output record — are
// bit-identical to the monolithic AlignPairs call of the barriered
// round 1 (aligner.h, "Batch statistics").

#ifndef GESALL_GESALL_PIPELINE_NODE_H_
#define GESALL_GESALL_PIPELINE_NODE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "align/aligner.h"
#include "formats/fastq.h"
#include "formats/sam.h"
#include "util/bounded_queue.h"
#include "util/cancel.h"
#include "util/executor.h"
#include "util/status.h"

namespace gesall {

/// \brief One batch of interleaved reads flowing source -> align.
/// Exactly 2 * batch_size reads per batch except the final partial one.
struct ReadBatch {
  std::vector<FastqRecord> reads;
  int64_t index = 0;  // 0-based batch sequence number
};

/// \brief One batch of aligned (and possibly cleaned) SAM records.
struct RecordBatch {
  std::vector<SamRecord> records;
  int64_t index = 0;
};

/// \brief Verdict of one pump invocation.
struct PumpResult {
  enum class Kind { kProgress, kBlocked, kDone };
  Kind kind = Kind::kProgress;
  /// Non-OK aborts the whole graph (first error wins).
  Status status = Status::OK();
  /// Set when kBlocked: registers a one-shot wake-up callback on the
  /// edge the pump is waiting for. Must fire the callback exactly once
  /// (inline is fine — BoundedQueue::OnItem/OnSpace already do this
  /// when the condition, or shutdown, is already true).
  std::function<void(std::function<void()>)> park;

  static PumpResult Progress() { return {Kind::kProgress, Status::OK(), {}}; }
  static PumpResult Done() { return {Kind::kDone, Status::OK(), {}}; }
  static PumpResult Error(Status s) {
    return {Kind::kDone, std::move(s), {}};
  }
  template <typename Q>
  static PumpResult BlockedOnItem(Q* q) {
    return {Kind::kBlocked, Status::OK(),
            [q](std::function<void()> fn) { q->OnItem(std::move(fn)); }};
  }
  template <typename Q>
  static PumpResult BlockedOnSpace(Q* q) {
    return {Kind::kBlocked, Status::OK(),
            [q](std::function<void()> fn) { q->OnSpace(std::move(fn)); }};
  }
};

/// \brief Per-node execution telemetry.
struct NodeStats {
  std::string name;
  int64_t pumps = 0;  // pump invocations
  int64_t parks = 0;  // times the node parked on an edge
};

/// \brief A set of pump nodes executed to completion on an Executor.
///
/// Single-shot: add nodes, register the abort hook, Run() once. Run()
/// returns after every node reached a terminal state — no callback or
/// task referencing the graph is outstanding afterwards, so the graph
/// and its queues can be destroyed immediately.
class NodeGraph {
 public:
  /// `cancel` (optional) is polled between pumps; flipping it aborts
  /// the graph. Wire the same token into every queue so parked pumps
  /// wake immediately.
  NodeGraph(Executor* executor, std::shared_ptr<CancelToken> cancel = nullptr);

  /// Adds a node. `pump` is invoked repeatedly (never concurrently with
  /// itself); it must not block. Nodes must obey the shutdown contract:
  /// once their queues report cancelled, return kDone promptly.
  void AddNode(std::string name, std::function<PumpResult()> pump);

  /// Registers the abort hook: CloseAbort every queue of the graph.
  /// Invoked once when a node errors, the cancel token flips, or the
  /// graph stalls — it must unblock every parked pump.
  void OnAbort(std::function<void()> abort);

  /// Runs every node to completion; helping-waits, so callable from
  /// inside an executor task (e.g. a streamed map attempt) even on a
  /// single-worker executor. Returns the first node error, or
  /// Status::Cancelled when the token flipped first.
  Status Run();

  /// Telemetry, valid after Run() returns.
  std::vector<NodeStats> node_stats() const;

 private:
  enum NodeState : int { kIdle = 0, kRunning = 1, kRunningNotified = 2 };
  struct Node {
    std::string name;
    std::function<PumpResult()> pump;
    std::atomic<int> state{kRunning};  // scheduled at Run() start
    int64_t pumps = 0;  // written only by the (serialized) run loop
    int64_t parks = 0;
  };

  void Schedule(Node* node);
  void RunLoop(Node* node);
  void Finish(Node* node);  // marks the node terminal
  void Abort();             // first call runs abort_, later calls no-op
  void SetError(Status s);  // first error wins

  Executor* executor_;
  std::shared_ptr<CancelToken> cancel_;
  std::unique_ptr<TaskGroup> group_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::function<void()> abort_;
  std::atomic<bool> aborting_{false};
  std::atomic<size_t> terminal_{0};
  mutable std::mutex mu_;
  Status error_;               // guarded by mu_
  bool stall_errored_ = false;  // error_ is a stall diagnosis; guarded by mu_
};

/// \brief Per-edge queue telemetry of one RunAlignCleanStream call,
/// keyed for the round counter table.
struct StreamEdgeStats {
  std::string name;  // "reads", "aligned", "cleaned"
  BoundedQueueStats queue;
};

/// \brief Everything a streamed align(+clean) run reports back.
struct AlignCleanStreamStats {
  SwKernelStats kernel;        // extension-kernel telemetry
  int64_t clean_clipped = 0;   // CleanSam clipped_overhangs
  int64_t clean_dropped = 0;   // CleanSam dropped_invalid
  int64_t batches = 0;         // ReadBatches that flowed source -> align
  int64_t reads = 0;           // reads across those batches
  std::vector<StreamEdgeStats> edges;
  std::vector<NodeStats> nodes;
};

/// \brief Options for RunAlignCleanStream.
struct AlignCleanStreamOptions {
  Executor* executor = nullptr;  // null selects Executor::Shared()
  std::shared_ptr<CancelToken> cancel;
  /// Append the AddReplaceReadGroups + CleanSam node after alignment
  /// (the round-2 map-side transform). Off for the serial reference
  /// chain, whose cleaning runs as its own DAG nodes.
  bool clean = true;
  /// Required when clean is set: the pipeline header CleanSam clips
  /// against, and the read group to stamp.
  const SamHeader* header = nullptr;
  ReadGroup read_group;
  /// Edge capacity in batches. The streaming path's memory high-water
  /// mark is O(capacity * batch bytes) per edge, not O(partition).
  size_t queue_capacity = 2;
};

/// \brief Runs the fused streaming chain over one partition's reads:
/// FastqSource -> AlignNode -> [CleanNode] -> `sink`, with bounded
/// queues between the nodes. `interleaved` is consumed (records are
/// moved into batches). `sink` is called once per RecordBatch, in batch
/// order, from executor workers but never concurrently; a non-OK sink
/// status aborts the graph and is returned. `stats` may be null, in
/// which case the run's telemetry is discarded. Output records are
/// bit-identical to AlignPairs over the whole vector (and, with clean
/// set, to the barriered round-2 map transform applied to them).
Status RunAlignCleanStream(
    const GenomeIndex& index, const PairedAlignerOptions& options,
    std::vector<FastqRecord> interleaved, const AlignCleanStreamOptions& opts,
    const std::function<Status(RecordBatch*)>& sink,
    AlignCleanStreamStats* stats);

}  // namespace gesall

#endif  // GESALL_GESALL_PIPELINE_NODE_H_

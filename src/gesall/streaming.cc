#include "gesall/streaming.h"

#include "formats/bam.h"
#include "formats/fastq.h"

namespace gesall {

Status PipeBuffer::Write(std::string_view data) {
  while (!data.empty()) {
    size_t room = capacity_ - buffer_.size();
    size_t take = std::min(room, data.size());
    buffer_.append(data.substr(0, take));
    data.remove_prefix(take);
    if (buffer_.size() == capacity_) {
      GESALL_RETURN_NOT_OK(Flush());
    }
  }
  return Status::OK();
}

Status PipeBuffer::Flush() {
  if (buffer_.empty()) return Status::OK();
  bytes_transferred_ += static_cast<int64_t>(buffer_.size());
  ++flush_count_;
  if (consumer_ != nullptr) {
    GESALL_RETURN_NOT_OK(consumer_(buffer_));
  }
  buffer_.clear();
  return Status::OK();
}

Result<std::string> RunStreamingChain(std::string_view input,
                                      const std::vector<LineProgram*>& programs,
                                      StreamingStats* stats,
                                      size_t pipe_capacity) {
  if (programs.empty()) return Status::InvalidArgument("empty chain");

  // One pipe in front of each program plus a terminal collector. Each
  // pipe's consumer splits flushed bytes into lines for its program;
  // partial lines are carried between flushes.
  struct Stage {
    LineProgram* program;
    PipeBuffer pipe;
    std::string carry;  // partial line between flushes
    explicit Stage(LineProgram* p, size_t cap) : program(p), pipe(cap) {}
  };
  std::vector<std::unique_ptr<Stage>> stages;
  stages.reserve(programs.size());
  for (LineProgram* p : programs) {
    stages.push_back(std::make_unique<Stage>(p, pipe_capacity));
  }
  std::string output;

  // Wire stage i's program output into stage i+1's pipe (or the output).
  std::vector<LineProgram::Emit> emits(stages.size());
  for (size_t i = 0; i < stages.size(); ++i) {
    if (i + 1 < stages.size()) {
      PipeBuffer* next = &stages[i + 1]->pipe;
      emits[i] = [next](std::string_view line) -> Status {
        GESALL_RETURN_NOT_OK(next->Write(line));
        return next->Write("\n");
      };
    } else {
      emits[i] = [&output](std::string_view line) -> Status {
        output.append(line);
        output.push_back('\n');
        return Status::OK();
      };
    }
  }
  for (size_t i = 0; i < stages.size(); ++i) {
    Stage* stage = stages[i].get();
    const LineProgram::Emit* emit = &emits[i];
    stage->pipe.SetConsumer([stage, emit](std::string_view data) -> Status {
      stage->carry.append(data);
      size_t start = 0;
      for (;;) {
        size_t eol = stage->carry.find('\n', start);
        if (eol == std::string::npos) break;
        GESALL_RETURN_NOT_OK(stage->program->ConsumeLine(
            std::string_view(stage->carry).substr(start, eol - start),
            *emit));
        start = eol + 1;
      }
      stage->carry.erase(0, start);
      return Status::OK();
    });
  }

  GESALL_RETURN_NOT_OK(stages[0]->pipe.Write(input));
  // Drain: flush pipes and finish programs front to back.
  for (size_t i = 0; i < stages.size(); ++i) {
    GESALL_RETURN_NOT_OK(stages[i]->pipe.Flush());
    if (!stages[i]->carry.empty()) {
      GESALL_RETURN_NOT_OK(
          stages[i]->program->ConsumeLine(stages[i]->carry, emits[i]));
      stages[i]->carry.clear();
    }
    GESALL_RETURN_NOT_OK(stages[i]->program->Finish(emits[i]));
    if (i + 1 < stages.size()) {
      // Everything this program emitted is sitting in the next pipe.
      continue;
    }
  }
  // A Finish may have written into downstream pipes after their flush;
  // drain again until stable.
  for (size_t round = 0; round < stages.size(); ++round) {
    for (size_t i = 0; i < stages.size(); ++i) {
      GESALL_RETURN_NOT_OK(stages[i]->pipe.Flush());
      if (!stages[i]->carry.empty()) {
        GESALL_RETURN_NOT_OK(
            stages[i]->program->ConsumeLine(stages[i]->carry, emits[i]));
        stages[i]->carry.clear();
      }
    }
  }

  if (stats != nullptr) {
    stats->input_bytes = static_cast<int64_t>(input.size());
    stats->output_bytes = static_cast<int64_t>(output.size());
    stats->pipe_flushes = 0;
    for (const auto& s : stages) {
      stats->pipe_flushes += s->pipe.flush_count();
    }
  }
  return output;
}

BwaStreamProgram::BwaStreamProgram(const GenomeIndex& index,
                                   PairedAlignerOptions options)
    : aligner_(index, options), header_(aligner_.MakeHeader()),
      batch_pairs_(static_cast<size_t>(options.batch_size)) {}

Status BwaStreamProgram::ConsumeLine(std::string_view line,
                                     const Emit& emit) {
  pending_lines_.emplace_back(line);
  if (pending_lines_.size() < 4) return Status::OK();
  // A complete 4-line FASTQ record.
  if (pending_lines_[0].empty() || pending_lines_[0][0] != '@') {
    return Status::Corruption("streaming FASTQ record missing '@'");
  }
  FastqRecord rec;
  rec.name = pending_lines_[0].substr(1);
  rec.sequence = std::move(pending_lines_[1]);
  rec.quality = std::move(pending_lines_[3]);
  if (rec.sequence.size() != rec.quality.size()) {
    return Status::Corruption("streaming FASTQ seq/qual length mismatch");
  }
  pending_lines_.clear();
  pending_reads_.push_back(std::move(rec));
  if (pending_reads_.size() >= 2 * batch_pairs_) {
    return FlushBatch(emit);
  }
  return Status::OK();
}

Status BwaStreamProgram::FlushBatch(const Emit& emit) {
  if (!header_emitted_) {
    // Header lines precede records in SAM text output.
    std::string header_text = WriteSamHeader(header_);
    size_t start = 0;
    while (start < header_text.size()) {
      size_t eol = header_text.find('\n', start);
      if (eol == std::string::npos) eol = header_text.size();
      GESALL_RETURN_NOT_OK(
          emit(std::string_view(header_text).substr(start, eol - start)));
      start = eol + 1;
    }
    header_emitted_ = true;
  }
  if (pending_reads_.empty()) return Status::OK();
  std::vector<SamRecord> records;
  aligner_.AlignPairs(pending_reads_, &scratch_, &records);
  pending_reads_.clear();
  for (const auto& r : records) {
    GESALL_RETURN_NOT_OK(emit(WriteSamLine(r, header_)));
  }
  return Status::OK();
}

Status BwaStreamProgram::Finish(const Emit& emit) {
  if (!pending_lines_.empty()) {
    return Status::Corruption("truncated trailing FASTQ record");
  }
  if (pending_reads_.size() % 2 != 0) {
    return Status::Corruption("odd number of interleaved reads");
  }
  return FlushBatch(emit);
}

Result<std::string> SamTextToBam(std::string_view sam_text) {
  GESALL_ASSIGN_OR_RETURN(auto dataset,
                          ParseSamText(std::string(sam_text)));
  return WriteBam(dataset.first, dataset.second);
}

}  // namespace gesall

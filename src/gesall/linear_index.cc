#include "gesall/linear_index.h"

#include <algorithm>

#include "formats/bam.h"
#include "util/bgzf.h"
#include "util/io.h"

namespace gesall {

Result<LinearBamIndex> LinearBamIndex::Build(std::string_view bam) {
  LinearBamIndex index;
  GESALL_ASSIGN_OR_RETURN(size_t records_start, BamRecordsStartOffset(bam));
  GESALL_ASSIGN_OR_RETURN(auto blocks, BgzfListBlocks(bam));

  for (const auto& [chunk_offset, chunk_size] : blocks) {
    if (chunk_offset < records_start) continue;  // header chunk
    GESALL_ASSIGN_OR_RETURN(
        std::string payload,
        BgzfDecompressBlock(bam.substr(chunk_offset, chunk_size), nullptr));
    size_t intra = 0;
    while (intra < payload.size()) {
      uint64_t voffset = (static_cast<uint64_t>(chunk_offset) << 16) | intra;
      GESALL_ASSIGN_OR_RETURN(SamRecord rec,
                              DecodeBamRecord(payload, &intra));
      ++index.record_count_;
      if (rec.IsUnmapped()) continue;  // unmapped tail is not indexed
      int64_t w = rec.pos / kWindowBases;
      while (static_cast<int64_t>(index.window_offsets_.size()) <= w) {
        index.window_offsets_.push_back(voffset);
      }
      index.max_span_ =
          std::max(index.max_span_, CigarReferenceLength(rec.cigar));
      index.end_offset_ =
          (static_cast<uint64_t>(chunk_offset) << 16) | intra;
    }
  }
  if (index.window_offsets_.empty() && index.end_offset_ == 0) {
    index.end_offset_ = static_cast<uint64_t>(records_start) << 16;
  }
  return index;
}

uint64_t LinearBamIndex::LowerBoundOffset(int64_t pos) const {
  int64_t effective = std::max<int64_t>(0, pos - max_span_);
  int64_t w = effective / kWindowBases;
  if (w >= static_cast<int64_t>(window_offsets_.size())) return end_offset_;
  return window_offsets_[w];
}

uint64_t LinearBamIndex::UpperBoundOffset(int64_t pos) const {
  // Conservative: include every record starting in pos's window.
  int64_t w = pos / kWindowBases + 1;
  if (w >= static_cast<int64_t>(window_offsets_.size())) return end_offset_;
  return window_offsets_[w];
}

std::string LinearBamIndex::Serialize() const {
  std::string out;
  BufferWriter w(&out);
  w.PutU64(window_offsets_.size());
  for (uint64_t off : window_offsets_) w.PutU64(off);
  w.PutU64(end_offset_);
  w.PutI64(record_count_);
  w.PutI64(max_span_);
  return out;
}

Result<LinearBamIndex> LinearBamIndex::Deserialize(const std::string& data) {
  LinearBamIndex index;
  BufferReader r(data);
  uint64_t n;
  GESALL_RETURN_NOT_OK(r.GetU64(&n));
  index.window_offsets_.resize(n);
  for (auto& off : index.window_offsets_) {
    GESALL_RETURN_NOT_OK(r.GetU64(&off));
  }
  GESALL_RETURN_NOT_OK(r.GetU64(&index.end_offset_));
  GESALL_RETURN_NOT_OK(r.GetI64(&index.record_count_));
  GESALL_RETURN_NOT_OK(r.GetI64(&index.max_span_));
  return index;
}

Result<std::vector<SamRecord>> ReadBamRegion(std::string_view bam,
                                             const LinearBamIndex& index,
                                             int64_t start, int64_t end) {
  std::vector<SamRecord> out;
  uint64_t lo = index.LowerBoundOffset(start);
  uint64_t hi = index.UpperBoundOffset(end);
  if (lo >= hi) return out;

  size_t chunk_offset = static_cast<size_t>(lo >> 16);
  size_t intra = static_cast<size_t>(lo & 0xffff);
  const size_t hi_chunk = static_cast<size_t>(hi >> 16);
  const size_t hi_intra = static_cast<size_t>(hi & 0xffff);

  while (chunk_offset < bam.size()) {
    if (chunk_offset > hi_chunk) break;
    size_t consumed = 0;
    GESALL_ASSIGN_OR_RETURN(
        std::string payload,
        BgzfDecompressBlock(bam.substr(chunk_offset), &consumed));
    size_t stop = chunk_offset == hi_chunk ? hi_intra : payload.size();
    while (intra < stop) {
      GESALL_ASSIGN_OR_RETURN(SamRecord rec,
                              DecodeBamRecord(payload, &intra));
      if (rec.IsUnmapped()) continue;
      if (rec.pos >= end) continue;
      if (rec.AlignmentEnd() <= start) continue;
      out.push_back(std::move(rec));
    }
    chunk_offset += consumed;
    intra = 0;
  }
  return out;
}

}  // namespace gesall

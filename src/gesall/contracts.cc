#include "gesall/contracts.h"

namespace gesall {

const char* DataPropertyName(DataProperty property) {
  switch (property) {
    case DataProperty::kNone:
      return "none";
    case DataProperty::kGroupedByReadName:
      return "grouped-by-read-name";
    case DataProperty::kCompoundDuplicateKeys:
      return "compound-duplicate-keys";
    case DataProperty::kSortedByCoordinate:
      return "sorted-by-coordinate";
    case DataProperty::kRangeByChromosome:
      return "range-by-chromosome";
    case DataProperty::kWholeGenome:
      return "whole-genome";
  }
  return "?";
}

bool Satisfies(DataProperty provided, DataProperty required) {
  if (required == DataProperty::kNone) return true;
  if (provided == required) return true;
  // Chromosome range partitions are coordinate-sorted inside.
  if (required == DataProperty::kSortedByCoordinate &&
      provided == DataProperty::kRangeByChromosome) {
    return true;
  }
  return false;
}

ProgramContract BwaContract() {
  return {"Bwa", DataProperty::kGroupedByReadName,
          DataProperty::kGroupedByReadName, false};
}
ProgramContract SamToBamContract() {
  return {"SamToBam", DataProperty::kNone, DataProperty::kNone, false};
}
ProgramContract AddReplaceReadGroupsContract() {
  return {"AddReplaceReadGroups", DataProperty::kNone, DataProperty::kNone,
          false};
}
ProgramContract CleanSamContract() {
  return {"CleanSam", DataProperty::kNone, DataProperty::kNone, false};
}
ProgramContract FixMateInformationContract() {
  return {"FixMateInformation", DataProperty::kGroupedByReadName,
          DataProperty::kGroupedByReadName, false};
}
ProgramContract MarkDuplicatesContract() {
  return {"MarkDuplicates", DataProperty::kCompoundDuplicateKeys,
          DataProperty::kNone, true};
}
ProgramContract SortSamContract() {
  // The parallel sort round uses the chromosome range partitioner, so its
  // output is both range-partitioned and coordinate-sorted (§4.1 Round 4).
  return {"SortSam", DataProperty::kNone, DataProperty::kRangeByChromosome,
          true, /*is_repartitioner=*/true};
}
ProgramContract BaseRecalibratorContract() {
  // Covariate counting commutes over any partitioning (tables merge).
  return {"BaseRecalibrator", DataProperty::kNone, DataProperty::kNone,
          false};
}
ProgramContract PrintReadsContract() {
  return {"PrintReads", DataProperty::kNone, DataProperty::kNone, false};
}
ProgramContract UnifiedGenotyperContract() {
  return {"UnifiedGenotyper", DataProperty::kRangeByChromosome,
          DataProperty::kNone, true};
}
ProgramContract HaplotypeCallerContract() {
  return {"HaplotypeCaller", DataProperty::kRangeByChromosome,
          DataProperty::kNone, true};
}

Result<PipelinePlanCheck> ValidatePipeline(
    const std::vector<ProgramContract>& steps, DataProperty initial) {
  PipelinePlanCheck check;
  DataProperty current = initial;
  for (size_t i = 0; i < steps.size(); ++i) {
    const ProgramContract& step = steps[i];
    if (step.requires_property == DataProperty::kWholeGenome) {
      return Status::InvalidArgument(
          step.name + " requires the whole genome: no safe partitioning");
    }
    std::string line = step.name;
    if (step.is_repartitioner) {
      check.shuffle_before_step.push_back(i);
      ++check.required_rounds;
      line += " [SHUFFLE: repartitioning step]";
    } else if (!Satisfies(current, step.requires_property)) {
      check.shuffle_before_step.push_back(i);
      ++check.required_rounds;
      line += " [SHUFFLE: " + std::string(DataPropertyName(current)) +
              " -> " + DataPropertyName(step.requires_property) + "]";
      current = step.requires_property;
    }
    // The step's output property.
    if (step.provides_property != DataProperty::kNone) {
      current = step.provides_property;
    } else if (step.destroys_input_property) {
      current = DataProperty::kNone;
    }
    line += " (data now: " + std::string(DataPropertyName(current)) + ")";
    check.trace.push_back(std::move(line));
  }
  return check;
}

std::vector<ProgramContract> StandardPipelineContracts(
    bool include_recalibration) {
  std::vector<ProgramContract> steps = {
      BwaContract(),          SamToBamContract(),
      AddReplaceReadGroupsContract(), CleanSamContract(),
      FixMateInformationContract(),   MarkDuplicatesContract(),
  };
  if (include_recalibration) {
    steps.push_back(BaseRecalibratorContract());
    steps.push_back(PrintReadsContract());
  }
  steps.push_back(SortSamContract());
  steps.push_back(HaplotypeCallerContract());
  return steps;
}

}  // namespace gesall

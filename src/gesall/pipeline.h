// Gesall parallel pipeline driver: the five MapReduce rounds of the
// paper's evaluation (§4.1, Appendix A.2), executed on the functional
// MapReduce engine over the DFS substrate.
//
//   Round 1  map-only   Bwa alignment + SamToBam           (streaming)
//   Round 2  map+reduce AddReplaceGroups + CleanSam | shuffle by read
//                        name | FixMateInformation
//   Round 3  map+reduce compound-key extraction (MarkDup_reg or
//                        MarkDup_opt with a bloom-filter pre-round) |
//                        shuffle | duplicate marking
//   Round 4  map+reduce coordinate keys | range partition by chromosome |
//                        sort + index
//   Round 5  map-only   Haplotype Caller per chromosome (or per
//                        overlapping segment)
//
// Each round reads its input from and writes its output to the DFS, with
// logical partitions pinned to single data nodes via Gesall's custom
// block placement policy.

#ifndef GESALL_GESALL_PIPELINE_H_
#define GESALL_GESALL_PIPELINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "align/aligner.h"
#include "analysis/genotyper.h"
#include "analysis/haplotype_caller.h"
#include "dfs/dfs.h"
#include "formats/fastq.h"
#include "formats/vcf.h"
#include "gesall/diagnosis.h"
#include "mr/mapreduce.h"
#include "util/cancel.h"
#include "util/executor.h"
#include "util/status.h"

namespace gesall {

class FaultInjector;

/// \brief Stable round indices used by durable round manifests and the
/// on_round_complete hook (values are on-disk format; never renumber).
enum PipelineRound : int {
  kRoundAlignment = 1,
  kRoundCleaning = 2,
  kRoundMarkDuplicates = 3,
  kRoundRecalibration = 4,
  kRoundSort = 5,
  kRoundVariants = 6,
};

/// \brief Pipeline configuration (the paper's tunables: logical partition
/// granularity, degree of parallelism, MarkDup variant, HC partitioning).
struct PipelineConfig {
  /// Logical FASTQ partitions for Round 1 ("granularity of scheduling").
  int alignment_partitions = 8;
  /// Reducers for rounds 2 and 3 ("degree of parallelism").
  int cleaning_reducers = 4;
  int markdup_reducers = 4;
  /// MarkDup_opt (bloom filter pre-round) vs MarkDup_reg.
  bool markdup_use_bloom = true;
  /// Concurrent tasks of the functional engine.
  int max_parallel_tasks = 4;
  /// Map-side sort buffer (mapreduce.task.io.sort.mb analog).
  int64_t sort_buffer_bytes = 64LL << 20;
  /// Compress map-side spill runs with the BGZF codec
  /// (mapreduce.map.output.compress analog), forwarded into every
  /// round's JobConfig. Merged reduce input — and thus every output —
  /// is byte-identical either way; only disk bytes and codec cpu move
  /// (reported through SummarizeStorage).
  bool compress_shuffle = false;
  /// zlib level for compress_shuffle (-1 = zlib default, else 0..9).
  int shuffle_compress_level = -1;
  /// Arm the map-side combiners of rounds 2 and 3 (Hadoop combiner
  /// analog). Combiners are output-preserving: variant calls and every
  /// per-record counter are identical either way; only map-side work
  /// (pre-applied FixMate, deduped criterion-2 representatives) moves.
  bool use_combiners = true;

  ReadGroup read_group{"rg1", "sample1", "lib1"};
  PairedAlignerOptions aligner;
  HaplotypeCallerOptions hc;

  /// Run Round 1 through the Hadoop-Streaming analog (Fig. 8: FASTQ text
  /// -> pipe -> bwa mem -> pipe -> SamToBam) instead of calling the
  /// aligner natively. Output is identical; pipe statistics land in the
  /// round counters.
  bool use_streaming_alignment = true;

  enum class HcPartitioning { kChromosome, kOverlappingSegments };
  HcPartitioning hc_partitioning = HcPartitioning::kChromosome;
  /// Segments per chromosome in overlapping mode (degree of parallelism
  /// beyond the 23-way chromosome limit the paper discusses).
  int hc_segments_per_chromosome = 4;

  /// Round 5 variant caller (Table 2 offers both v1 and v2).
  enum class VariantCaller { kHaplotypeCaller, kUnifiedGenotyper };
  VariantCaller variant_caller = VariantCaller::kHaplotypeCaller;
  /// Unified Genotyper options when selected.
  GenotyperOptions ug;

  /// Insert the Base Recalibrator rounds (Table 2 steps 11-12) between
  /// Mark Duplicates and the sort: a map-only round builds per-partition
  /// covariate tables which are merged (GDPT group partitioning by
  /// covariates, §3.2), then a second map-only round rewrites qualities.
  bool run_recalibration = false;

  /// Bloom filter geometry for MarkDup_opt (must be uniform so that
  /// per-mapper filters union).
  size_t bloom_expected_items = 100'000;
  double bloom_fpr = 0.01;

  /// Fault-tolerance knobs, forwarded into every round's JobConfig.
  /// The injector (optional; not owned) lets chaos tests exercise the
  /// retry machinery deterministically; it is also installed on the DFS
  /// read path for the lifetime of the pipeline runs.
  FaultInjector* fault_injector = nullptr;
  int max_task_attempts = 2;
  int retry_base_ms = 0;
  bool speculative_execution = false;
  int speculative_slow_task_ms = 100;
  bool skip_bad_records = false;
  /// Lost-map-output bound forwarded into every round's JobConfig (the
  /// node model itself sizes from the DFS cluster: num_nodes =
  /// dfs->num_data_nodes()).
  int max_map_reexecutions = 2;

  /// Overlap the five rounds in RunAll(): a round's map tasks start as
  /// soon as the upstream partition they read is written (Round 5 HC for
  /// a chromosome starts once Round 4 sorted that chromosome), instead
  /// of barriering between rounds. Outputs, variant calls, and every
  /// per-record counter are byte-identical either way — only wall-clock
  /// scheduling changes. Off by default so seeded chaos runs keep their
  /// historical round ordering.
  bool pipelined = false;
  /// Fuse rounds 1+2 into one streamed job (effective only when
  /// `pipelined` and not resuming): every map task pumps its FASTQ
  /// partition through the bounded-queue node graph of pipeline_node.h
  /// (FastqSource -> Align -> Clean -> shuffle emit), so the aligned
  /// stage is never materialized on the DFS and the map-side memory
  /// high-water mark is O(queue capacity * batch) instead of
  /// O(partition). Outputs, variant calls, and per-record counters are
  /// byte-identical to the barriered rounds 1+2 (batch boundaries match
  /// AlignPairs' own); the fused round always uses the native aligner.
  /// The fused round is not sealed, so a crashed streaming run resumes
  /// from the top of the sample rather than a round boundary.
  bool streaming = false;
  /// Executor every round's tasks run on (not owned). Null selects the
  /// process-wide Executor::Shared().
  Executor* executor = nullptr;

  /// DFS namespace root for every stage directory ("<root>/input/",
  /// "<root>/aligned/", ...). The service layer gives each job its own
  /// root ("/jobs/<tenant>/<id>") so concurrent pipelines on one Dfs
  /// never collide; the default keeps the historical single-job layout.
  std::string dfs_root = "/gesall";
  /// Advance the DFS heartbeat clock once at the end of every round
  /// (the historical coupling). The service layer turns this off and
  /// ticks continuously through a HeartbeatDriver instead, so dead-node
  /// detection does not stall while a cluster sits idle between jobs.
  bool auto_tick = true;
  /// Optional cooperative cancellation, forwarded into every round's
  /// JobConfig. Once flipped, the running round fails fast with
  /// Status::Cancelled, no further round starts, and RunAll() deletes
  /// the job's partial stage outputs from the DFS before returning (the
  /// loaded input partitions under dfs_root stay) — unless
  /// preserve_outputs_on_cancel keeps them for a later resume.
  std::shared_ptr<CancelToken> cancel;

  /// Durable round manifests: after a round's outputs land in DFS, a
  /// manifest listing them (paths + sizes) is written under
  /// "<dfs_root>/manifests/round-<k>", and Round 5's variant calls are
  /// additionally persisted under "<dfs_root>/variants/". On a durable
  /// Dfs the manifests survive a crash, marking the round as sealed.
  bool write_manifests = false;
  /// Consult manifests at the start of every round and skip rounds whose
  /// listed outputs are all present with matching sizes (the skipped
  /// round records a RoundStats entry whose only counter is
  /// "round_skipped_on_resume"). Deterministic rounds make re-execution
  /// and skipping byte-equivalent. Resume executes barriered: a
  /// pipelined config falls back to the barriered path for that run.
  bool resume = false;
  /// Keep stage outputs and manifests on a cancelled RunAll() instead of
  /// deleting them. The durable service layer sets this so a
  /// crash-cancelled job can resume from its sealed rounds; partials are
  /// confined to the job's dfs_root namespace either way.
  bool preserve_outputs_on_cancel = false;
  /// Fired after each round completes — executed or skipped on resume —
  /// with the PipelineRound index and the round's stats name. The
  /// durable service journals round completion through this hook.
  std::function<void(int round_index, const std::string& round_name)>
      on_round_complete;
};

/// \brief Wall-clock and counter statistics of one executed round.
struct RoundStats {
  std::string name;
  double wall_seconds = 0;
  JobCounters counters;
  std::vector<TaskRecord> tasks;
};

/// \brief The parallel pipeline over one loaded sample.
class GesallPipeline {
 public:
  GesallPipeline(const ReferenceGenome& reference, const GenomeIndex& index,
                 Dfs* dfs, PipelineConfig config = {});

  /// Interleaves and splits the mate files into logical partitions in DFS
  /// (the paper's pre-step: "merge them to a single sorted file of read
  /// pairs, then split into logical partitions").
  Status LoadSample(const std::vector<FastqRecord>& mate1,
                    const std::vector<FastqRecord>& mate2);

  Status RunRound1Alignment();
  Status RunRound2Cleaning();
  Status RunRound3MarkDuplicates();
  /// Optional (config.run_recalibration): builds and applies the merged
  /// covariate table across all partitions.
  Status RunRecalibrationRounds();
  Status RunRound4Sort();
  Result<std::vector<VariantRecord>> RunRound5VariantCalling();

  /// Runs rounds 1-5 and returns the final variant calls.
  Result<std::vector<VariantRecord>> RunAll();

  /// Concatenated records of a stage ("aligned", "cleaned", "dedup",
  /// "sorted"), for the error-diagnosis toolkit.
  Result<std::vector<SamRecord>> ReadStageRecords(
      const std::string& stage) const;

  const std::vector<RoundStats>& stats() const { return stats_; }
  const SamHeader& header() const { return header_; }
  Dfs* dfs() { return dfs_; }

  /// Aggregates the retry/speculation counters of every executed round
  /// plus the DFS failover stats into one FaultToleranceSummary, ready
  /// for GenerateDiagnosisReport.
  FaultToleranceSummary SummarizeFaultTolerance() const;

  /// Aggregates the integrity/node-failure counters of every executed
  /// round plus the DFS checksum/heartbeat stats into one
  /// NodeFailureSummary, ready for GenerateDiagnosisReport.
  NodeFailureSummary SummarizeNodeFailures() const;

  /// Aggregates the raw-vs-compressed disk-byte counters of every
  /// executed round plus the DFS codec stats into one StorageSummary,
  /// ready for GenerateDiagnosisReport.
  StorageSummary SummarizeStorage() const;

  /// Execution-engine telemetry of the last RunAll(): executor
  /// task/steal/queue-wait deltas, per-round wall spans, and the
  /// critical path of the round DAG. Zero before RunAll() ran.
  const ExecutionSummary& SummarizeExecution() const { return execution_; }

 private:
  JobConfig MakeJobConfig(int reducers) const;
  /// End-of-round heartbeat: Dfs::Tick when config_.auto_tick, else a
  /// no-op (an external HeartbeatDriver owns the clock).
  Status MaybeTick();
  /// Deletes every stage output under dfs_root except the loaded input
  /// partitions — the cancelled-run cleanup.
  void RemoveStageOutputs();
  /// DFS directory whose files a round's manifest seals.
  const std::string& RoundOutputDir(int round_index) const;
  std::string ManifestPath(int round_index) const;
  /// True when the round's manifest exists and every listed output is
  /// present in DFS with a matching size.
  bool RoundComplete(int round_index) const;
  /// Writes the round's manifest (when write_manifests) and fires
  /// on_round_complete.
  Status SealRound(int round_index, const std::string& name);
  /// Resume check: when the round is already sealed, records a skipped
  /// RoundStats entry + fires the hook and returns true.
  bool SkipIfSealed(int round_index, const std::string& name);
  Status WritePartitions(const std::string& stage,
                         const std::vector<std::string>& bam_files);
  Result<std::string> BuildBloomFilter();
  Result<std::vector<VariantRecord>> RunAllBarriered();
  Result<std::vector<VariantRecord>> RunAllPipelined();

  const ReferenceGenome* reference_;
  const GenomeIndex* index_;
  Dfs* dfs_;
  PipelineConfig config_;
  // Stage directories under config_.dfs_root, precomputed once.
  std::string input_dir_;
  std::string aligned_dir_;
  std::string cleaned_dir_;
  std::string dedup_dir_;
  std::string recal_dir_;
  std::string sorted_dir_;
  std::string manifests_dir_;
  std::string variants_dir_;
  SamHeader header_;
  std::vector<RoundStats> stats_;
  ExecutionSummary execution_;
};

// ---------------------------------------------------------------------
// Serial reference pipeline (the paper's single-node "gold standard",
// GATK best practices): the same wrapped programs executed as a RoundDag
// chain on a single-worker executor, plus hybrid tails used to compute
// the discordant-impact (D_impact) measures of §4.5.2.

/// \brief Serial pipeline configuration.
struct SerialPipelineConfig {
  PairedAlignerOptions aligner;
  ReadGroup read_group{"rg1", "sample1", "lib1"};
  HaplotypeCallerOptions hc;
  /// Include BaseRecalibrator + PrintReads (Table 2 steps 11-12).
  bool run_recalibration = false;
};

/// \brief Intermediate and final outputs of the serial pipeline (the R_i
/// of the error-diagnosis formalism).
struct SerialStageOutputs {
  SamHeader header;
  std::vector<SamRecord> aligned;
  std::vector<SamRecord> cleaned;  // + read groups + fixed mates
  std::vector<SamRecord> deduped;
  std::vector<SamRecord> sorted;
  std::vector<VariantRecord> variants;
  std::map<std::string, double> step_seconds;  // per wrapped program
};

/// \brief Runs the full serial pipeline on interleaved FASTQ pairs.
Result<SerialStageOutputs> RunSerialPipeline(
    const ReferenceGenome& reference, const GenomeIndex& index,
    const std::vector<FastqRecord>& interleaved,
    const SerialPipelineConfig& config = {});

/// \brief Hybrid tail for D_impact(P1): serial cleaning -> duplicates ->
/// sort -> Haplotype Caller, starting from (possibly parallel-produced)
/// alignment output grouped by read name.
Result<std::vector<VariantRecord>> SerialTailFromAligned(
    const ReferenceGenome& reference, const SamHeader& header,
    std::vector<SamRecord> aligned, const SerialPipelineConfig& config = {});

/// \brief Hybrid tail for D_impact(P2): serial sort -> Haplotype Caller
/// from duplicate-marked records.
Result<std::vector<VariantRecord>> SerialTailFromDeduped(
    const ReferenceGenome& reference, const SamHeader& header,
    std::vector<SamRecord> deduped, const SerialPipelineConfig& config = {});

}  // namespace gesall

#endif  // GESALL_GESALL_PIPELINE_H_

// Linear BAM index (.bai analog): maps genomic windows of a coordinate-
// sorted BAM partition to the BGZF virtual offset of the first record
// at-or-after the window start. Round 4's reducers build one per sorted
// partition ("sorting and building the BAM file index in the reducer",
// paper §4.1); Round 5's overlapping-segment tasks use it to read only
// the chunks covering their segment instead of the whole partition.

#ifndef GESALL_GESALL_LINEAR_INDEX_H_
#define GESALL_GESALL_LINEAR_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "formats/sam.h"
#include "util/status.h"

namespace gesall {

/// \brief Linear index over one coordinate-sorted BAM file.
class LinearBamIndex {
 public:
  /// Window width in reference bases (16 kb, like .bai).
  static constexpr int64_t kWindowBases = 16 * 1024;

  /// Builds the index from a BAM byte string whose records are
  /// coordinate-sorted and belong to a single chromosome (plus possibly
  /// unmapped records at the end, which are not indexed).
  static Result<LinearBamIndex> Build(std::string_view bam);

  /// First BGZF virtual offset whose chunk can contain a record with
  /// AlignmentEnd() > pos. Records spanning into the window from the
  /// left are covered by `max_span_` slack.
  uint64_t LowerBoundOffset(int64_t pos) const;

  /// Virtual offset one past the last record starting before `pos`
  /// (conservative: the offset of the first window starting at/after pos).
  uint64_t UpperBoundOffset(int64_t pos) const;

  int64_t record_count() const { return record_count_; }
  int64_t max_span() const { return max_span_; }
  size_t window_count() const { return window_offsets_.size(); }

  std::string Serialize() const;
  static Result<LinearBamIndex> Deserialize(const std::string& data);

 private:
  // window_offsets_[w] = virtual offset of the first record whose start
  // position falls in window w or later.
  std::vector<uint64_t> window_offsets_;
  uint64_t end_offset_ = 0;  // virtual offset past the last mapped record
  int64_t record_count_ = 0;
  int64_t max_span_ = 0;  // longest reference span of any record
};

/// \brief Reads only the records of `bam` overlapping [start, end),
/// using the index to bound the decompressed byte range.
Result<std::vector<SamRecord>> ReadBamRegion(std::string_view bam,
                                             const LinearBamIndex& index,
                                             int64_t start, int64_t end);

}  // namespace gesall

#endif  // GESALL_GESALL_LINEAR_INDEX_H_

#include "gesall/report.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace gesall {

namespace {

void Append(std::string* out, const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  *out += buf;
}

}  // namespace

Result<DiagnosisReport> GenerateDiagnosisReport(
    const DiagnosisReportInputs& in) {
  if (in.reference == nullptr || in.serial == nullptr ||
      in.parallel_aligned == nullptr || in.parallel_deduped == nullptr ||
      in.parallel_variants == nullptr) {
    return Status::InvalidArgument("missing diagnosis report inputs");
  }
  DiagnosisReport report;
  report.alignment = CompareAlignments(*in.reference, in.serial->aligned,
                                       *in.parallel_aligned);
  report.duplicates =
      CompareDuplicates(in.serial->deduped, *in.parallel_deduped);
  report.variants =
      CompareVariants(in.serial->variants, *in.parallel_variants);
  if (in.truth != nullptr) {
    report.serial_truth_score =
        EvaluateAgainstTruth(in.serial->variants, *in.truth);
    report.parallel_truth_score =
        EvaluateAgainstTruth(*in.parallel_variants, *in.truth);
  }

  report.discordance_is_low_quality =
      report.alignment.d_count == 0 ||
      report.alignment.weighted_d_count <
          0.5 * static_cast<double>(report.alignment.d_count);
  int64_t total_calls = static_cast<int64_t>(report.variants.concordant.size()) +
                        report.variants.d_count();
  report.variant_impact_small =
      total_calls == 0 || report.variants.d_count() * 100 <= total_calls;
  report.truth_scores_match =
      in.truth == nullptr ||
      (std::abs(report.serial_truth_score.precision -
                report.parallel_truth_score.precision) < 0.01 &&
       std::abs(report.serial_truth_score.sensitivity -
                report.parallel_truth_score.sensitivity) < 0.01);

  std::string& md = report.markdown;
  md += "# Parallel pipeline error-tracking report\n\n";

  md += "## Stage 1: alignment (Bwa)\n\n";
  Append(&md, "- reads compared: %lld\n",
         static_cast<long long>(report.alignment.total_reads));
  Append(&md, "- discordant (D_count): %lld\n",
         static_cast<long long>(report.alignment.d_count));
  Append(&md, "- weighted D_count (logistic MAPQ 30..55): %.2f\n",
         report.alignment.weighted_d_count);
  Append(&md, "- in centromeres: %lld, in blacklist: %lld, elsewhere: "
              "%lld\n",
         static_cast<long long>(report.alignment.discordant_centromere),
         static_cast<long long>(report.alignment.discordant_blacklist),
         static_cast<long long>(report.alignment.discordant_elsewhere));
  Append(&md, "- surviving MAPQ>30 + region filters: %lld\n\n",
         static_cast<long long>(report.alignment.discordant_after_filters));

  md += "## Stage 2: duplicate marking\n\n";
  Append(&md, "- flags differing: %lld (weighted %.2f)\n",
         static_cast<long long>(report.duplicates.d_count),
         report.duplicates.weighted_d_count);
  Append(&md, "- duplicate totals: serial %lld vs parallel %lld "
              "(delta %lld)\n\n",
         static_cast<long long>(report.duplicates.duplicates_serial),
         static_cast<long long>(report.duplicates.duplicates_parallel),
         static_cast<long long>(report.duplicates.duplicate_count_delta()));

  md += "## Stage 3: final variant calls\n\n";
  Append(&md, "- concordant: %zu, serial-only: %zu, parallel-only: %zu\n",
         report.variants.concordant.size(),
         report.variants.only_first.size(),
         report.variants.only_second.size());
  Append(&md, "- weighted discordance: %.2f (%.4f%% of calls)\n\n",
         report.variants.weighted_d_count,
         report.variants.weighted_d_count_pct);

  if (in.fault_tolerance != nullptr) {
    report.fault_tolerance = *in.fault_tolerance;
    const FaultToleranceSummary& ft = report.fault_tolerance;
    md += "## Fault tolerance\n\n";
    Append(&md, "- map task retries: %lld, reduce task retries: %lld\n",
           static_cast<long long>(ft.map_task_retries),
           static_cast<long long>(ft.reduce_task_retries));
    Append(&md, "- speculative re-executions: %lld launched, %lld won\n",
           static_cast<long long>(ft.speculative_launches),
           static_cast<long long>(ft.speculative_wins));
    Append(&md, "- poison splits skipped: %lld\n",
           static_cast<long long>(ft.map_splits_skipped));
    Append(&md, "- DFS replica failures: %lld (blocks failed over: %lld, "
                "nodes blacklisted: %lld)\n",
           static_cast<long long>(ft.replica_read_failures),
           static_cast<long long>(ft.blocks_failed_over),
           static_cast<long long>(ft.nodes_blacklisted));
    md += ft.any_faults_survived()
              ? "- the output above was produced UNDER faults; "
                "discordance verdicts already include their effect\n\n"
              : "- no recovery mechanism fired during this run\n\n";
  }

  if (in.node_failures != nullptr) {
    report.node_failures = *in.node_failures;
    const NodeFailureSummary& nf = report.node_failures;
    md += "## Node failures\n\n";
    Append(&md, "- corrupt replicas: %lld detected, %lld quarantined\n",
           static_cast<long long>(nf.corruptions_detected),
           static_cast<long long>(nf.replicas_quarantined));
    Append(&md, "- re-replication: %lld replicas (%lld bytes)\n",
           static_cast<long long>(nf.blocks_re_replicated),
           static_cast<long long>(nf.bytes_re_replicated));
    Append(&md, "- heartbeat: %lld nodes declared dead, %lld restarts\n",
           static_cast<long long>(nf.nodes_declared_dead),
           static_cast<long long>(nf.node_restarts));
    Append(&md, "- lost map outputs: %lld to dead nodes, %lld corrupt "
                "fetches; %lld map tasks re-executed\n",
           static_cast<long long>(nf.map_outputs_lost_to_dead_nodes),
           static_cast<long long>(nf.shuffle_fetch_corruptions),
           static_cast<long long>(nf.map_tasks_reexecuted));
    Append(&md, "- shuffle integrity: %lld partitions verified "
                "(%lld bytes checksummed)\n",
           static_cast<long long>(nf.shuffle_partitions_verified),
           static_cast<long long>(nf.shuffle_checksummed_bytes));
    md += nf.any_node_failures_survived()
              ? "- the output above survived corruption/node loss; "
                "discordance verdicts already include their effect\n\n"
              : "- no corruption or node loss observed during this run\n\n";
  }

  if (in.execution != nullptr) {
    report.execution = *in.execution;
    const ExecutionSummary& ex = report.execution;
    md += "## Execution engine\n\n";
    Append(&md, "- mode: %s rounds on the shared work-stealing executor\n",
           ex.streaming
               ? "streaming (rounds 1+2 fused through bounded-queue nodes)"
               : ex.pipelined ? "pipelined (per-partition overlap)"
                              : "barriered");
    if (ex.peak_rss_bytes > 0) {
      Append(&md, "- peak RSS: %.1f MiB\n",
             static_cast<double>(ex.peak_rss_bytes) / (1024.0 * 1024.0));
    }
    Append(&md, "- tasks executed: %lld (steals: %lld, tasks stolen: "
                "%lld, queue wait: %.3fs)\n",
           static_cast<long long>(ex.tasks_executed),
           static_cast<long long>(ex.steals),
           static_cast<long long>(ex.tasks_stolen), ex.queue_wait_seconds);
    Append(&md, "- wall: %.3fs vs %.3fs serialized rounds "
                "(overlap saved %.3fs)\n",
           ex.wall_seconds, ex.serialized_round_seconds,
           ex.overlap_seconds_saved);
    std::string path;
    for (const auto& name : ex.critical_path) {
      if (!path.empty()) path += " -> ";
      path += name;
    }
    Append(&md, "- critical path (%.3fs): %s\n", ex.critical_path_seconds,
           path.c_str());
    for (const auto& round : ex.rounds) {
      Append(&md, "- round %s: [%.3fs, %.3fs]\n", round.name.c_str(),
             round.start_seconds, round.end_seconds);
    }
    md += "\n";
  }

  if (in.storage != nullptr) {
    report.storage = *in.storage;
    const StorageSummary& st = report.storage;
    md += "## Disk bytes\n\n";
    Append(&md, "- shuffle spills: %lld raw -> %lld on disk (%.2fx), "
                "codec cpu %.3fs deflate / %.3fs inflate\n",
           static_cast<long long>(st.shuffle_bytes_raw),
           static_cast<long long>(st.shuffle_bytes_compressed),
           st.shuffle_ratio(),
           static_cast<double>(st.shuffle_compress_micros) / 1e6,
           static_cast<double>(st.shuffle_decompress_micros) / 1e6);
    Append(&md, "- DFS parts: %lld raw -> %lld stored (%.2fx), "
                "codec cpu %.3fs deflate / %.3fs inflate\n",
           static_cast<long long>(st.dfs_bytes_raw),
           static_cast<long long>(st.dfs_bytes_compressed), st.dfs_ratio(),
           static_cast<double>(st.dfs_compress_micros) / 1e6,
           static_cast<double>(st.dfs_decompress_micros) / 1e6);
    md += st.any_compression_active()
              ? "- compressed state round-trips byte-identically; the "
                "discordance verdicts above cover it\n\n"
              : "- compression off (or incompressible): raw and on-disk "
                "bytes coincide\n\n";
  }

  if (in.truth != nullptr) {
    md += "## Truth-set scoring\n\n";
    Append(&md, "- serial:   precision %.4f, sensitivity %.4f\n",
           report.serial_truth_score.precision,
           report.serial_truth_score.sensitivity);
    Append(&md, "- parallel: precision %.4f, sensitivity %.4f\n\n",
           report.parallel_truth_score.precision,
           report.parallel_truth_score.sensitivity);
  }

  md += "## Verdict\n\n";
  Append(&md, "- [%c] discordant reads are predominantly low quality\n",
         report.discordance_is_low_quality ? 'x' : ' ');
  Append(&md, "- [%c] impact on final variant calls is small (<1%%)\n",
         report.variant_impact_small ? 'x' : ' ');
  Append(&md, "- [%c] truth-set scores are unchanged by parallelization\n",
         report.truth_scores_match ? 'x' : ' ');
  md += report.discordance_is_low_quality && report.variant_impact_small &&
                report.truth_scores_match
            ? "\nACCEPT: data partitioning does not increase error rates "
              "or reduce correct calls.\n"
            : "\nREVIEW: at least one acceptance criterion failed; "
              "diagnose before production use.\n";
  return report;
}

}  // namespace gesall

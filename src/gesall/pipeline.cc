#include "gesall/pipeline.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <set>

#include "analysis/mark_duplicates.h"
#include "analysis/recalibration.h"
#include "analysis/steps.h"
#include "dfs/bam_split_reader.h"
#include "gesall/keys.h"
#include "gesall/linear_index.h"
#include "gesall/pipeline_node.h"
#include "gesall/round_dag.h"
#include "gesall/streaming.h"
#include "gesall/transform.h"
#include "util/bloom_filter.h"
#include "util/io.h"
#include "util/mem.h"
#include "util/stopwatch.h"

namespace gesall {

namespace {

// Stage directory under the pipeline's DFS namespace root. Historically
// these were process-wide constants ("/gesall/input/", ...); they are
// per-instance now so the service layer can run concurrent pipelines on
// one Dfs without their stages colliding.
std::string StageDir(const std::string& root, const char* stage) {
  return root + "/" + stage + "/";
}

std::string PartPath(const std::string& dir, int index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "part-%05d", index);
  return dir + buf;
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Partition data files only (index sidecars filtered out).
std::vector<std::string> ListBams(const Dfs& dfs, const std::string& dir) {
  std::vector<std::string> out;
  for (auto& path : dfs.List(dir)) {
    if (HasSuffix(path, ".bam")) out.push_back(std::move(path));
  }
  return out;
}

// ---------------------------------------------------------------------
// Round 1: map-only alignment (Bwa wrapper + SamToBam via "streaming").

// Surfaces the extension-kernel counters (which kernel ran, how much of
// the DP the band skipped) in the round's counter table.
void EmitKernelCounters(MapContext* ctx, const SwKernelStats& s) {
  ctx->IncrementCounter("align_kernel_calls", s.calls);
  ctx->IncrementCounter("align_kernel_simd_calls", s.simd_calls);
  ctx->IncrementCounter("align_kernel_scalar_calls", s.scalar_calls);
  ctx->IncrementCounter("align_kernel_overflow_reruns", s.overflow_reruns);
  ctx->IncrementCounter("align_band_cells_skipped", s.cells_skipped());
}

// Flushes a fused streamed round's telemetry into the task's counters:
// the kernel stats plus CleanSam tallies (matching the barriered
// rounds' names), and the per-edge queue depth/stall and per-node
// pump/park numbers the streaming bench plots. Depth/stall counters
// sum across map tasks, like every other job counter.
void EmitStreamCounters(MapContext* ctx, const AlignCleanStreamStats& s) {
  EmitKernelCounters(ctx, s.kernel);
  ctx->IncrementCounter("cleansam_clipped", s.clean_clipped);
  ctx->IncrementCounter("cleansam_dropped", s.clean_dropped);
  ctx->IncrementCounter("stream_batches", s.batches);
  ctx->IncrementCounter("stream_reads", s.reads);
  for (const auto& e : s.edges) {
    const std::string p = "stream_queue_" + e.name;
    ctx->IncrementCounter(p + "_max_depth", e.queue.max_depth);
    ctx->IncrementCounter(p + "_push_stalls", e.queue.push_stalls);
    ctx->IncrementCounter(p + "_pop_stalls", e.queue.pop_stalls);
    ctx->IncrementCounter(p + "_push_stall_micros", e.queue.push_stall_micros);
    ctx->IncrementCounter(p + "_pop_stall_micros", e.queue.pop_stall_micros);
  }
  for (const auto& n : s.nodes) {
    const std::string p = "stream_node_" + n.name;
    ctx->IncrementCounter(p + "_pumps", n.pumps);
    ctx->IncrementCounter(p + "_parks", n.parks);
  }
}

// Mapper factory placeholder for the fused streamed round: every split
// carries a stream fn, so the engine never instantiates a mapper.
// Reaching Map here means an engine regression, not bad data.
class StreamedRoundMapper : public Mapper {
 public:
  Status Map(const std::string&, MapContext*) override {
    return Status::Internal(
        "streamed round instantiated a mapper for a non-streamed split");
  }
};

class AlignmentMapper : public Mapper {
 public:
  AlignmentMapper(const GenomeIndex* index, const PairedAlignerOptions& opt,
                  bool use_streaming)
      : index_(index), options_(opt), use_streaming_(use_streaming) {}

  Status Map(const std::string& input, MapContext* ctx) override {
    if (use_streaming_) return MapStreaming(input, ctx);
    return MapNative(input, ctx);
  }

 private:
  // Fig. 8 dataflow: FASTQ text lines -> pipe -> bwa mem -> pipe ->
  // SamToBam, with pipe statistics exposed as counters.
  Status MapStreaming(const std::string& input, MapContext* ctx) {
    BwaStreamProgram bwa(*index_, options_);
    StreamingStats stats;
    GESALL_ASSIGN_OR_RETURN(
        std::string sam_text, RunWrappedProgram(ctx, [&] {
          return RunStreamingChain(input, {&bwa}, &stats);
        }));
    ctx->IncrementCounter("streaming_pipe_flushes", stats.pipe_flushes);
    ctx->IncrementCounter("streaming_bytes_out", stats.output_bytes);
    EmitKernelCounters(ctx, bwa.kernel_stats());
    // Wrapped external program #2: SamToBam on the piped SAM text.
    GESALL_ASSIGN_OR_RETURN(std::string bam, RunWrappedProgram(ctx, [&] {
                              return SamTextToBam(sam_text);
                            }));
    ctx->Emit("", std::move(bam));
    return Status::OK();
  }

  Status MapNative(const std::string& input, MapContext* ctx) {
    // Transform: text FASTQ -> record structs (TextInputWriter analog).
    PairedEndAligner aligner(*index_, options_);
    std::vector<FastqRecord> reads;
    {
      CounterTimer timer(ctx, kTransformMicros);
      GESALL_ASSIGN_OR_RETURN(reads, ParseFastq(input));
    }
    // Wrapped external program #1: bwa mem.
    PairedAlignScratch scratch;
    std::vector<SamRecord> records = RunWrappedProgram(ctx, [&] {
      std::vector<SamRecord> recs;
      aligner.AlignPairs(reads, &scratch, &recs);
      return recs;
    });
    EmitKernelCounters(ctx, scratch.read.stats);
    // Wrapped external program #2: SamToBam.
    GESALL_ASSIGN_OR_RETURN(std::string bam, RunWrappedProgram(ctx, [&] {
                              return SamToBam(aligner.MakeHeader(), records);
                            }));
    ctx->Emit("", std::move(bam));
    return Status::OK();
  }

  const GenomeIndex* index_;
  PairedAlignerOptions options_;
  bool use_streaming_;
};

// ---------------------------------------------------------------------
// Round 2: AddReplaceReadGroups + CleanSam in the map, shuffle by read
// name, FixMateInformation in the reduce.

class CleaningMapper : public Mapper {
 public:
  CleaningMapper(const SamHeader* header, const ReadGroup& rg)
      : header_(header), read_group_(rg) {}

  Status Map(const std::string& input, MapContext* ctx) override {
    // Input is the decompressed record byte stream of one BAM split.
    std::vector<SamRecord> records;
    {
      CounterTimer timer(ctx, kTransformMicros);
      BamRecordIterator it(input);
      while (!it.Done()) {
        GESALL_ASSIGN_OR_RETURN(SamRecord rec, it.Next());
        records.push_back(std::move(rec));
      }
    }
    SamHeader local = *header_;
    GESALL_RETURN_NOT_OK(RunWrappedProgram(ctx, [&] {
      return AddReplaceReadGroups(read_group_, &local, &records);
    }));
    auto clean_stats = RunWrappedProgram(
        ctx, [&] { return CleanSam(local, &records); });
    ctx->IncrementCounter("cleansam_clipped", clean_stats.clipped_overhangs);
    ctx->IncrementCounter("cleansam_dropped", clean_stats.dropped_invalid);
    {
      CounterTimer timer(ctx, kTransformMicros);
      for (const auto& r : records) {
        ctx->EmitView(r.qname, EncodeBamRecord(r));
      }
    }
    return Status::OK();
  }

 private:
  const SamHeader* header_;
  ReadGroup read_group_;
};

// Round-2 combiner: when both mates of a read-name group land in the
// same spill run, FixMateInformation is pre-applied map-side. Legal
// because FixMateInformation is idempotent (each mate's fields are set
// from the pair's own unmodified fields), so the reducer re-applying it
// to the combined pair produces identical bytes; groups that span spill
// runs or map tasks pass through untouched.
class FixMateCombiner : public Combiner {
 public:
  Status Combine(std::string_view key,
                 const std::vector<std::string_view>& values,
                 CombineEmitter* out) override {
    (void)key;
    if (values.size() != 2) {
      for (const auto& v : values) out->Emit(v);
      return Status::OK();
    }
    std::vector<SamRecord> records;
    records.reserve(2);
    for (const auto& v : values) {
      size_t offset = 0;
      GESALL_ASSIGN_OR_RETURN(SamRecord rec, DecodeBamRecord(v, &offset));
      records.push_back(std::move(rec));
    }
    GESALL_RETURN_NOT_OK(FixMateInformation(&records));
    for (const auto& r : records) out->Emit(EncodeBamRecord(r));
    return Status::OK();
  }
};

class FixMateReducer : public Reducer {
 public:
  Status Reduce(const std::string& key,
                const std::vector<std::string>& values,
                ReduceContext* ctx) override {
    return ReduceViews(key, {values.begin(), values.end()}, ctx);
  }

  Status ReduceViews(std::string_view key,
                     const std::vector<std::string_view>& values,
                     ReduceContext* ctx) override {
    (void)key;
    GESALL_ASSIGN_OR_RETURN(std::vector<SamRecord> records,
                            RecordsFromValues(values, ctx));
    if (records.size() == 2) {
      GESALL_RETURN_NOT_OK(RunWrappedProgram(
          ctx, [&] { return FixMateInformation(&records); }));
    } else {
      ctx->IncrementCounter("lone_mates", 1);
    }
    CounterTimer timer(ctx, kTransformMicros);
    for (const auto& r : records) ctx->Emit(EncodeBamRecord(r));
    return Status::OK();
  }
};

// ---------------------------------------------------------------------
// Bloom pre-round for MarkDup_opt: record the 5' ends of partial pairs.

class BloomMapper : public Mapper {
 public:
  BloomMapper(size_t expected, double fpr) : expected_(expected), fpr_(fpr) {}

  Status Map(const std::string& input, MapContext* ctx) override {
    GESALL_ASSIGN_OR_RETURN(auto dataset, BamToDataset(input, ctx));
    BloomFilter filter(expected_, fpr_);
    auto& records = dataset.second;
    for (size_t i = 0; i + 1 < records.size(); i += 2) {
      const SamRecord& a = records[i];
      const SamRecord& b = records[i + 1];
      bool a_mapped = !a.IsUnmapped(), b_mapped = !b.IsUnmapped();
      if (a_mapped == b_mapped) continue;  // only partial pairs
      filter.Insert(KeyOf(a_mapped ? a : b).Fingerprint());
    }
    ctx->Emit("bloom", filter.Serialize());
    return Status::OK();
  }

 private:
  size_t expected_;
  double fpr_;
};

// ---------------------------------------------------------------------
// Round 3: compound-key extraction + duplicate marking.

class MarkDupMapper : public Mapper {
 public:
  explicit MarkDupMapper(const BloomFilter* bloom) : bloom_(bloom) {}

  Status Map(const std::string& input, MapContext* ctx) override {
    GESALL_ASSIGN_OR_RETURN(auto dataset, BamToDataset(input, ctx));
    auto& records = dataset.second;
    // Map-side filter: one representative per 5' end per mapper.
    std::set<ReadEndKey> emitted_ends;
    for (size_t i = 0; i < records.size();) {
      const SamRecord& a = records[i];
      if (i + 1 >= records.size() || records[i + 1].qname != a.qname) {
        // Lone mate (its pair was dropped upstream): route it like a
        // partial pair with no unmapped companion.
        ++i;
        if (a.IsUnmapped()) {
          ctx->Emit(EncodePassthroughKey(a.qname),
                    EncodeMarkDupValue(MarkDupRole::kPassthrough, a));
        } else {
          ctx->Emit(EncodeEndKey(KeyOf(a)),
                    EncodeMarkDupValue(MarkDupRole::kPartialPair, a));
        }
        continue;
      }
      const SamRecord& b = records[i + 1];
      i += 2;
      bool a_mapped = !a.IsUnmapped(), b_mapped = !b.IsUnmapped();
      if (a_mapped && b_mapped) {
        ReadEndKey k1 = KeyOf(a), k2 = KeyOf(b);
        if (k2 < k1) std::swap(k1, k2);
        ctx->Emit(EncodePairKey(k1, k2),
                  EncodeMarkDupValue(MarkDupRole::kCompletePair, a, &b));
        // Criterion 2 representatives, bloom-filtered in MarkDup_opt.
        for (const auto* rec : {&a, &b}) {
          ReadEndKey k = KeyOf(*rec);
          if (emitted_ends.count(k) > 0) continue;
          if (bloom_ != nullptr && !bloom_->MayContain(k.Fingerprint())) {
            ctx->IncrementCounter("bloom_suppressed_representatives", 1);
            continue;
          }
          emitted_ends.insert(k);
          ctx->Emit(EncodeEndKey(k),
                    EncodeMarkDupValue(MarkDupRole::kEndRepresentative,
                                       *rec));
        }
      } else if (a_mapped || b_mapped) {
        const SamRecord& mapped = a_mapped ? a : b;
        const SamRecord& unmapped = a_mapped ? b : a;
        ctx->Emit(EncodeEndKey(KeyOf(mapped)),
                  EncodeMarkDupValue(MarkDupRole::kPartialPair, mapped,
                                     &unmapped));
      } else {
        ctx->Emit(EncodePassthroughKey(a.qname),
                  EncodeMarkDupValue(MarkDupRole::kPassthrough, a, &b));
      }
    }
    return Status::OK();
  }

 private:
  const BloomFilter* bloom_;
};

// Round-3 combiner: defensive dedup of criterion-2 representatives. The
// 'E'-group reducer treats kEndRepresentative values purely as an
// existence flag (it never emits them), so dropping all but the first in
// a spill run cannot change the output. 'P' and 'U' groups pass through
// untouched: every one of their records survives to the round's output,
// so there is nothing to collapse map-side.
class MarkDupCombiner : public Combiner {
 public:
  Status Combine(std::string_view key,
                 const std::vector<std::string_view>& values,
                 CombineEmitter* out) override {
    if (key.empty()) return Status::Internal("empty markdup key");
    if (key[0] != 'E') {
      for (const auto& v : values) out->Emit(v);
      return Status::OK();
    }
    bool seen_representative = false;
    for (const auto& v : values) {
      if (v.empty()) return Status::Corruption("short markdup value");
      if (static_cast<MarkDupRole>(v[0]) ==
          MarkDupRole::kEndRepresentative) {
        if (seen_representative) continue;
        seen_representative = true;
      }
      out->Emit(v);
    }
    return Status::OK();
  }
};

class MarkDupReducer : public Reducer {
 public:
  Status Reduce(const std::string& key,
                const std::vector<std::string>& values,
                ReduceContext* ctx) override {
    return ReduceViews(key, {values.begin(), values.end()}, ctx);
  }

  Status ReduceViews(std::string_view key,
                     const std::vector<std::string_view>& values,
                     ReduceContext* ctx) override {
    std::vector<MarkDupValue> decoded;
    {
      CounterTimer timer(ctx, kTransformMicros);
      decoded.reserve(values.size());
      for (const auto& v : values) {
        GESALL_ASSIGN_OR_RETURN(MarkDupValue mv, DecodeMarkDupValue(v));
        decoded.push_back(std::move(mv));
      }
    }
    CounterTimer program_timer(ctx, kProgramMicros);
    auto emit_pair = [&](MarkDupValue& mv, bool duplicate) {
      mv.first.SetFlag(sam_flags::kDuplicate, duplicate);
      ctx->Emit(EncodeBamRecord(mv.first));
      if (mv.has_second) {
        mv.second.SetFlag(sam_flags::kDuplicate, duplicate);
        ctx->Emit(EncodeBamRecord(mv.second));
      }
      if (duplicate) ctx->IncrementCounter("duplicate_pairs_marked", 1);
    };

    if (key.empty()) return Status::Internal("empty markdup key");
    switch (key[0]) {
      case 'P': {
        // Criterion 1: complete pairs sharing both ends; best survives.
        int best = -1;
        int64_t best_quality = -1;
        for (size_t i = 0; i < decoded.size(); ++i) {
          int64_t q = decoded[i].first.BaseQualityScore() +
                      (decoded[i].has_second
                           ? decoded[i].second.BaseQualityScore()
                           : 0);
          if (q > best_quality ||
              (q == best_quality &&
               decoded[i].first.qname < decoded[best].first.qname)) {
            best = static_cast<int>(i);
            best_quality = q;
          }
        }
        for (size_t i = 0; i < decoded.size(); ++i) {
          emit_pair(decoded[i], static_cast<int>(i) != best);
        }
        break;
      }
      case 'E': {
        // Criterion 2: partials vs complete-pair representatives.
        bool has_representative = false;
        for (const auto& mv : decoded) {
          has_representative |= mv.role == MarkDupRole::kEndRepresentative;
        }
        int best = -1;
        int64_t best_quality = -1;
        if (!has_representative) {
          for (size_t i = 0; i < decoded.size(); ++i) {
            if (decoded[i].role != MarkDupRole::kPartialPair) continue;
            int64_t q = decoded[i].first.BaseQualityScore();
            if (q > best_quality ||
                (q == best_quality &&
                 decoded[i].first.qname < decoded[best].first.qname)) {
              best = static_cast<int>(i);
              best_quality = q;
            }
          }
        }
        for (size_t i = 0; i < decoded.size(); ++i) {
          if (decoded[i].role != MarkDupRole::kPartialPair) continue;
          bool dup = has_representative || static_cast<int>(i) != best;
          emit_pair(decoded[i], dup);
        }
        break;
      }
      case 'U':
        for (auto& mv : decoded) emit_pair(mv, false);
        break;
      default:
        return Status::Internal("unknown markdup key tag");
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------
// Optional recalibration rounds (Table 2 steps 11-12): build covariate
// tables per partition (merged by the driver), then rewrite qualities.

class RecalTableMapper : public Mapper {
 public:
  explicit RecalTableMapper(const ReferenceGenome* reference)
      : reference_(reference) {}

  Status Map(const std::string& input, MapContext* ctx) override {
    GESALL_ASSIGN_OR_RETURN(auto dataset, BamToDataset(input, ctx));
    RecalibrationTable table = RunWrappedProgram(ctx, [&] {
      return BaseRecalibrator(*reference_, dataset.second);
    });
    ctx->Emit("table", table.Serialize());
    return Status::OK();
  }

 private:
  const ReferenceGenome* reference_;
};

class RecalApplyMapper : public Mapper {
 public:
  explicit RecalApplyMapper(const RecalibrationTable* table)
      : table_(table) {}

  Status Map(const std::string& input, MapContext* ctx) override {
    GESALL_ASSIGN_OR_RETURN(auto dataset, BamToDataset(input, ctx));
    RunWrappedProgram(ctx, [&] {
      PrintReads(*table_, &dataset.second);
      return 0;
    });
    GESALL_ASSIGN_OR_RETURN(
        std::string bam,
        DatasetToBam(dataset.first, dataset.second, ctx));
    ctx->Emit("", std::move(bam));
    return Status::OK();
  }

 private:
  const RecalibrationTable* table_;
};

// ---------------------------------------------------------------------
// Round 4: coordinate sort via range partitioning.

class SortMapper : public Mapper {
 public:
  Status Map(const std::string& input, MapContext* ctx) override {
    GESALL_ASSIGN_OR_RETURN(auto dataset, BamToDataset(input, ctx));
    CounterTimer timer(ctx, kTransformMicros);
    for (const auto& r : dataset.second) {
      ctx->EmitView(EncodeCoordinateKey(r), EncodeBamRecord(r));
    }
    return Status::OK();
  }
};

class IdentityReducer : public Reducer {
 public:
  Status Reduce(const std::string& key,
                const std::vector<std::string>& values,
                ReduceContext* ctx) override {
    return ReduceViews(key, {values.begin(), values.end()}, ctx);
  }

  Status ReduceViews(std::string_view key,
                     const std::vector<std::string_view>& values,
                     ReduceContext* ctx) override {
    (void)key;
    // First copy of the round: arena views become owned output values.
    for (const auto& v : values) ctx->Emit(std::string(v));
    return Status::OK();
  }
};

// ---------------------------------------------------------------------
// Round 5: Haplotype Caller over range partitions.
//
// Each split is an envelope: chrom id, processed region, emit range,
// followed by the partition's BAM bytes.

struct HcEnvelope {
  int32_t chrom = 0;
  int64_t start = 0, end = 0;
  int64_t emit_start = 0, emit_end = 0;
  std::string bam;
};

std::string EncodeHcEnvelope(int32_t chrom, int64_t start, int64_t end,
                             int64_t emit_start, int64_t emit_end,
                             std::string bam) {
  std::string out;
  BufferWriter w(&out);
  w.PutI32(chrom);
  w.PutI64(start);
  w.PutI64(end);
  w.PutI64(emit_start);
  w.PutI64(emit_end);
  out += bam;
  return out;
}

Result<HcEnvelope> DecodeHcEnvelope(const std::string& data) {
  HcEnvelope e;
  BufferReader r(data);
  GESALL_RETURN_NOT_OK(r.GetI32(&e.chrom));
  GESALL_RETURN_NOT_OK(r.GetI64(&e.start));
  GESALL_RETURN_NOT_OK(r.GetI64(&e.end));
  GESALL_RETURN_NOT_OK(r.GetI64(&e.emit_start));
  GESALL_RETURN_NOT_OK(r.GetI64(&e.emit_end));
  e.bam = data.substr(r.position());
  return e;
}

class UnifiedGenotyperMapper : public Mapper {
 public:
  UnifiedGenotyperMapper(const ReferenceGenome* reference,
                         const GenotyperOptions& options)
      : reference_(reference), options_(options) {}

  Status Map(const std::string& input, MapContext* ctx) override {
    GESALL_ASSIGN_OR_RETURN(HcEnvelope env, DecodeHcEnvelope(input));
    if (env.bam.empty()) return Status::OK();
    GESALL_ASSIGN_OR_RETURN(auto dataset, BamToDataset(env.bam, ctx));
    UnifiedGenotyper caller(*reference_, options_);
    std::vector<VariantRecord> variants = RunWrappedProgram(ctx, [&] {
      auto all =
          caller.CallRegion(dataset.second, env.chrom, env.start, env.end);
      std::vector<VariantRecord> emitted;
      for (auto& v : all) {
        if (v.pos >= env.emit_start && v.pos < env.emit_end) {
          emitted.push_back(std::move(v));
        }
      }
      return emitted;
    });
    CounterTimer timer(ctx, kTransformMicros);
    for (const auto& v : variants) ctx->Emit("", EncodeVariantBinary(v));
    return Status::OK();
  }

 private:
  const ReferenceGenome* reference_;
  GenotyperOptions options_;
};

class HaplotypeCallerMapper : public Mapper {
 public:
  HaplotypeCallerMapper(const ReferenceGenome* reference,
                        const HaplotypeCallerOptions& options)
      : reference_(reference), options_(options) {}

  Status Map(const std::string& input, MapContext* ctx) override {
    GESALL_ASSIGN_OR_RETURN(HcEnvelope env, DecodeHcEnvelope(input));
    if (env.bam.empty()) return Status::OK();
    GESALL_ASSIGN_OR_RETURN(auto dataset, BamToDataset(env.bam, ctx));
    HaplotypeCaller caller(*reference_, options_);
    std::vector<VariantRecord> variants = RunWrappedProgram(ctx, [&] {
      if (env.start == 0 &&
          env.end == static_cast<int64_t>(
                         reference_->chromosomes[env.chrom].sequence.size())
          && env.emit_start == env.start && env.emit_end == env.end) {
        return caller.CallChromosome(dataset.second, env.chrom);
      }
      return caller.CallRegion(dataset.second, env.chrom, env.start, env.end,
                               env.emit_start, env.emit_end);
    });
    CounterTimer timer(ctx, kTransformMicros);
    for (const auto& v : variants) ctx->Emit("", EncodeVariantBinary(v));
    return Status::OK();
  }

 private:
  const ReferenceGenome* reference_;
  HaplotypeCallerOptions options_;
};

// Serializes one reduce partition's record values into a BAM file body
// (the write side every round shares, barriered or pipelined).
Status BuildBamPartition(const SamHeader& header,
                         const std::vector<std::string>& values,
                         std::string* bam) {
  BamWriter writer(bam);
  GESALL_RETURN_NOT_OK(writer.WriteHeader(header));
  for (const auto& v : values) {
    size_t offset = 0;
    GESALL_ASSIGN_OR_RETURN(SamRecord rec, DecodeBamRecord(v, &offset));
    GESALL_RETURN_NOT_OK(writer.WriteRecord(rec));
  }
  return writer.Finish();
}

}  // namespace

// -----------------------------------------------------------------------

GesallPipeline::GesallPipeline(const ReferenceGenome& reference,
                               const GenomeIndex& index, Dfs* dfs,
                               PipelineConfig config)
    : reference_(&reference), index_(&index), dfs_(dfs), config_(config) {
  input_dir_ = StageDir(config_.dfs_root, "input");
  aligned_dir_ = StageDir(config_.dfs_root, "aligned");
  cleaned_dir_ = StageDir(config_.dfs_root, "cleaned");
  dedup_dir_ = StageDir(config_.dfs_root, "dedup");
  recal_dir_ = StageDir(config_.dfs_root, "recal");
  sorted_dir_ = StageDir(config_.dfs_root, "sorted");
  manifests_dir_ = StageDir(config_.dfs_root, "manifests");
  variants_dir_ = StageDir(config_.dfs_root, "variants");
  for (const auto& c : reference.chromosomes) {
    header_.refs.push_back({c.name, static_cast<int64_t>(c.sequence.size())});
  }
  header_.read_groups.push_back(config_.read_group);
  header_.programs.push_back("gesall");
  if (config_.fault_injector != nullptr && dfs_ != nullptr) {
    dfs_->set_fault_injector(config_.fault_injector);
  }
  if (dfs_ != nullptr) {
    dfs_->set_executor(config_.executor != nullptr ? config_.executor
                                                   : Executor::Shared());
  }
}

JobConfig GesallPipeline::MakeJobConfig(int reducers) const {
  JobConfig cfg;
  cfg.num_reducers = reducers;
  cfg.max_parallel_tasks = config_.max_parallel_tasks;
  cfg.sort_buffer_bytes = config_.sort_buffer_bytes;
  cfg.fault_injector = config_.fault_injector;
  cfg.max_task_attempts = config_.max_task_attempts;
  cfg.retry_base_ms = config_.retry_base_ms;
  cfg.speculative_execution = config_.speculative_execution;
  cfg.speculative_slow_task_ms = config_.speculative_slow_task_ms;
  cfg.skip_bad_records = config_.skip_bad_records;
  cfg.compress_shuffle = config_.compress_shuffle;
  cfg.shuffle_compress_level = config_.shuffle_compress_level;
  // Node model: MR tasks run on the same simulated cluster the DFS
  // replicates over, so "node.crash" kills both a node's replicas (on
  // the next heartbeat Tick) and its map outputs (at reduce fetch).
  cfg.num_nodes = dfs_ != nullptr ? dfs_->num_data_nodes() : 0;
  cfg.max_map_reexecutions = config_.max_map_reexecutions;
  cfg.executor = config_.executor;  // null selects Executor::Shared()
  cfg.cancel = config_.cancel;
  return cfg;
}

Status GesallPipeline::MaybeTick() {
  // The heartbeat clock historically advanced once per round here; with
  // auto_tick off an external HeartbeatDriver owns the clock so an idle
  // cluster still detects dead nodes (and a busy round doesn't
  // double-count intervals).
  if (!config_.auto_tick) return Status::OK();
  return dfs_->Tick();
}

void GesallPipeline::RemoveStageOutputs() {
  for (const std::string* dir :
       {&aligned_dir_, &cleaned_dir_, &dedup_dir_, &recal_dir_,
        &sorted_dir_, &manifests_dir_, &variants_dir_}) {
    for (const auto& path : dfs_->List(*dir)) {
      (void)dfs_->Delete(path);
    }
  }
}

const std::string& GesallPipeline::RoundOutputDir(int round_index) const {
  switch (round_index) {
    case kRoundAlignment: return aligned_dir_;
    case kRoundCleaning: return cleaned_dir_;
    case kRoundMarkDuplicates: return dedup_dir_;
    case kRoundRecalibration: return recal_dir_;
    case kRoundSort: return sorted_dir_;
    default: return variants_dir_;
  }
}

std::string GesallPipeline::ManifestPath(int round_index) const {
  return manifests_dir_ + "round-" + std::to_string(round_index);
}

bool GesallPipeline::RoundComplete(int round_index) const {
  Result<std::string> raw = dfs_->Read(ManifestPath(round_index));
  if (!raw.ok()) return false;
  BufferReader reader(raw.ValueOrDie());
  std::string name;
  uint32_t n = 0;
  if (!reader.GetString(&name).ok() || !reader.GetU32(&n).ok()) return false;
  for (uint32_t i = 0; i < n; ++i) {
    std::string path;
    int64_t size = 0;
    if (!reader.GetString(&path).ok() || !reader.GetI64(&size).ok()) {
      return false;
    }
    Result<int64_t> actual = dfs_->FileSize(path);
    if (!actual.ok() || actual.ValueOrDie() != size) return false;
  }
  return true;
}

Status GesallPipeline::SealRound(int round_index, const std::string& name) {
  if (config_.write_manifests) {
    // The round's outputs are already durable in the DFS; the manifest
    // write is the commit point that marks the round sealed. A crash
    // before it replays the round from scratch; after it, resume skips.
    std::vector<std::string> outputs = dfs_->List(RoundOutputDir(round_index));
    std::string manifest;
    BufferWriter writer(&manifest);
    writer.PutString(name);
    writer.PutU32(static_cast<uint32_t>(outputs.size()));
    for (const auto& path : outputs) {
      GESALL_ASSIGN_OR_RETURN(int64_t size, dfs_->FileSize(path));
      writer.PutString(path);
      writer.PutI64(size);
    }
    GESALL_RETURN_NOT_OK(dfs_->Write(ManifestPath(round_index), manifest));
  }
  if (config_.on_round_complete) config_.on_round_complete(round_index, name);
  return Status::OK();
}

bool GesallPipeline::SkipIfSealed(int round_index, const std::string& name) {
  if (!config_.resume || !RoundComplete(round_index)) return false;
  JobCounters counters;
  counters.Add("round_skipped_on_resume", 1);
  stats_.push_back({name, 0.0, std::move(counters), {}});
  if (config_.on_round_complete) config_.on_round_complete(round_index, name);
  return true;
}

FaultToleranceSummary GesallPipeline::SummarizeFaultTolerance() const {
  JobCounters merged;
  for (const auto& round : stats_) merged.Merge(round.counters);
  DfsStats dfs_stats = dfs_ != nullptr ? dfs_->stats() : DfsStats{};
  return gesall::SummarizeFaultTolerance(merged, &dfs_stats);
}

NodeFailureSummary GesallPipeline::SummarizeNodeFailures() const {
  JobCounters merged;
  for (const auto& round : stats_) merged.Merge(round.counters);
  DfsStats dfs_stats = dfs_ != nullptr ? dfs_->stats() : DfsStats{};
  return gesall::SummarizeNodeFailures(merged, &dfs_stats);
}

StorageSummary GesallPipeline::SummarizeStorage() const {
  JobCounters merged;
  for (const auto& round : stats_) merged.Merge(round.counters);
  DfsStats dfs_stats = dfs_ != nullptr ? dfs_->stats() : DfsStats{};
  return gesall::SummarizeStorage(merged, &dfs_stats);
}

Status GesallPipeline::LoadSample(const std::vector<FastqRecord>& mate1,
                                  const std::vector<FastqRecord>& mate2) {
  GESALL_ASSIGN_OR_RETURN(std::vector<FastqRecord> interleaved,
                          InterleavePairs(mate1, mate2));
  const int P = std::max(1, config_.alignment_partitions);
  const size_t n_pairs = interleaved.size() / 2;
  LogicalPartitionPlacementPolicy policy;
  for (int p = 0; p < P; ++p) {
    size_t begin = 2 * (n_pairs * p / P);
    size_t end = 2 * (n_pairs * (p + 1) / P);
    std::vector<FastqRecord> part(interleaved.begin() + begin,
                                  interleaved.begin() + end);
    GESALL_RETURN_NOT_OK(
        dfs_->Write(PartPath(input_dir_, p), WriteFastq(part), &policy));
  }
  return Status::OK();
}

Status GesallPipeline::RunRound1Alignment() {
  if (SkipIfSealed(kRoundAlignment, "round1_alignment")) return MaybeTick();
  Stopwatch clock;
  std::vector<std::string> inputs = dfs_->List(input_dir_);
  if (inputs.empty()) return Status::InvalidArgument("no input partitions");
  std::vector<InputSplit> splits;
  for (const auto& path : inputs) {
    InputSplit s;
    Dfs* dfs = dfs_;
    s.load = [dfs, path]() { return dfs->Read(path); };
    splits.push_back(std::move(s));
  }
  MapReduceJob job(MakeJobConfig(0));
  const GenomeIndex* index = index_;
  PairedAlignerOptions opt = config_.aligner;
  bool streaming = config_.use_streaming_alignment;
  GESALL_ASSIGN_OR_RETURN(
      JobResult result,
      job.RunMapOnly(splits, [index, opt, streaming] {
        return std::make_unique<AlignmentMapper>(index, opt, streaming);
      }));
  LogicalPartitionPlacementPolicy policy;
  for (size_t i = 0; i < result.reducer_outputs.size(); ++i) {
    if (result.reducer_outputs[i].empty()) continue;
    GESALL_RETURN_NOT_OK(
        dfs_->Write(PartPath(aligned_dir_, static_cast<int>(i)) + ".bam",
                    result.reducer_outputs[i][0], &policy));
  }
  stats_.push_back({"round1_alignment", clock.ElapsedSeconds(),
                    std::move(result.counters), std::move(result.tasks)});
  GESALL_RETURN_NOT_OK(SealRound(kRoundAlignment, "round1_alignment"));
  // One heartbeat interval per round: crashed nodes are declared dead
  // and their blocks re-replicated before the next round reads them.
  return MaybeTick();
}

Status GesallPipeline::RunRound2Cleaning() {
  if (SkipIfSealed(kRoundCleaning, "round2_cleaning")) return MaybeTick();
  Stopwatch clock;
  // Map input: DFS block splits of every aligned partition (the custom
  // RecordReader path of §3.1).
  std::vector<InputSplit> splits;
  for (const auto& path : ListBams(*dfs_, aligned_dir_)) {
    GESALL_ASSIGN_OR_RETURN(auto bam_splits, ComputeBamSplits(*dfs_, path));
    for (const auto& bs : bam_splits) {
      InputSplit s;
      Dfs* dfs = dfs_;
      s.load = [dfs, path, bs]() {
        return ReadBamSplitRecords(*dfs, path, bs);
      };
      s.preferred_node = bs.preferred_nodes.empty() ? -1
                                                    : bs.preferred_nodes[0];
      splits.push_back(std::move(s));
    }
  }
  JobConfig job_cfg = MakeJobConfig(config_.cleaning_reducers);
  if (config_.use_combiners) {
    job_cfg.combiner_factory = [] {
      return std::make_unique<FixMateCombiner>();
    };
  }
  MapReduceJob job(job_cfg);
  const SamHeader* header = &header_;
  ReadGroup rg = config_.read_group;
  GESALL_ASSIGN_OR_RETURN(
      JobResult result,
      job.Run(
          splits,
          [header, rg] { return std::make_unique<CleaningMapper>(header, rg); },
          [] { return std::make_unique<FixMateReducer>(); }));

  std::vector<std::string> outputs;
  for (auto& values : result.reducer_outputs) {
    std::string bam;
    GESALL_RETURN_NOT_OK(BuildBamPartition(header_, values, &bam));
    outputs.push_back(std::move(bam));
  }
  GESALL_RETURN_NOT_OK(WritePartitions(cleaned_dir_, outputs));
  stats_.push_back({"round2_cleaning", clock.ElapsedSeconds(),
                    std::move(result.counters), std::move(result.tasks)});
  GESALL_RETURN_NOT_OK(SealRound(kRoundCleaning, "round2_cleaning"));
  return MaybeTick();
}

Result<std::string> GesallPipeline::BuildBloomFilter() {
  std::vector<InputSplit> splits;
  for (const auto& path : ListBams(*dfs_, cleaned_dir_)) {
    InputSplit s;
    Dfs* dfs = dfs_;
    s.load = [dfs, path]() { return dfs->Read(path); };
    splits.push_back(std::move(s));
  }
  MapReduceJob job(MakeJobConfig(0));
  size_t expected = config_.bloom_expected_items;
  double fpr = config_.bloom_fpr;
  GESALL_ASSIGN_OR_RETURN(
      JobResult result, job.RunMapOnly(splits, [expected, fpr] {
        return std::make_unique<BloomMapper>(expected, fpr);
      }));
  BloomFilter merged(expected, fpr);
  for (const auto& out : result.reducer_outputs) {
    for (const auto& v : out) {
      GESALL_ASSIGN_OR_RETURN(BloomFilter f, BloomFilter::Deserialize(v));
      GESALL_RETURN_NOT_OK(merged.Union(f));
    }
  }
  stats_.push_back({"round3_bloom_preround", 0.0,
                    std::move(result.counters), std::move(result.tasks)});
  return merged.Serialize();
}

Status GesallPipeline::RunRound3MarkDuplicates() {
  const std::string round3_name = config_.markdup_use_bloom
                                      ? "round3_markdup_opt"
                                      : "round3_markdup_reg";
  if (SkipIfSealed(kRoundMarkDuplicates, round3_name)) return MaybeTick();
  Stopwatch clock;
  std::unique_ptr<BloomFilter> bloom;
  if (config_.markdup_use_bloom) {
    GESALL_ASSIGN_OR_RETURN(std::string serialized, BuildBloomFilter());
    GESALL_ASSIGN_OR_RETURN(BloomFilter f,
                            BloomFilter::Deserialize(serialized));
    bloom = std::make_unique<BloomFilter>(std::move(f));
  }

  // Logical partition inputs: whole cleaned files (map benefits from the
  // read-name grouping of the previous round, Appendix A.2).
  std::vector<InputSplit> splits;
  for (const auto& path : ListBams(*dfs_, cleaned_dir_)) {
    InputSplit s;
    Dfs* dfs = dfs_;
    s.load = [dfs, path]() { return dfs->Read(path); };
    s.preferred_node =
        LogicalPartitionPlacementPolicy::PrimaryNodeFor(path,
                                                        dfs_->num_data_nodes());
    splits.push_back(std::move(s));
  }
  JobConfig job_cfg = MakeJobConfig(config_.markdup_reducers);
  if (config_.use_combiners) {
    job_cfg.combiner_factory = [] {
      return std::make_unique<MarkDupCombiner>();
    };
  }
  MapReduceJob job(job_cfg);
  const BloomFilter* bloom_ptr = bloom.get();
  GESALL_ASSIGN_OR_RETURN(
      JobResult result,
      job.Run(
          splits,
          [bloom_ptr] { return std::make_unique<MarkDupMapper>(bloom_ptr); },
          [] { return std::make_unique<MarkDupReducer>(); }));

  std::vector<std::string> outputs;
  for (auto& values : result.reducer_outputs) {
    std::string bam;
    GESALL_RETURN_NOT_OK(BuildBamPartition(header_, values, &bam));
    outputs.push_back(std::move(bam));
  }
  GESALL_RETURN_NOT_OK(WritePartitions(dedup_dir_, outputs));
  stats_.push_back({round3_name, clock.ElapsedSeconds(),
                    std::move(result.counters), std::move(result.tasks)});
  GESALL_RETURN_NOT_OK(SealRound(kRoundMarkDuplicates, round3_name));
  return MaybeTick();
}

Status GesallPipeline::RunRecalibrationRounds() {
  if (SkipIfSealed(kRoundRecalibration, "round3.5_print_reads")) {
    return MaybeTick();
  }
  Stopwatch clock;
  auto make_splits = [this] {
    std::vector<InputSplit> splits;
    for (const auto& path : ListBams(*dfs_, dedup_dir_)) {
      InputSplit s;
      Dfs* dfs = dfs_;
      s.load = [dfs, path]() { return dfs->Read(path); };
      splits.push_back(std::move(s));
    }
    return splits;
  };

  // Round 3.5a: per-partition covariate tables, merged by the driver
  // (GDPT group partitioning by user-defined covariates, §3.2).
  MapReduceJob build_job(MakeJobConfig(0));
  const ReferenceGenome* reference = reference_;
  GESALL_ASSIGN_OR_RETURN(
      JobResult build_result,
      build_job.RunMapOnly(make_splits(), [reference] {
        return std::make_unique<RecalTableMapper>(reference);
      }));
  RecalibrationTable merged;
  for (const auto& out : build_result.reducer_outputs) {
    for (const auto& v : out) {
      GESALL_ASSIGN_OR_RETURN(RecalibrationTable t,
                              RecalibrationTable::Deserialize(v));
      merged.Merge(t);
    }
  }
  stats_.push_back({"round3.5_base_recalibrator", clock.ElapsedSeconds(),
                    std::move(build_result.counters),
                    std::move(build_result.tasks)});

  // Round 3.5b: PrintReads with the merged table.
  Stopwatch apply_clock;
  MapReduceJob apply_job(MakeJobConfig(0));
  const RecalibrationTable* table = &merged;
  GESALL_ASSIGN_OR_RETURN(
      JobResult apply_result,
      apply_job.RunMapOnly(make_splits(), [table] {
        return std::make_unique<RecalApplyMapper>(table);
      }));
  std::vector<std::string> outputs;
  for (auto& out : apply_result.reducer_outputs) {
    if (!out.empty()) outputs.push_back(std::move(out[0]));
  }
  GESALL_RETURN_NOT_OK(WritePartitions(recal_dir_, outputs));
  stats_.push_back({"round3.5_print_reads", apply_clock.ElapsedSeconds(),
                    std::move(apply_result.counters),
                    std::move(apply_result.tasks)});
  GESALL_RETURN_NOT_OK(
      SealRound(kRoundRecalibration, "round3.5_print_reads"));
  return MaybeTick();
}

Status GesallPipeline::RunRound4Sort() {
  if (SkipIfSealed(kRoundSort, "round4_sort")) return MaybeTick();
  Stopwatch clock;
  // Input: recalibrated partitions when the optional rounds ran.
  std::string input_dir =
      ListBams(*dfs_, recal_dir_).empty() ? dedup_dir_ : recal_dir_;
  std::vector<InputSplit> splits;
  for (const auto& path : ListBams(*dfs_, input_dir)) {
    InputSplit s;
    Dfs* dfs = dfs_;
    s.load = [dfs, path]() { return dfs->Read(path); };
    splits.push_back(std::move(s));
  }
  const int C = static_cast<int>(reference_->chromosomes.size());
  std::vector<std::string> boundaries;
  for (int c = 1; c < C; ++c) {
    boundaries.push_back(EncodeCoordinateBoundary(c, 0));
  }
  boundaries.push_back("\x7f");  // unmapped records partition
  RangePartitioner partitioner(boundaries);
  MapReduceJob job(MakeJobConfig(C + 1));
  GESALL_ASSIGN_OR_RETURN(
      JobResult result,
      job.Run(
          splits, [] { return std::make_unique<SortMapper>(); },
          [] { return std::make_unique<IdentityReducer>(); }, &partitioner));

  SamHeader sorted_header = header_;
  sorted_header.sort_order = "coordinate";
  std::vector<std::string> outputs;
  for (auto& values : result.reducer_outputs) {
    std::string bam;
    GESALL_RETURN_NOT_OK(BuildBamPartition(sorted_header, values, &bam));
    outputs.push_back(std::move(bam));
  }
  GESALL_RETURN_NOT_OK(WritePartitions(sorted_dir_, outputs));
  // "Sorting and building the BAM file index in the reducer" (§4.1):
  // a linear index sidecar per sorted partition, used by the
  // overlapping-segment Round 5 to read only the relevant chunk ranges.
  LogicalPartitionPlacementPolicy policy;
  for (size_t i = 0; i < outputs.size(); ++i) {
    GESALL_ASSIGN_OR_RETURN(LinearBamIndex index,
                            LinearBamIndex::Build(outputs[i]));
    GESALL_RETURN_NOT_OK(
        dfs_->Write(PartPath(sorted_dir_, static_cast<int>(i)) + ".bai",
                    index.Serialize(), &policy));
  }
  stats_.push_back({"round4_sort", clock.ElapsedSeconds(),
                    std::move(result.counters), std::move(result.tasks)});
  GESALL_RETURN_NOT_OK(SealRound(kRoundSort, "round4_sort"));
  return MaybeTick();
}

Result<std::vector<VariantRecord>> GesallPipeline::RunRound5VariantCalling() {
  const std::string round5_name =
      config_.variant_caller == PipelineConfig::VariantCaller::kUnifiedGenotyper
          ? "round5_unified_genotyper"
          : "round5_haplotype_caller";
  if (config_.resume && RoundComplete(kRoundVariants)) {
    // The sealed round persisted its calls under variants/: reload them
    // instead of re-running the callers.
    GESALL_ASSIGN_OR_RETURN(std::string raw,
                            dfs_->Read(variants_dir_ + "calls.bin"));
    std::vector<VariantRecord> variants;
    size_t offset = 0;
    while (offset < raw.size()) {
      GESALL_ASSIGN_OR_RETURN(VariantRecord rec,
                              DecodeVariantBinary(raw, &offset));
      variants.push_back(std::move(rec));
    }
    JobCounters counters;
    counters.Add("round_skipped_on_resume", 1);
    stats_.push_back({round5_name, 0.0, std::move(counters), {}});
    if (config_.on_round_complete) {
      config_.on_round_complete(kRoundVariants, round5_name);
    }
    GESALL_RETURN_NOT_OK(MaybeTick());
    return variants;
  }
  Stopwatch clock;
  const int C = static_cast<int>(reference_->chromosomes.size());
  std::vector<InputSplit> splits;
  for (int c = 0; c < C; ++c) {
    std::string path = PartPath(sorted_dir_, c) + ".bam";
    if (!dfs_->Exists(path)) continue;
    int64_t chrom_len =
        static_cast<int64_t>(reference_->chromosomes[c].sequence.size());
    Dfs* dfs = dfs_;
    if (config_.hc_partitioning == PipelineConfig::HcPartitioning::kChromosome) {
      InputSplit s;
      s.load = [dfs, path, c, chrom_len]() -> Result<std::string> {
        GESALL_ASSIGN_OR_RETURN(std::string bam, dfs->Read(path));
        return EncodeHcEnvelope(c, 0, chrom_len, 0, chrom_len,
                                std::move(bam));
      };
      splits.push_back(std::move(s));
    } else {
      const int S = std::max(1, config_.hc_segments_per_chromosome);
      const int64_t overlap =
          config_.hc.max_window + config_.hc.window_pad;
      for (int seg = 0; seg < S; ++seg) {
        int64_t emit_start = chrom_len * seg / S;
        int64_t emit_end = chrom_len * (seg + 1) / S;
        int64_t start = std::max<int64_t>(0, emit_start - overlap);
        int64_t end = std::min(chrom_len, emit_end + overlap);
        InputSplit s;
        std::string index_path = PartPath(sorted_dir_, c) + ".bai";
        SamHeader header = header_;
        s.load = [dfs, path, index_path, header, c, start, end, emit_start,
                  emit_end]() -> Result<std::string> {
          GESALL_ASSIGN_OR_RETURN(std::string bam, dfs->Read(path));
          if (dfs->Exists(index_path)) {
            // Use the Round-4 linear index to carry only the records
            // overlapping this segment.
            GESALL_ASSIGN_OR_RETURN(std::string raw, dfs->Read(index_path));
            GESALL_ASSIGN_OR_RETURN(LinearBamIndex index,
                                    LinearBamIndex::Deserialize(raw));
            GESALL_ASSIGN_OR_RETURN(
                std::vector<SamRecord> region,
                ReadBamRegion(bam, index, start, end));
            GESALL_ASSIGN_OR_RETURN(std::string subset,
                                    WriteBam(header, region));
            return EncodeHcEnvelope(c, start, end, emit_start, emit_end,
                                    std::move(subset));
          }
          return EncodeHcEnvelope(c, start, end, emit_start, emit_end,
                                  std::move(bam));
        };
        splits.push_back(std::move(s));
      }
    }
  }
  MapReduceJob job(MakeJobConfig(0));
  const ReferenceGenome* reference = reference_;
  MapperFactory factory;
  if (config_.variant_caller == PipelineConfig::VariantCaller::
                                    kUnifiedGenotyper) {
    GenotyperOptions ug = config_.ug;
    factory = [reference, ug] {
      return std::make_unique<UnifiedGenotyperMapper>(reference, ug);
    };
  } else {
    HaplotypeCallerOptions hc = config_.hc;
    factory = [reference, hc] {
      return std::make_unique<HaplotypeCallerMapper>(reference, hc);
    };
  }
  GESALL_ASSIGN_OR_RETURN(JobResult result,
                          job.RunMapOnly(splits, factory));
  std::vector<VariantRecord> variants;
  for (const auto& out : result.reducer_outputs) {
    for (const auto& v : out) {
      size_t offset = 0;
      GESALL_ASSIGN_OR_RETURN(VariantRecord rec,
                              DecodeVariantBinary(v, &offset));
      variants.push_back(std::move(rec));
    }
  }
  std::sort(variants.begin(), variants.end(), VariantLess);
  stats_.push_back({round5_name, clock.ElapsedSeconds(),
                    std::move(result.counters), std::move(result.tasks)});
  if (config_.write_manifests) {
    // Variants are otherwise in-memory only; persist them so a resumed
    // job whose final round already finished returns identical calls.
    std::string blob;
    for (const auto& v : variants) blob += EncodeVariantBinary(v);
    GESALL_RETURN_NOT_OK(dfs_->Write(variants_dir_ + "calls.bin", blob));
  }
  GESALL_RETURN_NOT_OK(SealRound(kRoundVariants, round5_name));
  GESALL_RETURN_NOT_OK(MaybeTick());
  return variants;
}

Result<std::vector<VariantRecord>> GesallPipeline::RunAll() {
  Executor* executor =
      config_.executor != nullptr ? config_.executor : Executor::Shared();
  const ExecutorStats before = executor->stats();
  const size_t first_round = stats_.size();
  // Resume consults manifests at round barriers, so a resumed run always
  // executes barriered even when the config asks for overlap.
  const bool pipelined_run = config_.pipelined && !config_.resume;
  execution_ = ExecutionSummary{};
  execution_.pipelined = pipelined_run;
  execution_.streaming = pipelined_run && config_.streaming;
  Stopwatch wall;
  Result<std::vector<VariantRecord>> result =
      pipelined_run ? RunAllPipelined() : RunAllBarriered();
  execution_.wall_seconds = wall.ElapsedSeconds();
  if (!result.ok() && result.status().IsCancelled() &&
      !config_.preserve_outputs_on_cancel) {
    // Cancelled runs must leave no partial stage outputs visible: a
    // later Restart() (or a diagnosis pass) reading half-written stages
    // would silently truncate the sample. Inputs stay loaded so the job
    // can re-run from the top. Durable jobs opt out: their sealed-round
    // outputs are exactly what a post-crash resume picks up from.
    RemoveStageOutputs();
  }

  const ExecutorStats after = executor->stats();
  execution_.tasks_executed = after.tasks_executed - before.tasks_executed;
  execution_.steals = after.steals - before.steals;
  execution_.tasks_stolen = after.tasks_stolen - before.tasks_stolen;
  execution_.queue_wait_seconds =
      static_cast<double>(after.queue_wait_micros -
                          before.queue_wait_micros) /
      1e6;
  // High-water mark over the whole process (cumulative, so streaming
  // vs barriered comparisons need separate processes or the resettable
  // allocator hooks in util/mem.h).
  execution_.peak_rss_bytes = PeakRssBytes();

  // Barriered rounds execute back to back: derive their spans from the
  // recorded round walls. The pipelined path records real spans itself.
  if (!pipelined_run) {
    double at = 0;
    for (size_t i = first_round; i < stats_.size(); ++i) {
      execution_.rounds.push_back(
          {stats_[i].name, at, at + stats_[i].wall_seconds});
      at += stats_[i].wall_seconds;
    }
  }

  // Round-level DAG: each recorded round depends on the previous one
  // (the order rounds were awaited is the dependency spine), so the
  // critical path is the serialized bound overlap is measured against.
  RoundDag dag;
  int prev = -1;
  for (const auto& span : execution_.rounds) {
    int node = dag.AddTask(span.name);
    dag.RecordSpan(node, span.start_seconds, span.end_seconds);
    if (prev >= 0) dag.AddDep(prev, node);
    prev = node;
    execution_.serialized_round_seconds +=
        span.end_seconds - span.start_seconds;
  }
  execution_.critical_path = dag.CriticalPath();
  execution_.critical_path_seconds = dag.CriticalPathSeconds();
  execution_.overlap_seconds_saved = std::max(
      0.0, execution_.serialized_round_seconds - execution_.wall_seconds);
  return result;
}

Result<std::vector<VariantRecord>> GesallPipeline::RunAllBarriered() {
  GESALL_RETURN_NOT_OK(RunRound1Alignment());
  GESALL_RETURN_NOT_OK(RunRound2Cleaning());
  GESALL_RETURN_NOT_OK(RunRound3MarkDuplicates());
  if (config_.run_recalibration) {
    GESALL_RETURN_NOT_OK(RunRecalibrationRounds());
  }
  GESALL_RETURN_NOT_OK(RunRound4Sort());
  return RunRound5VariantCalling();
}

Result<std::vector<VariantRecord>> GesallPipeline::RunAllPipelined() {
  Executor* executor =
      config_.executor != nullptr ? config_.executor : Executor::Shared();
  // One shared admission throttle: max_parallel_tasks is a global task
  // slot budget across the overlapped rounds, matching the barriered
  // engine where only one round holds slots at a time.
  auto throttle = std::make_shared<Throttle>(
      executor, std::max(1, config_.max_parallel_tasks));
  Stopwatch wall;

  // ---- Round 1. Streaming fuses it into the round-2 job below (the
  // aligned stage never exists on the DFS); otherwise it runs barriered
  // first, since round 2's split computation needs the aligned files.
  const bool streaming = config_.streaming;
  if (!streaming) {
    GESALL_RETURN_NOT_OK(RunRound1Alignment());
    execution_.rounds.push_back(
        {"round1_alignment", 0.0, wall.ElapsedSeconds()});
  }

  const int R2 = std::max(1, config_.cleaning_reducers);
  const int R3 = std::max(1, config_.markdup_reducers);
  const int C = static_cast<int>(reference_->chromosomes.size());
  Dfs* dfs = dfs_;

  // Per-partition readiness edges between rounds. A downstream gated
  // split is admitted the moment its upstream partition file is on DFS.
  std::vector<std::shared_ptr<ReadySignal>> ev_cleaned;
  std::vector<std::shared_ptr<ReadySignal>> ev_dedup;
  std::vector<std::shared_ptr<ReadySignal>> ev_sorted;
  for (int r = 0; r < R2; ++r) {
    ev_cleaned.push_back(std::make_shared<ReadySignal>());
  }
  for (int r = 0; r < R3; ++r) {
    ev_dedup.push_back(std::make_shared<ReadySignal>());
  }
  for (int c = 0; c < C + 1; ++c) {
    ev_sorted.push_back(std::make_shared<ReadySignal>());
  }

  // Partition-output callbacks run on executor workers and cannot
  // return a status; the first write failure is parked here and
  // re-checked after every job completes.
  auto cb_mu = std::make_shared<std::mutex>();
  auto cb_error = std::make_shared<Status>(Status::OK());
  auto record_cb = [cb_mu, cb_error](const Status& s) {
    if (s.ok()) return;
    std::lock_guard<std::mutex> lock(*cb_mu);
    if (cb_error->ok()) *cb_error = s;
  };
  auto first_cb_error = [cb_mu, cb_error]() -> Status {
    std::lock_guard<std::mutex> lock(*cb_mu);
    return *cb_error;
  };

  std::optional<MapReduceJob::Handle> h2, h3a, h3, h4, h5;
  // Error path: release every gate (so gated splits are admitted and
  // their jobs can finish failing) and drain every outstanding handle —
  // running tasks capture locals of this frame, so returning before
  // they complete would be a use-after-free.
  auto fail = [&](Status error) -> Status {
    for (auto& e : ev_cleaned) e->Notify();
    for (auto& e : ev_dedup) e->Notify();
    for (auto& e : ev_sorted) e->Notify();
    for (auto* h : {&h2, &h3a, &h3, &h4, &h5}) {
      if (h->has_value()) {
        (void)(*h)->Wait();
        h->reset();
      }
    }
    return error;
  };

  // ---- Round 2 cleaning: reduce partitions stream to DFS as they
  // finish, each releasing the bloom pre-round's matching map split.
  double t2_start = wall.ElapsedSeconds();
  std::vector<InputSplit> splits2;
  if (streaming) {
    // Fused rounds 1+2: each map task pumps its FASTQ partition through
    // the bounded-queue node graph (align + clean) and emits cleaned
    // records straight into the qname shuffle. Batch slicing matches
    // AlignPairs' own boundaries, so the shuffled records — and every
    // downstream stage — are byte-identical to the barriered path's.
    std::vector<std::string> inputs = dfs_->List(input_dir_);
    if (inputs.empty()) {
      return Status::InvalidArgument("no input partitions");
    }
    const GenomeIndex* index = index_;
    PairedAlignerOptions opt = config_.aligner;
    const SamHeader* hdr = &header_;
    ReadGroup stream_rg = config_.read_group;
    std::shared_ptr<CancelToken> cancel = config_.cancel;
    for (const auto& path : inputs) {
      InputSplit s;
      s.stream = [dfs, path, index, opt, hdr, stream_rg, cancel,
                  executor](MapContext* ctx) -> Status {
        GESALL_ASSIGN_OR_RETURN(std::string text, dfs->Read(path));
        ctx->IncrementCounter("map_input_bytes",
                              static_cast<int64_t>(text.size()));
        std::vector<FastqRecord> reads;
        {
          CounterTimer timer(ctx, kTransformMicros);
          GESALL_ASSIGN_OR_RETURN(reads, ParseFastq(text));
        }
        text.clear();
        text.shrink_to_fit();
        AlignCleanStreamOptions sopts;
        sopts.executor = executor;
        sopts.cancel = cancel;
        sopts.clean = true;
        sopts.header = hdr;
        sopts.read_group = stream_rg;
        AlignCleanStreamStats sstats;
        GESALL_RETURN_NOT_OK(RunAlignCleanStream(
            *index, opt, std::move(reads), sopts,
            [ctx](RecordBatch* batch) {
              CounterTimer timer(ctx, kTransformMicros);
              for (const auto& r : batch->records) {
                ctx->EmitView(r.qname, EncodeBamRecord(r));
              }
              return Status::OK();
            },
            &sstats));
        EmitStreamCounters(ctx, sstats);
        return Status::OK();
      };
      splits2.push_back(std::move(s));
    }
  } else {
    for (const auto& path : ListBams(*dfs_, aligned_dir_)) {
      GESALL_ASSIGN_OR_RETURN(auto bam_splits, ComputeBamSplits(*dfs_, path));
      for (const auto& bs : bam_splits) {
        InputSplit s;
        s.load = [dfs, path, bs]() {
          return ReadBamSplitRecords(*dfs, path, bs);
        };
        s.preferred_node = bs.preferred_nodes.empty()
                               ? -1
                               : bs.preferred_nodes[0];
        splits2.push_back(std::move(s));
      }
    }
  }
  JobConfig cfg2 = MakeJobConfig(R2);
  cfg2.executor = executor;
  cfg2.throttle = throttle;
  if (config_.use_combiners) {
    cfg2.combiner_factory = [] {
      return std::make_unique<FixMateCombiner>();
    };
  }
  {
    SamHeader header_copy = header_;
    auto evs = ev_cleaned;
    std::string out_dir = cleaned_dir_;
    cfg2.on_partition_output = [dfs, header_copy, evs, record_cb, out_dir](
                                   int r,
                                   const std::vector<std::string>& values,
                                   const JobCounters&) {
      std::string bam;
      Status s = BuildBamPartition(header_copy, values, &bam);
      if (s.ok()) {
        LogicalPartitionPlacementPolicy policy;
        s = dfs->Write(PartPath(out_dir, r) + ".bam", bam, &policy);
      }
      record_cb(s);
      evs[static_cast<size_t>(r)]->Notify();
    };
  }
  MapReduceJob job2(cfg2);
  const SamHeader* header = &header_;
  ReadGroup rg = config_.read_group;
  MapperFactory map2;
  if (streaming) {
    map2 = []() -> std::unique_ptr<Mapper> {
      return std::make_unique<StreamedRoundMapper>();
    };
  } else {
    map2 = [header, rg]() -> std::unique_ptr<Mapper> {
      return std::make_unique<CleaningMapper>(header, rg);
    };
  }
  h2 = job2.Start(splits2, map2,
                  [] { return std::make_unique<FixMateReducer>(); });

  // ---- Round 3 bloom pre-round, overlapped with round 2: each map
  // split is gated on its cleaned partition.
  double t3a_start = wall.ElapsedSeconds();
  JobConfig cfg3a = MakeJobConfig(0);
  cfg3a.executor = executor;
  cfg3a.throttle = throttle;
  MapReduceJob job3a(cfg3a);
  if (config_.markdup_use_bloom) {
    std::vector<InputSplit> splits3a;
    for (int r = 0; r < R2; ++r) {
      std::string path = PartPath(cleaned_dir_, r) + ".bam";
      InputSplit s;
      s.load = [dfs, path]() { return dfs->Read(path); };
      s.ready = ev_cleaned[static_cast<size_t>(r)];
      splits3a.push_back(std::move(s));
    }
    size_t expected = config_.bloom_expected_items;
    double fpr = config_.bloom_fpr;
    h3a = job3a.StartMapOnly(splits3a, [expected, fpr] {
      return std::make_unique<BloomMapper>(expected, fpr);
    });
  }

  // ---- Await round 2.
  {
    Result<JobResult> out = h2->Wait();
    h2.reset();
    if (!out.ok()) return fail(out.status());
    JobResult result = out.MoveValueUnsafe();
    const std::string round2_name =
        streaming ? "round1_2_streamed" : "round2_cleaning";
    stats_.push_back({round2_name, wall.ElapsedSeconds() - t2_start,
                      std::move(result.counters), std::move(result.tasks)});
    execution_.rounds.push_back(
        {round2_name, t2_start, wall.ElapsedSeconds()});
  }
  {
    Status s = first_cb_error();
    if (!s.ok()) return fail(s);
  }
  {
    Status s = MaybeTick();
    if (!s.ok()) return fail(s);
  }

  // ---- Await the bloom pre-round and merge the per-mapper filters.
  std::unique_ptr<BloomFilter> bloom;
  if (h3a.has_value()) {
    Result<JobResult> out = h3a->Wait();
    h3a.reset();
    if (!out.ok()) return fail(out.status());
    JobResult result = out.MoveValueUnsafe();
    BloomFilter merged(config_.bloom_expected_items, config_.bloom_fpr);
    for (const auto& part : result.reducer_outputs) {
      for (const auto& v : part) {
        Result<BloomFilter> f = BloomFilter::Deserialize(v);
        if (!f.ok()) return fail(f.status());
        Status s = merged.Union(f.ValueOrDie());
        if (!s.ok()) return fail(s);
      }
    }
    bloom = std::make_unique<BloomFilter>(std::move(merged));
    stats_.push_back({"round3_bloom_preround",
                      wall.ElapsedSeconds() - t3a_start,
                      std::move(result.counters), std::move(result.tasks)});
    execution_.rounds.push_back(
        {"round3_bloom_preround", t3a_start, wall.ElapsedSeconds()});
  }

  // ---- Round 3 MarkDuplicates: reduce partitions release round 4's
  // matching sort split as they land on DFS.
  double t3_start = wall.ElapsedSeconds();
  std::vector<InputSplit> splits3;
  for (const auto& path : ListBams(*dfs_, cleaned_dir_)) {
    InputSplit s;
    s.load = [dfs, path]() { return dfs->Read(path); };
    s.preferred_node = LogicalPartitionPlacementPolicy::PrimaryNodeFor(
        path, dfs_->num_data_nodes());
    splits3.push_back(std::move(s));
  }
  JobConfig cfg3 = MakeJobConfig(R3);
  cfg3.executor = executor;
  cfg3.throttle = throttle;
  if (config_.use_combiners) {
    cfg3.combiner_factory = [] {
      return std::make_unique<MarkDupCombiner>();
    };
  }
  {
    SamHeader header_copy = header_;
    auto evs = ev_dedup;
    std::string out_dir = dedup_dir_;
    cfg3.on_partition_output = [dfs, header_copy, evs, record_cb, out_dir](
                                   int r,
                                   const std::vector<std::string>& values,
                                   const JobCounters&) {
      std::string bam;
      Status s = BuildBamPartition(header_copy, values, &bam);
      if (s.ok()) {
        LogicalPartitionPlacementPolicy policy;
        s = dfs->Write(PartPath(out_dir, r) + ".bam", bam, &policy);
      }
      record_cb(s);
      evs[static_cast<size_t>(r)]->Notify();
    };
  }
  MapReduceJob job3(cfg3);
  const BloomFilter* bloom_ptr = bloom.get();
  h3 = job3.Start(
      splits3,
      [bloom_ptr] { return std::make_unique<MarkDupMapper>(bloom_ptr); },
      [] { return std::make_unique<MarkDupReducer>(); });

  // ---- Round 4 sort. Without recalibration it overlaps round 3: each
  // map split is gated on its dedup partition. The recalibration rounds
  // are driver-merged (the covariate table is global), so with them
  // enabled rounds 3.5 run barriered and round 4 starts ungated after.
  SamHeader sorted_header = header_;
  sorted_header.sort_order = "coordinate";
  std::vector<std::string> boundaries;
  for (int c = 1; c < C; ++c) {
    boundaries.push_back(EncodeCoordinateBoundary(c, 0));
  }
  boundaries.push_back("\x7f");  // unmapped records partition
  RangePartitioner partitioner(boundaries);
  JobConfig cfg4 = MakeJobConfig(C + 1);
  cfg4.executor = executor;
  cfg4.throttle = throttle;
  {
    auto evs = ev_sorted;
    std::string out_dir = sorted_dir_;
    cfg4.on_partition_output = [dfs, sorted_header, evs, record_cb,
                                out_dir](
                                   int c,
                                   const std::vector<std::string>& values,
                                   const JobCounters&) {
      std::string bam;
      Status s = BuildBamPartition(sorted_header, values, &bam);
      if (s.ok()) {
        LogicalPartitionPlacementPolicy policy;
        s = dfs->Write(PartPath(out_dir, c) + ".bam", bam, &policy);
        if (s.ok()) {
          // "Sorting and building the BAM file index in the reducer"
          // (§4.1): the linear index sidecar must be on DFS before the
          // chromosome's HC split is released.
          Result<LinearBamIndex> index = LinearBamIndex::Build(bam);
          s = index.ok()
                  ? dfs->Write(PartPath(out_dir, c) + ".bai",
                               index.ValueOrDie().Serialize(), &policy)
                  : index.status();
        }
      }
      record_cb(s);
      evs[static_cast<size_t>(c)]->Notify();
    };
  }
  MapReduceJob job4(cfg4);
  double t4_start = 0;
  auto start_round4 = [&](const std::string& input_dir, bool gated) {
    t4_start = wall.ElapsedSeconds();
    std::vector<InputSplit> splits4;
    if (gated) {
      for (int r = 0; r < R3; ++r) {
        std::string path = PartPath(input_dir, r) + ".bam";
        InputSplit s;
        s.load = [dfs, path]() { return dfs->Read(path); };
        s.ready = ev_dedup[static_cast<size_t>(r)];
        splits4.push_back(std::move(s));
      }
    } else {
      for (const auto& path : ListBams(*dfs_, input_dir)) {
        InputSplit s;
        s.load = [dfs, path]() { return dfs->Read(path); };
        splits4.push_back(std::move(s));
      }
    }
    h4 = job4.Start(
        splits4, [] { return std::make_unique<SortMapper>(); },
        [] { return std::make_unique<IdentityReducer>(); }, &partitioner);
  };

  // ---- Round 5 variant calling, overlapped with round 4: the HC split
  // (or all segment splits) of chromosome c waits only for round 4 to
  // sort and index that chromosome's partition.
  double t5_start = 0;
  JobConfig cfg5 = MakeJobConfig(0);
  cfg5.executor = executor;
  cfg5.throttle = throttle;
  MapReduceJob job5(cfg5);
  auto start_round5 = [&] {
    t5_start = wall.ElapsedSeconds();
    std::vector<InputSplit> splits5;
    for (int c = 0; c < C; ++c) {
      std::string path = PartPath(sorted_dir_, c) + ".bam";
      int64_t chrom_len =
          static_cast<int64_t>(reference_->chromosomes[c].sequence.size());
      if (config_.hc_partitioning ==
          PipelineConfig::HcPartitioning::kChromosome) {
        InputSplit s;
        s.load = [dfs, path, c, chrom_len]() -> Result<std::string> {
          GESALL_ASSIGN_OR_RETURN(std::string bam, dfs->Read(path));
          return EncodeHcEnvelope(c, 0, chrom_len, 0, chrom_len,
                                  std::move(bam));
        };
        s.ready = ev_sorted[static_cast<size_t>(c)];
        splits5.push_back(std::move(s));
      } else {
        const int S = std::max(1, config_.hc_segments_per_chromosome);
        const int64_t overlap =
            config_.hc.max_window + config_.hc.window_pad;
        for (int seg = 0; seg < S; ++seg) {
          int64_t emit_start = chrom_len * seg / S;
          int64_t emit_end = chrom_len * (seg + 1) / S;
          int64_t start = std::max<int64_t>(0, emit_start - overlap);
          int64_t end = std::min(chrom_len, emit_end + overlap);
          InputSplit s;
          std::string index_path = PartPath(sorted_dir_, c) + ".bai";
          SamHeader split_header = header_;
          s.load = [dfs, path, index_path, split_header, c, start, end,
                    emit_start, emit_end]() -> Result<std::string> {
            GESALL_ASSIGN_OR_RETURN(std::string bam, dfs->Read(path));
            if (dfs->Exists(index_path)) {
              GESALL_ASSIGN_OR_RETURN(std::string raw,
                                      dfs->Read(index_path));
              GESALL_ASSIGN_OR_RETURN(LinearBamIndex index,
                                      LinearBamIndex::Deserialize(raw));
              GESALL_ASSIGN_OR_RETURN(
                  std::vector<SamRecord> region,
                  ReadBamRegion(bam, index, start, end));
              GESALL_ASSIGN_OR_RETURN(std::string subset,
                                      WriteBam(split_header, region));
              return EncodeHcEnvelope(c, start, end, emit_start, emit_end,
                                      std::move(subset));
            }
            return EncodeHcEnvelope(c, start, end, emit_start, emit_end,
                                    std::move(bam));
          };
          s.ready = ev_sorted[static_cast<size_t>(c)];
          splits5.push_back(std::move(s));
        }
      }
    }
    const ReferenceGenome* reference = reference_;
    MapperFactory factory;
    if (config_.variant_caller ==
        PipelineConfig::VariantCaller::kUnifiedGenotyper) {
      GenotyperOptions ug = config_.ug;
      factory = [reference, ug] {
        return std::make_unique<UnifiedGenotyperMapper>(reference, ug);
      };
    } else {
      HaplotypeCallerOptions hc = config_.hc;
      factory = [reference, hc] {
        return std::make_unique<HaplotypeCallerMapper>(reference, hc);
      };
    }
    h5 = job5.StartMapOnly(splits5, factory);
  };

  if (!config_.run_recalibration) {
    start_round4(dedup_dir_, /*gated=*/true);
    start_round5();
  }

  // ---- Await round 3.
  {
    Result<JobResult> out = h3->Wait();
    h3.reset();
    if (!out.ok()) return fail(out.status());
    JobResult result = out.MoveValueUnsafe();
    stats_.push_back({config_.markdup_use_bloom ? "round3_markdup_opt"
                                                : "round3_markdup_reg",
                      wall.ElapsedSeconds() - t3_start,
                      std::move(result.counters), std::move(result.tasks)});
    execution_.rounds.push_back({stats_.back().name, t3_start,
                                 wall.ElapsedSeconds()});
  }
  {
    Status s = first_cb_error();
    if (!s.ok()) return fail(s);
  }
  {
    Status s = MaybeTick();
    if (!s.ok()) return fail(s);
  }

  // ---- Optional recalibration (barriered: the merged covariate table
  // is a global barrier by construction), then the gated tail.
  if (config_.run_recalibration) {
    double recal_start = wall.ElapsedSeconds();
    size_t before_recal = stats_.size();
    Status s = RunRecalibrationRounds();
    if (!s.ok()) return fail(s);
    double at = recal_start;
    for (size_t i = before_recal; i < stats_.size(); ++i) {
      execution_.rounds.push_back(
          {stats_[i].name, at, at + stats_[i].wall_seconds});
      at += stats_[i].wall_seconds;
    }
    std::string input_dir =
        ListBams(*dfs_, recal_dir_).empty() ? dedup_dir_ : recal_dir_;
    start_round4(input_dir, /*gated=*/false);
    start_round5();
  }

  // ---- Await round 4.
  {
    Result<JobResult> out = h4->Wait();
    h4.reset();
    if (!out.ok()) return fail(out.status());
    JobResult result = out.MoveValueUnsafe();
    stats_.push_back({"round4_sort", wall.ElapsedSeconds() - t4_start,
                      std::move(result.counters), std::move(result.tasks)});
    execution_.rounds.push_back(
        {"round4_sort", t4_start, wall.ElapsedSeconds()});
  }
  {
    Status s = first_cb_error();
    if (!s.ok()) return fail(s);
  }
  {
    Status s = MaybeTick();
    if (!s.ok()) return fail(s);
  }

  // ---- Await round 5 and decode the calls.
  std::vector<VariantRecord> variants;
  {
    Result<JobResult> out = h5->Wait();
    h5.reset();
    if (!out.ok()) return fail(out.status());
    JobResult result = out.MoveValueUnsafe();
    for (const auto& part : result.reducer_outputs) {
      for (const auto& v : part) {
        size_t offset = 0;
        Result<VariantRecord> rec = DecodeVariantBinary(v, &offset);
        if (!rec.ok()) return fail(rec.status());
        variants.push_back(rec.MoveValueUnsafe());
      }
    }
    std::sort(variants.begin(), variants.end(), VariantLess);
    stats_.push_back(
        {config_.variant_caller ==
                 PipelineConfig::VariantCaller::kUnifiedGenotyper
             ? "round5_unified_genotyper"
             : "round5_haplotype_caller",
         wall.ElapsedSeconds() - t5_start, std::move(result.counters),
         std::move(result.tasks)});
    execution_.rounds.push_back({stats_.back().name, t5_start,
                                 wall.ElapsedSeconds()});
  }
  {
    Status s = first_cb_error();
    if (!s.ok()) return fail(s);
  }
  GESALL_RETURN_NOT_OK(MaybeTick());
  return variants;
}

Status GesallPipeline::WritePartitions(
    const std::string& stage, const std::vector<std::string>& bam_files) {
  LogicalPartitionPlacementPolicy policy;
  for (size_t i = 0; i < bam_files.size(); ++i) {
    GESALL_RETURN_NOT_OK(dfs_->Write(
        PartPath(stage, static_cast<int>(i)) + ".bam", bam_files[i],
        &policy));
  }
  return Status::OK();
}

Result<std::vector<SamRecord>> GesallPipeline::ReadStageRecords(
    const std::string& stage) const {
  std::string dir = StageDir(config_.dfs_root, stage.c_str());
  std::vector<std::string> paths = ListBams(*dfs_, dir);
  if (paths.empty()) return Status::NotFound("no partitions in " + dir);
  std::sort(paths.begin(), paths.end());
  std::vector<SamRecord> all;
  for (const auto& path : paths) {
    GESALL_ASSIGN_OR_RETURN(std::string bam, dfs_->Read(path));
    GESALL_ASSIGN_OR_RETURN(auto dataset, ReadBam(bam));
    all.insert(all.end(), dataset.second.begin(), dataset.second.end());
  }
  return all;
}

}  // namespace gesall

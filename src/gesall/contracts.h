// Partitioning contracts (paper Appendix C, research question 1:
// "automatic safe partitioning of genomic analysis programs").
//
// Every wrapped analysis program declares the data property its input
// must satisfy to run safely on partitions (the GDPT schemes of §3.2),
// and the property its output provides. A pipeline is a sequence of
// steps; the validator walks it and proves either that each step's
// requirement is met by the running data property, or reports the exact
// step where a shuffle (repartitioning round) is required — mechanizing
// the manual analysis of Appendix A.2 ("as soon as the partitioning
// scheme of the next analysis program differs from that of the previous
// program, we start a new round of MapReduce").

#ifndef GESALL_GESALL_CONTRACTS_H_
#define GESALL_GESALL_CONTRACTS_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace gesall {

/// \brief Data-layout properties over partitioned genomic datasets.
enum class DataProperty {
  kNone,                   // arbitrary partitioning
  kGroupedByReadName,      // both mates of a pair co-partitioned, adjacent
  kCompoundDuplicateKeys,  // grouped by MarkDuplicates pair/end keys
  kSortedByCoordinate,     // coordinate-sorted within partitions
  kRangeByChromosome,      // partitioned by chromosome, sorted inside
  kWholeGenome,            // the program must see ALL data (unsafe to
                           // partition at any granularity)
};

const char* DataPropertyName(DataProperty property);

/// \brief Whether data holding `provided` also satisfies `required`.
bool Satisfies(DataProperty provided, DataProperty required);

/// \brief One wrapped program's declared contract.
struct ProgramContract {
  std::string name;
  DataProperty requires_property = DataProperty::kNone;
  DataProperty provides_property = DataProperty::kNone;
  /// True if the program destroys input ordering guarantees beyond what
  /// it provides (e.g. emits records in shuffled key order).
  bool destroys_input_property = false;
  /// True if the program's parallel execution is itself a shuffle round
  /// (e.g. SortSam repartitions by coordinate range).
  bool is_repartitioner = false;
};

/// Contracts of every program in this repository's pipeline.
ProgramContract BwaContract();
ProgramContract SamToBamContract();
ProgramContract AddReplaceReadGroupsContract();
ProgramContract CleanSamContract();
ProgramContract FixMateInformationContract();
ProgramContract MarkDuplicatesContract();
ProgramContract SortSamContract();
ProgramContract BaseRecalibratorContract();
ProgramContract PrintReadsContract();
ProgramContract UnifiedGenotyperContract();
ProgramContract HaplotypeCallerContract();

/// \brief Validation outcome for one pipeline.
struct PipelinePlanCheck {
  /// Steps where the running property fails the requirement, i.e. where a
  /// shuffle round must be inserted.
  std::vector<size_t> shuffle_before_step;
  /// Human-readable per-step trace.
  std::vector<std::string> trace;
  /// Number of MapReduce rounds the pipeline needs (1 + shuffles).
  int required_rounds = 1;
};

/// \brief Walks a step sequence starting from `initial` data property and
/// computes where shuffles are required. Returns InvalidArgument if any
/// step requires kWholeGenome (no safe partitioning exists).
Result<PipelinePlanCheck> ValidatePipeline(
    const std::vector<ProgramContract>& steps,
    DataProperty initial = DataProperty::kNone);

/// \brief The paper's secondary-analysis pipeline (Table 2 order).
std::vector<ProgramContract> StandardPipelineContracts(
    bool include_recalibration = false);

}  // namespace gesall

#endif  // GESALL_GESALL_CONTRACTS_H_

// Explicit DAG of pipeline work with executor-driven execution and
// critical-path accounting.
//
// Two uses, one engine:
//  - The serial reference pipeline runs its wrapped-program chain as a
//    RoundDag on a single-worker executor (same code path as the
//    distributed engine, minus parallelism).
//  - The pipelined five-round run executes rounds as overlapped MR jobs
//    whose per-partition readiness edges live in the jobs themselves
//    (InputSplit::ready); the orchestrator mirrors the round-level
//    structure into a RoundDag via RecordSpan so the report can show
//    where the wall-clock went and which dependency chain bounds it.
//
// The critical path is the duration-weighted longest dependency chain —
// the lower bound on wall time no amount of extra overlap can beat.

#ifndef GESALL_GESALL_ROUND_DAG_H_
#define GESALL_GESALL_ROUND_DAG_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/cancel.h"
#include "util/executor.h"
#include "util/status.h"

namespace gesall {

/// \brief One node of a RoundDag: a named unit of work with a wall span.
struct RoundDagNode {
  std::string name;
  /// Work to run when every dependency finished. Null marks a node that
  /// is executed externally and only bookkept here (see RecordSpan).
  std::function<Status()> fn;
  std::vector<int> deps;
  std::vector<int> succs;
  /// Wall span, in seconds relative to the run start.
  double start_seconds = 0;
  double end_seconds = 0;
  bool ran = false;
  Status status;

  double duration_seconds() const { return end_seconds - start_seconds; }
};

/// \brief Dependency-tracked task graph executed on an Executor.
class RoundDag {
 public:
  /// Adds a node; returns its id. `fn` may be null for bookkeeping-only
  /// nodes.
  int AddTask(std::string name, std::function<Status()> fn = nullptr);

  /// Declares that `before` must finish before `after` starts.
  void AddDep(int before, int after);

  /// Runs every node with fn on the executor in dependency order,
  /// recording spans. The first error is returned; nodes not yet
  /// started when it surfaces are skipped (ran stays false). Detects
  /// cycles up front. Single-shot.
  ///
  /// `cancel` (optional) is polled before each node runs: once the
  /// token flips, no further node bodies start (already-running bodies
  /// finish — cancellation is cooperative), remaining nodes keep
  /// ran == false, and Run returns Status::Cancelled carrying the
  /// token's cause unless a node failed first.
  Status Run(Executor* executor,
             std::shared_ptr<CancelToken> cancel = nullptr);

  /// Records the wall span of an externally-executed node.
  void RecordSpan(int node, double start_seconds, double end_seconds);

  const std::vector<RoundDagNode>& nodes() const { return nodes_; }

  /// Node names along the duration-weighted longest dependency chain,
  /// in execution order (empty for an empty dag).
  std::vector<std::string> CriticalPath() const;

  /// Total duration of that chain, in seconds.
  double CriticalPathSeconds() const;

 private:
  std::vector<RoundDagNode> nodes_;
};

}  // namespace gesall

#endif  // GESALL_GESALL_ROUND_DAG_H_

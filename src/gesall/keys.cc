#include "gesall/keys.h"

#include "formats/bam.h"
#include "util/rng.h"

namespace gesall {

void AppendOrderedU64(std::string* key, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    key->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

namespace {
// Biases signed values into unsigned order-preserving space.
uint64_t Ordered(int64_t v) {
  return static_cast<uint64_t>(v) + (1ULL << 63);
}
}  // namespace

std::string EncodeCoordinateKey(const SamRecord& rec) {
  std::string key;
  key.reserve(25);
  // Unmapped records sort last (samtools convention).
  key.push_back(rec.IsUnmapped() ? '\x7f' : '\x01');
  if (rec.IsUnmapped()) {
    AppendOrderedU64(&key, Fnv1a64(rec.qname));
    return key;
  }
  AppendOrderedU64(&key, Ordered(rec.ref_id));
  AppendOrderedU64(&key, Ordered(rec.pos));
  AppendOrderedU64(&key, Fnv1a64(rec.qname));
  return key;
}

std::string EncodeCoordinateBoundary(int32_t ref_id, int64_t pos) {
  std::string key;
  key.push_back('\x01');
  AppendOrderedU64(&key, Ordered(ref_id));
  AppendOrderedU64(&key, Ordered(pos));
  return key;
}

namespace {
void AppendEnd(std::string* key, const ReadEndKey& k) {
  AppendOrderedU64(key, Ordered(k.ref_id));
  AppendOrderedU64(key, Ordered(k.unclipped_5p));
  key->push_back(k.reverse ? 'R' : 'F');
}
}  // namespace

std::string EncodePairKey(const ReadEndKey& k1, const ReadEndKey& k2) {
  std::string key;
  key.push_back('P');
  AppendEnd(&key, k1);
  AppendEnd(&key, k2);
  return key;
}

std::string EncodeEndKey(const ReadEndKey& k) {
  std::string key;
  key.push_back('E');
  AppendEnd(&key, k);
  return key;
}

std::string EncodePassthroughKey(const std::string& qname) {
  return "U" + qname;
}

std::string EncodeMarkDupValue(MarkDupRole role, const SamRecord& first,
                               const SamRecord* second) {
  std::string out;
  out.push_back(static_cast<char>(role));
  out.push_back(second != nullptr ? 2 : 1);
  out += EncodeBamRecord(first);
  if (second != nullptr) out += EncodeBamRecord(*second);
  return out;
}

Result<MarkDupValue> DecodeMarkDupValue(std::string_view value) {
  if (value.size() < 2) return Status::Corruption("short markdup value");
  MarkDupValue out;
  out.role = static_cast<MarkDupRole>(value[0]);
  int count = value[1];
  size_t offset = 2;
  GESALL_ASSIGN_OR_RETURN(out.first, DecodeBamRecord(value, &offset));
  if (count == 2) {
    out.has_second = true;
    GESALL_ASSIGN_OR_RETURN(out.second, DecodeBamRecord(value, &offset));
  }
  return out;
}

}  // namespace gesall

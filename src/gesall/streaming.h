// Hadoop Streaming analog (paper §3.3, Fig. 8): native "C programs" are
// modeled as line-oriented processes connected by fixed-capacity pipe
// buffers — TextInputWriter feeds the first program's stdin, programs
// write stdout lines into the next pipe, and BytesOutputReader collects
// the terminal byte stream. Pipe statistics (bytes moved, buffer fills)
// expose the data-transformation overhead of running external programs
// inside map tasks.

#ifndef GESALL_GESALL_STREAMING_H_
#define GESALL_GESALL_STREAMING_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "align/aligner.h"
#include "util/status.h"

namespace gesall {

/// \brief A fixed-capacity pipe between streaming stages. Writes are
/// buffered; each time the buffer fills it "flushes" to the consumer.
/// Counts bytes and flushes for overhead accounting.
class PipeBuffer {
 public:
  /// Hadoop Streaming's default pipe buffer is 64 KB (Fig. 8).
  explicit PipeBuffer(size_t capacity = 64 * 1024) : capacity_(capacity) {}

  /// Sets the consumer invoked on every flush.
  void SetConsumer(std::function<Status(std::string_view)> consumer) {
    consumer_ = std::move(consumer);
  }

  Status Write(std::string_view data);
  /// Flushes any buffered bytes to the consumer.
  Status Flush();

  int64_t bytes_transferred() const { return bytes_transferred_; }
  int64_t flush_count() const { return flush_count_; }

 private:
  size_t capacity_;
  std::string buffer_;
  std::function<Status(std::string_view)> consumer_;
  int64_t bytes_transferred_ = 0;
  int64_t flush_count_ = 0;
};

/// \brief A line-oriented external program: consumes stdin lines, emits
/// stdout lines. Emitted lines must not contain '\n'.
class LineProgram {
 public:
  using Emit = std::function<Status(std::string_view line)>;

  virtual ~LineProgram() = default;
  /// One input line (without trailing newline).
  virtual Status ConsumeLine(std::string_view line, const Emit& emit) = 0;
  /// End of stdin; flush any batched state.
  virtual Status Finish(const Emit& emit) {
    (void)emit;
    return Status::OK();
  }
};

/// \brief Statistics of one streaming run.
struct StreamingStats {
  int64_t input_bytes = 0;
  int64_t output_bytes = 0;
  int64_t pipe_flushes = 0;
};

/// \brief Runs `programs` as a pipeline over `input` text: input lines ->
/// program 1 -> pipe -> program 2 -> ... -> output text. Returns the
/// final stage's output.
Result<std::string> RunStreamingChain(
    std::string_view input, const std::vector<LineProgram*>& programs,
    StreamingStats* stats = nullptr, size_t pipe_capacity = 64 * 1024);

/// \brief `bwa mem` as a streaming program: consumes interleaved 4-line
/// FASTQ records (name/seq/+/qual, alternating mates), aligns pairs in
/// batches (preserving PairedEndAligner's batch statistics), and emits
/// SAM text lines (header first).
class BwaStreamProgram : public LineProgram {
 public:
  BwaStreamProgram(const GenomeIndex& index, PairedAlignerOptions options);

  Status ConsumeLine(std::string_view line, const Emit& emit) override;
  Status Finish(const Emit& emit) override;

  /// Extension-kernel counters accumulated over every aligned batch.
  const SwKernelStats& kernel_stats() const { return scratch_.read.stats; }

 private:
  Status FlushBatch(const Emit& emit);

  PairedEndAligner aligner_;
  PairedAlignScratch scratch_;  // reused across batches (single-threaded)
  SamHeader header_;
  bool header_emitted_ = false;
  size_t batch_pairs_;
  std::vector<std::string> pending_lines_;  // accumulating FASTQ lines
  std::vector<FastqRecord> pending_reads_;
};

/// \brief SamToBam as the terminal stage: parses SAM text into BAM bytes.
Result<std::string> SamTextToBam(std::string_view sam_text);

}  // namespace gesall

#endif  // GESALL_GESALL_STREAMING_H_

// Serial reference pipeline, folded onto the execution engine: the
// wrapped-program chain (Table 2) runs as a linear RoundDag on a
// single-worker executor — the same scheduling code path as the
// distributed engine, minus parallelism. Node spans double as the
// per-program step_seconds the diagnosis report consumes.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/genotyper.h"
#include "analysis/mark_duplicates.h"
#include "analysis/recalibration.h"
#include "analysis/steps.h"
#include "gesall/pipeline.h"
#include "gesall/pipeline_node.h"
#include "gesall/round_dag.h"
#include "util/executor.h"

namespace gesall {

namespace {

// Groups records by read name (pairs adjacent) without changing the
// relative order of pairs — the precondition of FixMateInformation and
// MarkDuplicates. Alignment output is already pair-adjacent; this guards
// hybrid inputs assembled from partition files.
void GroupByName(std::vector<SamRecord>* records) {
  for (size_t i = 0; i + 1 < records->size(); i += 2) {
    if ((*records)[i].qname != (*records)[i + 1].qname) {
      std::stable_sort(records->begin(), records->end(),
                       [](const SamRecord& a, const SamRecord& b) {
                         return a.qname < b.qname;
                       });
      return;
    }
  }
}

// Mutable state threaded through the chain. The header is a local copy:
// the sort updates its sort_order in-place, but callers' headers (and
// SerialStageOutputs::header) keep the pre-sort value, matching the
// historical by-value plumbing.
struct ChainState {
  const ReferenceGenome* reference = nullptr;
  const SerialPipelineConfig* config = nullptr;
  // The chain's own single-worker executor, set by RunChain before the
  // dag runs: nodes that pump a NodeGraph (the alignment head) run it
  // on the same worker their dag task occupies.
  Executor* chain_executor = nullptr;
  SamHeader header;
  std::vector<SamRecord> records;
  std::vector<VariantRecord> variants;
  RecalibrationTable recal_table;
};

// Appends the cleaning -> markdup -> sort [-> recal] -> HC chain to
// `dag` as a linear dependency spine. Optional snapshot pointers copy a
// stage's output the moment it completes (the R_i of the diagnosis
// formalism); from_deduped skips straight to the sort.
void AppendTailChain(RoundDag* dag, ChainState* state, int head,
                     bool from_deduped,
                     std::vector<SamRecord>* cleaned_out,
                     std::vector<SamRecord>* deduped_out,
                     SamHeader* header_out,
                     std::vector<SamRecord>* sorted_out) {
  auto link = [dag, &head](int node) {
    if (head >= 0) dag->AddDep(head, node);
    head = node;
  };
  if (!from_deduped) {
    link(dag->AddTask("add_replace_groups", [state] {
      return AddReplaceReadGroups(state->config->read_group, &state->header,
                                  &state->records);
    }));
    link(dag->AddTask("clean_sam", [state] {
      CleanSam(state->header, &state->records);
      return Status::OK();
    }));
    link(dag->AddTask("fix_mate_info", [state, cleaned_out, header_out] {
      GESALL_RETURN_NOT_OK(FixMateInformation(&state->records));
      if (cleaned_out != nullptr) *cleaned_out = state->records;
      if (header_out != nullptr) *header_out = state->header;
      return Status::OK();
    }));
    link(dag->AddTask("mark_duplicates", [state, deduped_out] {
      GESALL_RETURN_NOT_OK(MarkDuplicates(&state->records).status());
      if (deduped_out != nullptr) *deduped_out = state->records;
      return Status::OK();
    }));
  }
  link(dag->AddTask("sort_sam", [state] {
    SortSamByCoordinate(&state->header, &state->records);
    return Status::OK();
  }));
  if (state->config->run_recalibration) {
    link(dag->AddTask("base_recalibrator", [state] {
      state->recal_table =
          BaseRecalibrator(*state->reference, state->records);
      return Status::OK();
    }));
    link(dag->AddTask("print_reads", [state] {
      PrintReads(state->recal_table, &state->records);
      return Status::OK();
    }));
  }
  link(dag->AddTask("haplotype_caller", [state, sorted_out] {
    if (sorted_out != nullptr) *sorted_out = state->records;
    HaplotypeCaller caller(*state->reference, state->config->hc);
    state->variants = caller.CallAll(state->records);
    return Status::OK();
  }));
}

// Runs the dag on a private single-worker executor and folds node spans
// into per-program timings (the step_seconds contract).
Status RunChain(RoundDag* dag, ChainState* state,
                std::map<std::string, double>* timings) {
  Executor serial_executor(1);
  state->chain_executor = &serial_executor;
  GESALL_RETURN_NOT_OK(dag->Run(&serial_executor));
  if (timings != nullptr) {
    for (const auto& node : dag->nodes()) {
      if (node.ran) (*timings)[node.name] += node.duration_seconds();
    }
  }
  return Status::OK();
}

}  // namespace

Result<SerialStageOutputs> RunSerialPipeline(
    const ReferenceGenome& reference, const GenomeIndex& index,
    const std::vector<FastqRecord>& interleaved,
    const SerialPipelineConfig& config) {
  SerialStageOutputs out;
  ChainState state;
  state.reference = &reference;
  state.config = &config;

  RoundDag dag;
  int head = dag.AddTask("bwa", [&] {
    // Alignment runs through the same streaming node graph as the fused
    // distributed round (pipeline_node.h), pumped on the chain's single
    // worker — outputs are bit-identical to a monolithic AlignPairs,
    // and every serial run doubles as a liveness check of the graph's
    // park/wake protocol with no second thread to help.
    state.header = PairedEndAligner(index, config.aligner).MakeHeader();
    AlignCleanStreamOptions sopts;
    sopts.executor = state.chain_executor;
    sopts.clean = false;
    AlignCleanStreamStats sstats;
    GESALL_RETURN_NOT_OK(RunAlignCleanStream(
        index, config.aligner, interleaved, sopts,
        [&state](RecordBatch* b) {
          for (auto& r : b->records) state.records.push_back(std::move(r));
          return Status::OK();
        },
        &sstats));
    out.aligned = state.records;
    return Status::OK();
  });
  AppendTailChain(&dag, &state, head, /*from_deduped=*/false, &out.cleaned,
                  &out.deduped, &out.header, &out.sorted);
  GESALL_RETURN_NOT_OK(RunChain(&dag, &state, &out.step_seconds));
  out.variants = std::move(state.variants);
  return out;
}

Result<std::vector<VariantRecord>> SerialTailFromAligned(
    const ReferenceGenome& reference, const SamHeader& header,
    std::vector<SamRecord> aligned, const SerialPipelineConfig& config) {
  GroupByName(&aligned);
  ChainState state;
  state.reference = &reference;
  state.config = &config;
  state.header = header;
  state.records = std::move(aligned);
  RoundDag dag;
  AppendTailChain(&dag, &state, /*head=*/-1, /*from_deduped=*/false,
                  nullptr, nullptr, nullptr, nullptr);
  GESALL_RETURN_NOT_OK(RunChain(&dag, &state, nullptr));
  return std::move(state.variants);
}

Result<std::vector<VariantRecord>> SerialTailFromDeduped(
    const ReferenceGenome& reference, const SamHeader& header,
    std::vector<SamRecord> deduped, const SerialPipelineConfig& config) {
  ChainState state;
  state.reference = &reference;
  state.config = &config;
  state.header = header;
  state.records = std::move(deduped);
  RoundDag dag;
  AppendTailChain(&dag, &state, /*head=*/-1, /*from_deduped=*/true, nullptr,
                  nullptr, nullptr, nullptr);
  GESALL_RETURN_NOT_OK(RunChain(&dag, &state, nullptr));
  return std::move(state.variants);
}

}  // namespace gesall

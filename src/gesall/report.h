// Pipeline error-tracking report (paper Appendix C, research question 2:
// "a rigorous framework for keeping track of errors in a deep genomic
// pipeline"). Renders the error-diagnosis toolkit's stage-by-stage
// comparison of a parallel pipeline against the serial reference into a
// single markdown document a bioinformatician can review before
// accepting the parallel pipeline into production.

#ifndef GESALL_GESALL_REPORT_H_
#define GESALL_GESALL_REPORT_H_

#include <string>
#include <vector>

#include "gesall/diagnosis.h"
#include "gesall/pipeline.h"

namespace gesall {

/// \brief Inputs of a full serial-vs-parallel comparison.
struct DiagnosisReportInputs {
  const ReferenceGenome* reference = nullptr;
  const SerialStageOutputs* serial = nullptr;
  const std::vector<SamRecord>* parallel_aligned = nullptr;
  const std::vector<SamRecord>* parallel_deduped = nullptr;
  const std::vector<VariantRecord>* parallel_variants = nullptr;
  /// Optional planted-truth set for GiaB-style scoring.
  const std::vector<PlantedVariant>* truth = nullptr;
  /// Optional fault-tolerance telemetry of the parallel run (retries,
  /// speculation, DFS failover) — rendered as its own report section so
  /// a reviewer sees which recoveries the accepted output survived.
  const FaultToleranceSummary* fault_tolerance = nullptr;
  /// Optional integrity/node-failure telemetry (checksum detections,
  /// re-replication, heartbeat deaths, map re-executions) — rendered as
  /// its own section alongside the fault-tolerance one.
  const NodeFailureSummary* node_failures = nullptr;
  /// Optional execution-engine telemetry of the parallel run (executor
  /// task/steal/queue-wait counts, per-round wall spans, critical path
  /// of the round DAG) — rendered as its own section so a reviewer sees
  /// where the wall-clock went and what bounds further overlap.
  const ExecutionSummary* execution = nullptr;
  /// Optional disk-byte/compression telemetry (raw vs on-disk bytes on
  /// the shuffle and DFS paths, codec cpu time) — rendered as its own
  /// "Disk bytes" section, the Fig. 10 disk-utilization axes.
  const StorageSummary* storage = nullptr;
};

/// \brief Computed report: the structured verdicts plus markdown text.
struct DiagnosisReport {
  AlignmentDiscordance alignment;
  DuplicateDiscordance duplicates;
  VariantDiscordance variants;
  PrecisionSensitivity serial_truth_score;    // zero when truth absent
  PrecisionSensitivity parallel_truth_score;
  FaultToleranceSummary fault_tolerance;      // zero when not supplied
  NodeFailureSummary node_failures;           // zero when not supplied
  ExecutionSummary execution;                 // zero when not supplied
  StorageSummary storage;                     // zero when not supplied

  /// The paper's acceptance criteria (§4.5.2 conclusions).
  bool discordance_is_low_quality = false;  // weighted << raw D_count
  bool variant_impact_small = false;        // < 1% of calls
  bool truth_scores_match = false;          // serial ~ parallel vs truth

  std::string markdown;
};

/// \brief Runs every comparison and renders the markdown report.
Result<DiagnosisReport> GenerateDiagnosisReport(
    const DiagnosisReportInputs& inputs);

}  // namespace gesall

#endif  // GESALL_GESALL_REPORT_H_

// Serial reference pipeline (the paper's single-node "gold standard",
// GATK best practices): the same wrapped programs executed in one process
// over the complete dataset, plus hybrid tails used to compute the
// discordant-impact (D_impact) measures of §4.5.2.

#ifndef GESALL_GESALL_SERIAL_PIPELINE_H_
#define GESALL_GESALL_SERIAL_PIPELINE_H_

#include <map>
#include <string>
#include <vector>

#include "align/aligner.h"
#include "analysis/haplotype_caller.h"
#include "formats/fastq.h"
#include "formats/vcf.h"
#include "util/status.h"

namespace gesall {

/// \brief Serial pipeline configuration.
struct SerialPipelineConfig {
  PairedAlignerOptions aligner;
  ReadGroup read_group{"rg1", "sample1", "lib1"};
  HaplotypeCallerOptions hc;
  /// Include BaseRecalibrator + PrintReads (Table 2 steps 11-12).
  bool run_recalibration = false;
};

/// \brief Intermediate and final outputs of the serial pipeline (the R_i
/// of the error-diagnosis formalism).
struct SerialStageOutputs {
  SamHeader header;
  std::vector<SamRecord> aligned;
  std::vector<SamRecord> cleaned;  // + read groups + fixed mates
  std::vector<SamRecord> deduped;
  std::vector<SamRecord> sorted;
  std::vector<VariantRecord> variants;
  std::map<std::string, double> step_seconds;  // per wrapped program
};

/// \brief Runs the full serial pipeline on interleaved FASTQ pairs.
Result<SerialStageOutputs> RunSerialPipeline(
    const ReferenceGenome& reference, const GenomeIndex& index,
    const std::vector<FastqRecord>& interleaved,
    const SerialPipelineConfig& config = {});

/// \brief Hybrid tail for D_impact(P1): serial cleaning -> duplicates ->
/// sort -> Haplotype Caller, starting from (possibly parallel-produced)
/// alignment output grouped by read name.
Result<std::vector<VariantRecord>> SerialTailFromAligned(
    const ReferenceGenome& reference, const SamHeader& header,
    std::vector<SamRecord> aligned, const SerialPipelineConfig& config = {});

/// \brief Hybrid tail for D_impact(P2): serial sort -> Haplotype Caller
/// from duplicate-marked records.
Result<std::vector<VariantRecord>> SerialTailFromDeduped(
    const ReferenceGenome& reference, const SamHeader& header,
    std::vector<SamRecord> deduped, const SerialPipelineConfig& config = {});

}  // namespace gesall

#endif  // GESALL_GESALL_SERIAL_PIPELINE_H_

#include "gesall/round_dag.h"

#include <algorithm>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "util/stopwatch.h"

namespace gesall {

int RoundDag::AddTask(std::string name, std::function<Status()> fn) {
  RoundDagNode node;
  node.name = std::move(name);
  node.fn = std::move(fn);
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

void RoundDag::AddDep(int before, int after) {
  nodes_[static_cast<size_t>(after)].deps.push_back(before);
  nodes_[static_cast<size_t>(before)].succs.push_back(after);
}

namespace {

// Shared scheduler state of one Run. Heap-held so executor tasks can't
// outlive it (they hold the shared_ptr).
struct RunState {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> indegree;  // guarded by mu
  int done = 0;               // guarded by mu
  Status first_error;         // guarded by mu
  Stopwatch clock;
};

}  // namespace

Status RoundDag::Run(Executor* executor,
                     std::shared_ptr<CancelToken> cancel) {
  const int n = static_cast<int>(nodes_.size());
  if (n == 0) {
    return cancel != nullptr ? cancel->status() : Status::OK();
  }

  // Kahn pass up front: a cycle would otherwise hang the countdown.
  {
    std::vector<int> indeg(static_cast<size_t>(n), 0);
    for (const auto& node : nodes_) {
      for (int s : node.succs) ++indeg[static_cast<size_t>(s)];
    }
    std::vector<int> ready;
    for (int i = 0; i < n; ++i) {
      if (indeg[static_cast<size_t>(i)] == 0) ready.push_back(i);
    }
    int seen = 0;
    while (!ready.empty()) {
      int i = ready.back();
      ready.pop_back();
      ++seen;
      for (int s : nodes_[static_cast<size_t>(i)].succs) {
        if (--indeg[static_cast<size_t>(s)] == 0) ready.push_back(s);
      }
    }
    if (seen != n) {
      return Status::InvalidArgument("RoundDag contains a cycle");
    }
  }

  auto state = std::make_shared<RunState>();
  state->indegree.assign(static_cast<size_t>(n), 0);
  for (const auto& node : nodes_) {
    for (int s : node.succs) ++state->indegree[static_cast<size_t>(s)];
  }

  // Completion of node i: record, release successors, count down.
  // Declared as a recursive lambda via TaskGroup-free direct submits;
  // the executor owns the concurrency, this owns the ordering.
  struct Scheduler {
    RoundDag* dag;
    Executor* executor;
    std::shared_ptr<RunState> state;
    std::shared_ptr<CancelToken> cancel;

    void Launch(int i) {
      executor->Submit([this_copy = *this, i]() mutable {
        this_copy.RunNode(i);
      });
    }

    void RunNode(int i) {
      RoundDagNode& node = dag->nodes_[static_cast<size_t>(i)];
      // A flipped token poisons the run exactly like a node error:
      // first_error latches Cancelled, every not-yet-started node skips
      // its body, and the countdown still reaches n so Run() returns.
      if (cancel != nullptr && cancel->cancelled()) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (state->first_error.ok()) {
          state->first_error = cancel->status();
        }
      }
      bool skip;
      {
        std::lock_guard<std::mutex> lock(state->mu);
        skip = !state->first_error.ok();
      }
      if (!skip && node.fn != nullptr) {
        node.start_seconds = state->clock.ElapsedSeconds();
        node.status = node.fn();
        node.end_seconds = state->clock.ElapsedSeconds();
        node.ran = true;
      }
      std::vector<int> ready;
      {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!node.status.ok() && state->first_error.ok()) {
          state->first_error = node.status;
        }
        for (int s : node.succs) {
          if (--state->indegree[static_cast<size_t>(s)] == 0) {
            ready.push_back(s);
          }
        }
        if (++state->done == static_cast<int>(dag->nodes_.size())) {
          state->cv.notify_all();
        }
      }
      for (int s : ready) Launch(s);
    }
  };

  Scheduler scheduler{this, executor, state, std::move(cancel)};
  std::vector<int> roots;
  for (int i = 0; i < n; ++i) {
    if (state->indegree[static_cast<size_t>(i)] == 0) roots.push_back(i);
  }
  for (int i : roots) scheduler.Launch(i);

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done == n; });
  return state->first_error;
}

void RoundDag::RecordSpan(int node, double start_seconds,
                          double end_seconds) {
  RoundDagNode& n = nodes_[static_cast<size_t>(node)];
  n.start_seconds = start_seconds;
  n.end_seconds = end_seconds;
  n.ran = true;
}

std::vector<std::string> RoundDag::CriticalPath() const {
  const int n = static_cast<int>(nodes_.size());
  if (n == 0) return {};
  // Longest-path DP over a topological order (durations as weights).
  std::vector<int> indeg(static_cast<size_t>(n), 0);
  for (const auto& node : nodes_) {
    for (int s : node.succs) ++indeg[static_cast<size_t>(s)];
  }
  std::vector<int> order;
  for (int i = 0; i < n; ++i) {
    if (indeg[static_cast<size_t>(i)] == 0) order.push_back(i);
  }
  for (size_t head = 0; head < order.size(); ++head) {
    for (int s : nodes_[static_cast<size_t>(order[head])].succs) {
      if (--indeg[static_cast<size_t>(s)] == 0) order.push_back(s);
    }
  }
  if (order.size() != static_cast<size_t>(n)) return {};  // cyclic
  std::vector<double> dist(static_cast<size_t>(n), 0);
  std::vector<int> prev(static_cast<size_t>(n), -1);
  for (int i : order) {
    const RoundDagNode& node = nodes_[static_cast<size_t>(i)];
    dist[static_cast<size_t>(i)] += node.duration_seconds();
    for (int s : node.succs) {
      double candidate = dist[static_cast<size_t>(i)];
      if (candidate > dist[static_cast<size_t>(s)]) {
        dist[static_cast<size_t>(s)] = candidate;
        prev[static_cast<size_t>(s)] = i;
      }
    }
  }
  int tail = 0;
  for (int i = 1; i < n; ++i) {
    if (dist[static_cast<size_t>(i)] > dist[static_cast<size_t>(tail)]) {
      tail = i;
    }
  }
  std::vector<std::string> path;
  for (int i = tail; i >= 0; i = prev[static_cast<size_t>(i)]) {
    path.push_back(nodes_[static_cast<size_t>(i)].name);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double RoundDag::CriticalPathSeconds() const {
  const int n = static_cast<int>(nodes_.size());
  if (n == 0) return 0;
  std::vector<int> indeg(static_cast<size_t>(n), 0);
  for (const auto& node : nodes_) {
    for (int s : node.succs) ++indeg[static_cast<size_t>(s)];
  }
  std::vector<int> order;
  for (int i = 0; i < n; ++i) {
    if (indeg[static_cast<size_t>(i)] == 0) order.push_back(i);
  }
  for (size_t head = 0; head < order.size(); ++head) {
    for (int s : nodes_[static_cast<size_t>(order[head])].succs) {
      if (--indeg[static_cast<size_t>(s)] == 0) order.push_back(s);
    }
  }
  if (order.size() != static_cast<size_t>(n)) return 0;
  std::vector<double> dist(static_cast<size_t>(n), 0);
  double best = 0;
  for (int i : order) {
    const RoundDagNode& node = nodes_[static_cast<size_t>(i)];
    dist[static_cast<size_t>(i)] += node.duration_seconds();
    best = std::max(best, dist[static_cast<size_t>(i)]);
    for (int s : node.succs) {
      dist[static_cast<size_t>(s)] =
          std::max(dist[static_cast<size_t>(s)], dist[static_cast<size_t>(i)]);
    }
  }
  return best;
}

}  // namespace gesall
